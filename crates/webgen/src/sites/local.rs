//! The local/restaurant domain: review aggregators (yelp/citysearch-like)
//! and per-restaurant homepage sites.
//!
//! Aggregator sites carry three URL sub-categories — **biz** pages about one
//! business, **search** result pages, and pre-defined **category** pages —
//! mirroring the taxonomy of the paper's §3 usage study. Rendering applies
//! realistic per-site variation (name variants, phone formats, street-suffix
//! expansion) so that entity matching across sources is non-trivial.

use rand::rngs::StdRng;
use rand::Rng;

use woc_lrec::LrecId;

use crate::dom::Node;
use crate::page::{Page, PageKind, PageTruth, TruthRecord};
use crate::sites::style::SiteStyle;
use crate::world::{slugify, World};

/// A flattened view of one restaurant's ground truth.
#[derive(Debug, Clone)]
pub struct RestaurantView {
    /// World record id.
    pub id: LrecId,
    /// Index in `world.restaurants`.
    pub index: usize,
    /// Canonical name.
    pub name: String,
    /// Street line ("19980 Homestead Rd").
    pub street: String,
    /// City.
    pub city: String,
    /// State code.
    pub state: String,
    /// Zip.
    pub zip: String,
    /// Raw 10-digit phone numbers.
    pub phones: Vec<String>,
    /// Cuisine.
    pub cuisine: String,
    /// Hours string.
    pub hours: String,
    /// Average rating.
    pub rating: f64,
    /// Homepage URL.
    pub homepage: String,
    /// Menu items `(name, price_cents)`.
    pub menu: Vec<(String, i64)>,
    /// Reviews `(review_id, text, rating, author)`.
    pub reviews: Vec<(LrecId, String, i64, String)>,
}

impl RestaurantView {
    /// Build views for every restaurant in the world.
    pub fn all(world: &World) -> Vec<RestaurantView> {
        world
            .restaurants
            .iter()
            .enumerate()
            .map(|(index, &id)| {
                let r = world.rec(id);
                RestaurantView {
                    id,
                    index,
                    name: r.best_string("name").unwrap_or_default(),
                    street: r.best_string("street").unwrap_or_default(),
                    city: r.best_string("city").unwrap_or_default(),
                    state: r.best_string("state").unwrap_or_default(),
                    zip: r.best_string("zip").unwrap_or_default(),
                    phones: r
                        .get("phone")
                        .iter()
                        .filter_map(|e| match &e.value {
                            woc_lrec::AttrValue::Phone(p) => Some(p.clone()),
                            _ => None,
                        })
                        .collect(),
                    cuisine: r.best_string("cuisine").unwrap_or_default(),
                    hours: r.best_string("hours").unwrap_or_default(),
                    rating: r
                        .best("rating")
                        .and_then(|e| e.value.as_number())
                        .unwrap_or(0.0),
                    homepage: r.best_string("homepage").unwrap_or_default(),
                    menu: world.menus[index]
                        .iter()
                        .map(|&m| {
                            let rec = world.rec(m);
                            (
                                rec.best_string("name").unwrap_or_default(),
                                rec.best("price")
                                    .and_then(|e| match e.value {
                                        woc_lrec::AttrValue::PriceCents(c) => Some(c),
                                        _ => None,
                                    })
                                    .unwrap_or(0),
                            )
                        })
                        .collect(),
                    reviews: world.reviews[index]
                        .iter()
                        .map(|&v| {
                            let rec = world.rec(v);
                            (
                                v,
                                rec.best_string("text").unwrap_or_default(),
                                rec.best("rating")
                                    .and_then(|e| e.value.as_number())
                                    .unwrap_or(3.0) as i64,
                                rec.best_string("author_name").unwrap_or_default(),
                            )
                        })
                        .collect(),
                }
            })
            .collect()
    }

    /// URL slug for this restaurant.
    pub fn slug(&self) -> String {
        slugify(&self.name)
    }
}

/// Render a 10-digit phone in a random display format.
pub fn phone_format(rng: &mut StdRng, digits: &str) -> String {
    if digits.len() != 10 {
        return digits.to_string();
    }
    let (a, b, c) = (&digits[0..3], &digits[3..6], &digits[6..10]);
    match rng.random_range(0..3) {
        0 => format!("({a}) {b}-{c}"),
        1 => format!("{a}-{b}-{c}"),
        _ => format!("{a}.{b}.{c}"),
    }
}

/// Render a name variant with probability `noise` of deviating from the
/// canonical form — the per-source spelling differences entity matching
/// has to bridge.
pub fn name_variant(rng: &mut StdRng, name: &str, city: &str, cuisine: &str, noise: f64) -> String {
    if !rng.random_bool(noise) {
        return name.to_string();
    }
    match rng.random_range(0..4) {
        0 => format!("{name} - {city}"),
        1 => format!("{name} ({cuisine})"),
        2 => {
            // Drop the last word if the name has 3+ words.
            let words: Vec<&str> = name.split(' ').collect();
            if words.len() >= 3 {
                words[..words.len() - 1].join(" ")
            } else {
                format!("The {name}")
            }
        }
        _ => name.to_uppercase(),
    }
}

/// Expand abbreviated street suffixes ("Rd" → "Road") half the time.
pub fn street_variant(rng: &mut StdRng, street: &str) -> String {
    if !rng.random_bool(0.5) {
        return street.to_string();
    }
    let expansions = [
        ("St", "Street"),
        ("Ave", "Avenue"),
        ("Rd", "Road"),
        ("Blvd", "Boulevard"),
        ("Dr", "Drive"),
        ("Ln", "Lane"),
    ];
    for (abbr, full) in expansions {
        if let Some(prefix) = street.strip_suffix(abbr) {
            return format!("{prefix}{full}");
        }
    }
    street.to_string()
}

/// Configuration of one aggregator site.
#[derive(Debug, Clone)]
pub struct AggregatorSpec {
    /// Hostname, e.g. `localreviews.example.com`.
    pub host: String,
    /// Indices into `world.restaurants` this aggregator covers.
    pub coverage: Vec<usize>,
    /// Probability each review of a covered restaurant is shown.
    pub review_ratio: f64,
    /// Probability a rendered name deviates from the canonical form.
    pub name_noise: f64,
}

/// Generate all pages of an aggregator site.
pub fn aggregator_pages(
    world: &World,
    spec: &AggregatorSpec,
    style: &SiteStyle,
    rng: &mut StdRng,
) -> Vec<Page> {
    let views = RestaurantView::all(world);
    let covered: Vec<&RestaurantView> = spec.coverage.iter().map(|&i| &views[i]).collect();
    let base = format!("http://{}", spec.host);
    let mut pages = Vec::new();

    let nav = vec![
        ("Home".to_string(), format!("{base}/")),
        ("Search".to_string(), format!("{base}/search/restaurants")),
        ("About".to_string(), format!("{base}/about")),
        ("Help".to_string(), format!("{base}/help")),
        ("Terms".to_string(), format!("{base}/terms")),
    ];

    // --- biz pages ------------------------------------------------------
    for v in &covered {
        let url = format!("{base}/biz/{}", v.slug());
        let shown_name = name_variant(rng, &v.name, &v.city, &v.cuisine, spec.name_noise);
        let shown_street = street_variant(rng, &v.street);
        let shown_phones: Vec<String> = v.phones.iter().map(|p| phone_format(rng, p)).collect();
        let addr_line = format!("{shown_street}, {}, {} {}", v.city, v.state, v.zip);

        let mut content = vec![
            style.headline(&shown_name),
            style.field("addr", "Address", &addr_line),
        ];
        for p in &shown_phones {
            content.push(style.field("phone", "Phone", p));
        }
        content.push(style.field("hours", "Hours", &v.hours));
        content.push(style.field("cuisine", "Cuisine", &v.cuisine));
        content.push(style.field("rating", "Rating", &format!("{:.1} stars", v.rating)));
        content.push(
            Node::elem("div")
                .class(&style.class_for("links"))
                .child(style.link("Official homepage", &v.homepage))
                .child(style.link(
                    "More in this category",
                    &category_url(&base, &v.city, &v.cuisine),
                )),
        );

        // Reviews.
        let mut review_truth = Vec::new();
        let mut review_rows = Vec::new();
        for (rid, text, rating, author) in &v.reviews {
            if rng.random_bool(spec.review_ratio) {
                review_rows.push(vec![
                    Node::elem("span")
                        .class(&style.class_for("rev-a"))
                        .text_child(author),
                    Node::elem("span")
                        .class(&style.class_for("rev-r"))
                        .text_child(format!("{rating} stars")),
                    Node::elem("span")
                        .class(&style.class_for("rev-t"))
                        .text_child(text),
                ]);
                review_truth.push(TruthRecord {
                    concept: world.concepts.review,
                    entity: *rid,
                    fields: vec![
                        ("author_name".into(), author.clone()),
                        ("rating".into(), rating.to_string()),
                        ("text".into(), text.clone()),
                    ],
                });
            }
        }
        if !review_rows.is_empty() {
            content.push(Node::elem("h2").text_child("Reviews"));
            content.push(style.list("reviews", review_rows));
        }

        // Related businesses (same city).
        let related: Vec<&&RestaurantView> = covered
            .iter()
            .filter(|o| o.city == v.city && o.id != v.id)
            .take(3)
            .collect();
        if !related.is_empty() {
            let mut div = Node::elem("div").class(&style.class_for("related"));
            for o in &related {
                div = div.child(style.link(&o.name, &format!("{base}/biz/{}", o.slug())));
            }
            content.push(div);
        }

        let mut records = vec![TruthRecord {
            concept: world.concepts.restaurant,
            entity: v.id,
            fields: vec![
                ("name".into(), shown_name.clone()),
                ("street".into(), shown_street.clone()),
                ("city".into(), v.city.clone()),
                ("state".into(), v.state.clone()),
                ("zip".into(), v.zip.clone()),
                (
                    "phone".into(),
                    shown_phones.first().cloned().unwrap_or_default(),
                ),
                ("hours".into(), v.hours.clone()),
                ("cuisine".into(), v.cuisine.clone()),
            ],
        }];
        records.extend(review_truth);

        pages.push(Page {
            url,
            site: spec.host.clone(),
            title: format!("{shown_name} - {} - Reviews", v.city),
            dom: style.page(&format!("{shown_name} - Reviews"), nav.clone(), content),
            truth: PageTruth {
                kind: PageKind::AggregatorBiz,
                about: Some(v.id),
                records,
                mentions: vec![v.id],
            },
        });
    }

    // --- category pages ---------------------------------------------------
    let mut groups: std::collections::BTreeMap<(String, String), Vec<&RestaurantView>> =
        std::collections::BTreeMap::new();
    for v in &covered {
        groups
            .entry((v.city.clone(), v.cuisine.clone()))
            .or_default()
            .push(v);
    }
    for ((city, cuisine), members) in &groups {
        let url = category_url(&base, city, cuisine);
        let title = format!("{city} {cuisine} Restaurants");
        let mut rows = Vec::new();
        let mut records = Vec::new();
        for v in members {
            let shown_phone = v
                .phones
                .first()
                .map(|p| phone_format(rng, p))
                .unwrap_or_default();
            let shown_street = street_variant(rng, &v.street);
            rows.push(vec![
                Node::elem("a")
                    .attr("href", &format!("{base}/biz/{}", v.slug()))
                    .class(&style.class_for("c-name"))
                    .text_child(&*v.name),
                Node::elem("span")
                    .class(&style.class_for("c-addr"))
                    .text_child(format!("{shown_street}, {city} {}", v.zip)),
                Node::elem("span")
                    .class(&style.class_for("c-phone"))
                    .text_child(&*shown_phone),
            ]);
            records.push(TruthRecord {
                concept: world.concepts.restaurant,
                entity: v.id,
                fields: vec![
                    ("name".into(), v.name.clone()),
                    ("street".into(), shown_street),
                    ("zip".into(), v.zip.clone()),
                    ("phone".into(), shown_phone),
                ],
            });
        }
        let content = vec![
            style.headline(&title),
            style.para(&format!(
                "The best {cuisine} restaurants in {city}, rated by our community."
            )),
            style.list("listing", rows),
        ];
        pages.push(Page {
            url,
            site: spec.host.clone(),
            title: title.clone(),
            dom: style.page(&title, nav.clone(), content),
            truth: PageTruth {
                kind: PageKind::AggregatorCategory,
                about: None,
                mentions: members.iter().map(|v| v.id).collect(),
                records,
            },
        });
    }

    // --- search pages -------------------------------------------------------
    // City-scoped searches plus name searches for a third of the coverage.
    let mut searches: Vec<(String, Vec<&RestaurantView>)> = Vec::new();
    let mut cities: Vec<String> = covered.iter().map(|v| v.city.clone()).collect();
    cities.sort();
    cities.dedup();
    for city in &cities {
        let members: Vec<&RestaurantView> = covered
            .iter()
            .filter(|v| &v.city == city)
            .copied()
            .collect();
        searches.push((format!("restaurants {city}"), members));
    }
    for (i, v) in covered.iter().enumerate() {
        if i % 3 == 0 {
            // A name search also surfaces up to two same-city businesses.
            let mut members = vec![*v];
            members.extend(
                covered
                    .iter()
                    .filter(|o| o.city == v.city && o.id != v.id)
                    .take(2)
                    .copied(),
            );
            searches.push((
                format!("{} {}", v.name.to_lowercase(), v.city.to_lowercase()),
                members,
            ));
        }
    }
    for (query, members) in &searches {
        let url = format!("{base}/search/{}", slugify(query));
        let title = format!("Search results for {query}");
        let mut rows = Vec::new();
        for v in members {
            rows.push(vec![
                Node::elem("a")
                    .attr("href", &format!("{base}/biz/{}", v.slug()))
                    .text_child(&*v.name),
                Node::elem("span").text_child(format!("{}, {}", v.street, v.city)),
            ]);
        }
        let content = vec![style.headline(&title), style.list("results", rows)];
        pages.push(Page {
            url,
            site: spec.host.clone(),
            title,
            dom: style.page(query, nav.clone(), content),
            truth: PageTruth {
                kind: PageKind::AggregatorSearch,
                about: None,
                records: Vec::new(),
                mentions: members.iter().map(|v| v.id).collect(),
            },
        });
    }

    // --- home -----------------------------------------------------------------
    let mut content = vec![
        style.headline("Find great local businesses"),
        style.para("Reviews, menus, photos and more for restaurants near you."),
    ];
    let mut cat_div = Node::elem("div").class(&style.class_for("cats"));
    for (city, cuisine) in groups.keys() {
        cat_div = cat_div.child(style.link(
            &format!("{city} {cuisine}"),
            &category_url(&base, city, cuisine),
        ));
    }
    content.push(cat_div);
    pages.push(Page {
        url: format!("{base}/"),
        site: spec.host.clone(),
        title: format!("{} - local reviews", spec.host),
        dom: style.page("Local reviews", nav, content),
        truth: PageTruth {
            kind: PageKind::AggregatorHome,
            about: None,
            records: Vec::new(),
            mentions: Vec::new(),
        },
    });

    pages
}

fn category_url(base: &str, city: &str, cuisine: &str) -> String {
    format!("{base}/c/{}/{}", slugify(city), slugify(cuisine))
}

/// Generate every restaurant's own homepage site (home, menu, location, and
/// sometimes coupons/careers pages — the attribute pages users search for in
/// §3 "Searching for Attributes of a Concept").
pub fn homepage_pages(world: &World, rng: &mut StdRng) -> Vec<Page> {
    let views = RestaurantView::all(world);
    let mut pages = Vec::new();
    for v in &views {
        let style = SiteStyle::sample(rng);
        let host = crate::page::url_host(&v.homepage).to_string();
        let base = format!("http://{host}");
        let has_coupons = rng.random_bool(0.5);
        let has_careers = rng.random_bool(0.3);
        let mut nav = vec![
            ("Home".to_string(), format!("{base}/")),
            ("Menu".to_string(), format!("{base}/menu.html")),
            ("Location".to_string(), format!("{base}/location.html")),
        ];
        if has_coupons {
            nav.push(("Coupons".to_string(), format!("{base}/coupons.html")));
        }
        if has_careers {
            nav.push(("Careers".to_string(), format!("{base}/careers.html")));
        }
        // Homepage navigation must always reach the attribute pages.
        let mut style = style;
        style.nav_links = nav.len();

        let phone_shown = v
            .phones
            .first()
            .map(|p| phone_format(rng, p))
            .unwrap_or_default();
        let addr_line = format!("{}, {}, {} {}", v.street, v.city, v.state, v.zip);

        // Home.
        let content = vec![
            style.headline(&v.name),
            style.para(&format!(
                "Welcome to {}, {} cuisine in the heart of {}.",
                v.name, v.cuisine, v.city
            )),
            style.field("addr", "Address", &addr_line),
            style.field("phone", "Phone", &phone_shown),
            style.field("hours", "Hours", &v.hours),
        ];
        pages.push(Page {
            url: format!("{base}/"),
            site: host.clone(),
            title: v.name.clone(),
            dom: style.page(&v.name, nav.clone(), content),
            truth: PageTruth {
                kind: PageKind::RestaurantHome,
                about: Some(v.id),
                records: vec![TruthRecord {
                    concept: world.concepts.restaurant,
                    entity: v.id,
                    fields: vec![
                        ("name".into(), v.name.clone()),
                        ("street".into(), v.street.clone()),
                        ("city".into(), v.city.clone()),
                        ("state".into(), v.state.clone()),
                        ("zip".into(), v.zip.clone()),
                        ("phone".into(), phone_shown.clone()),
                        ("hours".into(), v.hours.clone()),
                    ],
                }],
                mentions: vec![v.id],
            },
        });

        // Menu.
        let mut rows = Vec::new();
        let mut records = Vec::new();
        for (mi, (dish, cents)) in v.menu.iter().enumerate() {
            let price = format!("${}.{:02}", cents / 100, cents % 100);
            rows.push(vec![
                Node::elem("span")
                    .class(&style.class_for("dish"))
                    .text_child(dish),
                Node::elem("span")
                    .class(&style.class_for("price"))
                    .text_child(&*price),
            ]);
            records.push(TruthRecord {
                concept: world.concepts.menu_item,
                entity: world.menus[v.index][mi],
                fields: vec![("name".into(), dish.clone()), ("price".into(), price)],
            });
        }
        let content = vec![
            style.headline(&format!("{} Menu", v.name)),
            style.list("menu", rows),
            style.para("Prices subject to change. Ask about weekly specials."),
        ];
        pages.push(Page {
            url: format!("{base}/menu.html"),
            site: host.clone(),
            title: format!("{} - Menu", v.name),
            dom: style.page("Menu", nav.clone(), content),
            truth: PageTruth {
                kind: PageKind::RestaurantMenu,
                about: Some(v.id),
                records,
                mentions: vec![v.id],
            },
        });

        // Location.
        let content = vec![
            style.headline(&format!("Find {}", v.name)),
            style.field("addr", "Address", &addr_line),
            style.para(&format!(
                "We are located on {} in {}. Parking available after 5pm.",
                v.street, v.city
            )),
        ];
        pages.push(Page {
            url: format!("{base}/location.html"),
            site: host.clone(),
            title: format!("{} - Location", v.name),
            dom: style.page("Location", nav.clone(), content),
            truth: PageTruth {
                kind: PageKind::RestaurantLocation,
                about: Some(v.id),
                records: vec![TruthRecord {
                    concept: world.concepts.restaurant,
                    entity: v.id,
                    fields: vec![
                        ("street".into(), v.street.clone()),
                        ("city".into(), v.city.clone()),
                        ("zip".into(), v.zip.clone()),
                    ],
                }],
                mentions: vec![v.id],
            },
        });

        // Coupons.
        if has_coupons {
            let pct = rng.random_range(1..5) * 5;
            let content = vec![
                style.headline("Coupons and weekly specials"),
                style.para(&format!(
                    "Print this page for {pct}% off your next dinner at {}.",
                    v.name
                )),
            ];
            pages.push(Page {
                url: format!("{base}/coupons.html"),
                site: host.clone(),
                title: format!("{} - Coupons", v.name),
                dom: style.page("Coupons", nav.clone(), content),
                truth: PageTruth {
                    kind: PageKind::RestaurantCoupons,
                    about: Some(v.id),
                    records: Vec::new(),
                    mentions: vec![v.id],
                },
            });
        }

        // Careers.
        if has_careers {
            let content = vec![
                style.headline("Join our team"),
                style.para(&format!(
                    "{} in {} is hiring servers and line cooks. Email us to apply.",
                    v.name, v.city
                )),
            ];
            pages.push(Page {
                url: format!("{base}/careers.html"),
                site: host.clone(),
                title: format!("{} - Careers", v.name),
                dom: style.page("Careers", nav, content),
                truth: PageTruth {
                    kind: PageKind::RestaurantCareers,
                    about: Some(v.id),
                    records: Vec::new(),
                    mentions: vec![v.id],
                },
            });
        }
    }
    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rand::SeedableRng;

    fn world() -> World {
        World::generate(WorldConfig::tiny(11))
    }

    #[test]
    fn aggregator_page_mix() {
        let w = world();
        let spec = AggregatorSpec {
            host: "agg.example.com".into(),
            coverage: (0..w.restaurants.len()).collect(),
            review_ratio: 0.8,
            name_noise: 0.2,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let style = SiteStyle::sample(&mut rng);
        let pages = aggregator_pages(&w, &spec, &style, &mut rng);
        let biz = pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::AggregatorBiz)
            .count();
        let cat = pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::AggregatorCategory)
            .count();
        let srch = pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::AggregatorSearch)
            .count();
        assert_eq!(biz, w.restaurants.len());
        assert!(cat >= 1);
        assert!(srch >= 1);
        assert!(pages
            .iter()
            .any(|p| p.truth.kind == PageKind::AggregatorHome));
    }

    #[test]
    fn biz_page_contains_truth_fields() {
        let w = world();
        let spec = AggregatorSpec {
            host: "agg.example.com".into(),
            coverage: vec![0, 1, 2],
            review_ratio: 1.0,
            name_noise: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let style = SiteStyle::sample(&mut rng);
        let pages = aggregator_pages(&w, &spec, &style, &mut rng);
        for p in pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::AggregatorBiz)
        {
            let text = p.text();
            let rec = &p.truth.records[0];
            for (k, v) in &rec.fields {
                assert!(
                    text.contains(v),
                    "page text must contain rendered {k} value {v:?}"
                );
            }
        }
    }

    #[test]
    fn category_pages_group_by_city_cuisine() {
        let w = world();
        let spec = AggregatorSpec {
            host: "agg.example.com".into(),
            coverage: (0..w.restaurants.len()).collect(),
            review_ratio: 0.0,
            name_noise: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let style = SiteStyle::sample(&mut rng);
        let pages = aggregator_pages(&w, &spec, &style, &mut rng);
        for p in pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::AggregatorCategory)
        {
            assert!(!p.truth.records.is_empty());
            assert!(p.url.contains("/c/"));
        }
    }

    #[test]
    fn homepage_sites_have_menu_and_location() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(4);
        let pages = homepage_pages(&w, &mut rng);
        for &r in &w.restaurants {
            let homepage = w.attr(r, "homepage");
            let host = crate::page::url_host(&homepage);
            let mine: Vec<&Page> = pages.iter().filter(|p| p.site == host).collect();
            assert!(mine
                .iter()
                .any(|p| p.truth.kind == PageKind::RestaurantHome));
            assert!(mine
                .iter()
                .any(|p| p.truth.kind == PageKind::RestaurantMenu));
            assert!(mine
                .iter()
                .any(|p| p.truth.kind == PageKind::RestaurantLocation));
        }
    }

    #[test]
    fn menu_truth_records_match_world() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(5);
        let pages = homepage_pages(&w, &mut rng);
        let menu_pages: Vec<&Page> = pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::RestaurantMenu)
            .collect();
        assert_eq!(menu_pages.len(), w.restaurants.len());
        for p in menu_pages {
            assert!(!p.truth.records.is_empty());
            for tr in &p.truth.records {
                assert_eq!(tr.concept, w.concepts.menu_item);
                assert!(p.text().contains(tr.field("name").unwrap()));
            }
        }
    }

    #[test]
    fn name_variant_noise_zero_is_exact() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            assert_eq!(
                name_variant(&mut rng, "Gochi Tapas", "Cupertino", "Japanese", 0.0),
                "Gochi Tapas"
            );
        }
    }

    #[test]
    fn phone_format_valid() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let f = phone_format(&mut rng, "4085550134");
            let digits: String = f.chars().filter(|c| c.is_ascii_digit()).collect();
            assert_eq!(digits, "4085550134");
        }
        assert_eq!(phone_format(&mut rng, "123"), "123");
    }

    #[test]
    fn street_variant_expansion() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut expanded = false;
        for _ in 0..30 {
            let v = street_variant(&mut rng, "19980 Homestead Rd");
            assert!(v == "19980 Homestead Rd" || v == "19980 Homestead Road");
            expanded |= v.ends_with("Road");
        }
        assert!(expanded);
    }
}
