//! Site renderers: from ground-truth world to crawled pages.
//!
//! Each submodule renders one family of sites; [`generate_corpus`] assembles
//! the full synthetic web the pipeline crawls.

pub mod academic;
pub mod adversarial;
pub mod blog;
pub mod city;
pub mod events;
pub mod local;
pub mod shop;
pub mod style;

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use adversarial::{AdversarialConfig, AdversarialProfile, AdversarialSite};
pub use local::{AggregatorSpec, RestaurantView};
pub use style::SiteStyle;

use crate::corpus::WebCorpus;
use crate::world::World;

/// Which sites to generate and with what coverage.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Fraction of restaurants covered by the primary aggregator.
    pub primary_coverage: f64,
    /// Fraction covered by the secondary aggregator (overlapping).
    pub secondary_coverage: f64,
    /// Name-variation probability on aggregator renderings.
    pub name_noise: f64,
    /// Number of blog articles.
    pub blog_articles: usize,
    /// Seed for all rendering randomness.
    pub seed: u64,
    /// Adversarial sites to append (`None` = clean corpus). Adversarial
    /// pages are always generated *after* every honest site from an
    /// independent RNG, so the honest prefix of the corpus is byte-identical
    /// to the clean corpus for the same seed.
    pub adversarial: Option<AdversarialConfig>,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            primary_coverage: 0.9,
            secondary_coverage: 0.6,
            name_noise: 0.25,
            blog_articles: 40,
            seed: 0xBEEF,
            adversarial: None,
        }
    }
}

impl CorpusConfig {
    /// Small corpus for fast tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            blog_articles: 10,
            seed,
            ..Self::default()
        }
    }
}

/// Generate the complete synthetic web for a world.
///
/// The corpus contains: two overlapping restaurant aggregators (different
/// styles and coverage), every restaurant's homepage site, one city-guide
/// site per city, researcher homepages + venue proceedings, one catalog site
/// per seller, the events aggregator, and a blog. All rendering is
/// deterministic in `config.seed`.
pub fn generate_corpus(world: &World, config: &CorpusConfig) -> WebCorpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut corpus = WebCorpus::new();

    let n = world.restaurants.len();
    let primary: Vec<usize> = (0..n)
        .filter(|i| (*i as f64) < config.primary_coverage * n as f64)
        .collect();
    // Secondary coverage overlaps the tail of primary plus the uncovered rest.
    let start = ((1.0 - config.secondary_coverage) * n as f64) as usize;
    let secondary: Vec<usize> = (start.min(n)..n).collect();

    let primary_spec = AggregatorSpec {
        host: "localreviews.example.com".into(),
        coverage: primary,
        review_ratio: 0.8,
        name_noise: config.name_noise,
    };
    let style = SiteStyle::sample(&mut rng);
    for p in local::aggregator_pages(world, &primary_spec, &style, &mut rng) {
        corpus.add(p);
    }

    let secondary_spec = AggregatorSpec {
        host: "cityfinder.example.com".into(),
        coverage: secondary,
        review_ratio: 0.5,
        name_noise: config.name_noise * 1.5,
    };
    let style = SiteStyle::sample(&mut rng);
    for p in local::aggregator_pages(world, &secondary_spec, &style, &mut rng) {
        corpus.add(p);
    }

    for p in local::homepage_pages(world, &mut rng) {
        corpus.add(p);
    }
    for p in city::city_guide_pages(world, &mut rng) {
        corpus.add(p);
    }
    for p in academic::academic_pages(world, &mut rng) {
        corpus.add(p);
    }
    for p in shop::shop_pages(world, &mut rng) {
        corpus.add(p);
    }
    for p in events::events_aggregator_pages(world, &mut rng) {
        corpus.add(p);
    }
    let blog_spec = blog::BlogSpec {
        articles: config.blog_articles,
        ..blog::BlogSpec::default()
    };
    for p in blog::blog_pages(world, &blog_spec, &mut rng) {
        corpus.add(p);
    }

    if let Some(adv) = &config.adversarial {
        let honest_sites = corpus.sites().len();
        let plan = adversarial::plan_sites(world, honest_sites, adv);
        // Independent RNG: adversarial styling must not perturb the honest
        // stream above, and the honest seed must not perturb the attack.
        let mut adv_rng = StdRng::seed_from_u64(adv.seed ^ 0xAD5E_55ED);
        for site in &plan {
            for p in adversarial::adversarial_pages(world, site, &mut adv_rng) {
                corpus.add(p);
            }
        }
    }

    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;
    use crate::world::WorldConfig;

    #[test]
    fn full_corpus_generates_all_site_families() {
        let w = World::generate(WorldConfig::tiny(71));
        let c = generate_corpus(&w, &CorpusConfig::tiny(1));
        assert!(c.len() > 50, "corpus too small: {}", c.len());
        let kinds: std::collections::HashSet<_> =
            c.pages().iter().map(|p| p.truth.kind.clone()).collect();
        for k in [
            PageKind::AggregatorBiz,
            PageKind::AggregatorSearch,
            PageKind::AggregatorCategory,
            PageKind::RestaurantHome,
            PageKind::RestaurantMenu,
            PageKind::CityCategory,
            PageKind::CityEvents,
            PageKind::AcademicHome,
            PageKind::VenuePage,
            PageKind::ProductPage,
            PageKind::EventPage,
            PageKind::Article,
        ] {
            assert!(kinds.contains(&k), "missing page kind {k:?}");
        }
    }

    #[test]
    fn aggregators_overlap() {
        let w = World::generate(WorldConfig::tiny(72));
        let c = generate_corpus(&w, &CorpusConfig::tiny(2));
        let covered = |site: &str| -> std::collections::HashSet<woc_lrec::LrecId> {
            c.pages_of_site(site)
                .iter()
                .filter(|p| p.truth.kind == PageKind::AggregatorBiz)
                .filter_map(|p| p.truth.about)
                .collect()
        };
        let a = covered("localreviews.example.com");
        let b = covered("cityfinder.example.com");
        assert!(!a.is_empty() && !b.is_empty());
        assert!(
            a.intersection(&b).count() > 0,
            "aggregators must overlap for matching eval"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let w = World::generate(WorldConfig::tiny(73));
        let a = generate_corpus(&w, &CorpusConfig::tiny(9));
        let b = generate_corpus(&w, &CorpusConfig::tiny(9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.pages().iter().zip(b.pages()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn adversarial_corpus_keeps_honest_prefix_byte_identical() {
        let w = World::generate(WorldConfig::tiny(75));
        let clean = generate_corpus(&w, &CorpusConfig::tiny(4));
        let mut cfg = CorpusConfig::tiny(4);
        cfg.adversarial = Some(AdversarialConfig::at_ratio(0.3, 11));
        let adv = generate_corpus(&w, &cfg);
        assert!(adv.len() > clean.len(), "adversarial pages were appended");
        // Honest pages occupy the same slots with the same bytes: doc ids
        // and honest extraction are unperturbed by the attack.
        for (i, p) in clean.pages().iter().enumerate() {
            assert_eq!(&adv.pages()[i], p, "honest page {i} must be unchanged");
        }
        for p in &adv.pages()[clean.len()..] {
            assert!(matches!(
                p.truth.kind,
                PageKind::AdversarialBiz | PageKind::AdversarialHome
            ));
        }
    }

    #[test]
    fn urls_unique() {
        let w = World::generate(WorldConfig::tiny(74));
        let c = generate_corpus(&w, &CorpusConfig::tiny(3));
        let urls: std::collections::HashSet<&str> =
            c.pages().iter().map(|p| p.url.as_str()).collect();
        assert_eq!(urls.len(), c.len());
    }
}
