//! Adversarial site profiles: the content-level attack surface.
//!
//! The chaos layer damages pages in *transit*; these sites damage the *facts*.
//! Four profiles, all rendered from the same ground-truth world and all
//! deterministic in the adversarial seed, so corpora are byte-identical
//! across runs and thread counts:
//!
//! * **SEO spam farms** — plausible business pages that keep the name/city
//!   honest (so their claims pool with the real entity) but fabricate phone,
//!   zip, hours and cuisine.
//! * **Scraped-and-mangled clones** — aggregator copies whose values got
//!   garbled in the scrape (street suffix swapped, phone digits rotated,
//!   off-by-rotation zips).
//! * **Stale mirrors** — snapshots frozen at an old tick: the restaurant
//!   has since moved, renumbered and changed hours, so the mirror asserts
//!   yesterday's values with full confidence.
//! * **Conflicting-fact sites** — keep the identity attributes honest but
//!   systematically flip specific contact/category attributes.
//!
//! The perturbations are pure functions of the true value and a per-site
//! salt (no RNG), so each site tells *its own* systematic lies and repeats
//! them verbatim on every one of its pages — self-consistent misinformation,
//! not white noise. Sites do **not** collude on wrong values: real farms
//! fabricate independently, and this is also the regime where a reliability
//! signal is recoverable at all — the honest web corroborates itself, each
//! liar's values stand alone, and a site caught lying wherever facts are
//! contested is downweighted everywhere. (A bloc of sites colluding
//! byte-for-byte and outnumbering every honest corroborator is
//! indistinguishable from a better-covered honest web without an external
//! anchor; no fixpoint can recover truth there.)

use rand::rngs::StdRng;

use woc_textkit::gazetteer::CUISINES;

use crate::dom::Node;
use crate::page::{Page, PageKind, PageTruth, TruthRecord};
use crate::sites::local::RestaurantView;
use crate::sites::style::SiteStyle;
use crate::world::World;

/// Adversarial corpus knobs. `site_ratio` is the target fraction of *sites*
/// (not pages) that are adversarial; `seed` drives only the adversarial
/// rendering, so the honest prefix of the corpus stays byte-identical to a
/// clean corpus generated with the same [`super::CorpusConfig`] seed.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialConfig {
    /// Target fraction of sites that are adversarial, in `[0, 1)`.
    pub site_ratio: f64,
    /// Seed for adversarial style/rendering randomness.
    pub seed: u64,
}

impl AdversarialConfig {
    /// Config for a spam ratio (`0.3` = 30% of sites are adversarial).
    pub fn at_ratio(site_ratio: f64, seed: u64) -> Self {
        Self { site_ratio, seed }
    }
}

/// The four attack profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialProfile {
    /// Coordinated SEO spam network fabricating attribute values.
    SpamFarm,
    /// Scraped aggregator copy with mangled values.
    MangledClone,
    /// Mirror frozen at an old tick, asserting outdated values.
    StaleMirror,
    /// Site that systematically flips specific attributes.
    ConflictingFacts,
}

impl AdversarialProfile {
    /// Short label used in hostnames and reports.
    pub fn label(self) -> &'static str {
        match self {
            AdversarialProfile::SpamFarm => "spam-farm",
            AdversarialProfile::MangledClone => "mangled-clone",
            AdversarialProfile::StaleMirror => "stale-mirror",
            AdversarialProfile::ConflictingFacts => "conflicting-facts",
        }
    }
}

/// One planned adversarial site.
#[derive(Debug, Clone)]
pub struct AdversarialSite {
    /// Hostname.
    pub host: String,
    /// Attack profile.
    pub profile: AdversarialProfile,
    /// Per-site perturbation salt: decorrelates the wrong values of sites
    /// sharing a profile while keeping each site internally consistent.
    pub salt: u64,
    /// Indices into `world.restaurants` this site renders pages about.
    pub coverage: Vec<usize>,
}

/// Plan the adversarial sites for a world: how many (from the ratio and the
/// honest site count), which profile each gets (round-robin), which host it
/// uses and which restaurants it covers. Pure — benches and audits call this
/// to recover the ground-truth list of adversarial hosts.
pub fn plan_sites(
    world: &World,
    honest_sites: usize,
    config: &AdversarialConfig,
) -> Vec<AdversarialSite> {
    let r = config.site_ratio.clamp(0.0, 0.95);
    if r <= 0.0 || honest_sites == 0 {
        return Vec::new();
    }
    let count = ((r / (1.0 - r)) * honest_sites as f64).round().max(1.0) as usize;
    let n = world.restaurants.len();
    (0..count)
        .map(|i| {
            let profile = match i % 4 {
                0 => AdversarialProfile::SpamFarm,
                1 => AdversarialProfile::MangledClone,
                2 => AdversarialProfile::StaleMirror,
                _ => AdversarialProfile::ConflictingFacts,
            };
            let host = match profile {
                AdversarialProfile::SpamFarm => format!("best-eats-{i:02}.spam.example.net"),
                AdversarialProfile::MangledClone => {
                    format!("reviews-scrape-{i:02}.clone.example.net")
                }
                AdversarialProfile::StaleMirror => format!("archive-{i:02}.wayback.example.net"),
                AdversarialProfile::ConflictingFacts => format!("factbook-{i:02}.example.net"),
            };
            // Mirrors snapshot everything; the others cover a deterministic
            // ~3/4 slice shifted per site so coverage overlaps but differs.
            let coverage: Vec<usize> = if profile == AdversarialProfile::StaleMirror {
                (0..n).collect()
            } else {
                (0..n).filter(|j| (j + i) % 4 != 3).collect()
            };
            AdversarialSite {
                host,
                profile,
                salt: i as u64,
                coverage,
            }
        })
        .collect()
}

/// Mix a per-site salt and a per-attribute base into a perturbation key
/// (FNV-style), so distinct `(salt, base)` pairs yield unrelated digit
/// transforms instead of colliding modulo the rotation alphabet.
fn mix(salt: u64, base: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in salt.to_le_bytes().iter().chain(&base.to_le_bytes()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Rotate every ASCII digit by a position-dependent amount in `1..=9`
/// derived from `key` — the shared perturbation primitive. Never reproduces
/// the input (each digit moves), keeps length and "looks like a phone/zip"
/// shape, and two sites with different keys virtually never agree on the
/// perturbed value.
fn rot_digits(s: &str, key: u64) -> String {
    let mut pos: u64 = 0;
    s.chars()
        .map(|c| {
            if c.is_ascii_digit() {
                let k = (1 + (key.rotate_left((pos as u32 % 8) * 8) ^ pos) % 9) as u8;
                pos += 1;
                char::from(b'0' + (c as u8 - b'0' + k) % 10)
            } else {
                c
            }
        })
        .collect()
}

/// Display a 10-digit phone in the fixed `(aaa) bbb-cccc` format.
fn show_phone(digits: &str) -> String {
    if digits.len() == 10 {
        format!("({}) {}-{}", &digits[0..3], &digits[3..6], &digits[6..10])
    } else {
        digits.to_string()
    }
}

/// Shift a cuisine `steps` positions along the gazetteer (wrapping), so the
/// flipped value is still a recognizable cuisine — plausible, just wrong.
fn shift_cuisine(cuisine: &str, steps: usize) -> String {
    let idx = CUISINES.iter().position(|c| *c == cuisine).unwrap_or(0);
    CUISINES[(idx + steps) % CUISINES.len()].to_string()
}

/// Swap the street suffix for another one in the pool ("Rd" → "Blvd"), so
/// the mangled street still parses as an address but denotes a different
/// one; `step` picks which wrong suffix (never 0 mod pool size).
fn swap_street_suffix(street: &str, step: usize) -> String {
    let suffixes = ["St", "Ave", "Rd", "Blvd", "Dr", "Ln"];
    let step = 1 + step % (suffixes.len() - 1);
    for (i, s) in suffixes.iter().enumerate() {
        if let Some(prefix) = street.strip_suffix(s) {
            return format!("{prefix}{}", suffixes[(i + step) % suffixes.len()]);
        }
    }
    format!("{street} Annex")
}

/// A wrong-but-plausible opening-hours string: picked from a fixed pool by
/// the perturbation key, skipping any entry equal to the true hours.
fn fake_hours(truth: &str, key: u64) -> String {
    let pool = [
        "6am - 11pm",
        "7am - 1pm",
        "8am - 5pm",
        "10am - 3pm",
        "9am - 2pm",
        "11am - 4pm",
        "7am - 9pm",
        "6am - 2pm",
        "5am - 12pm",
        "10am - 8pm",
        "11am - 11pm",
        "9am - 6pm",
    ];
    let mut i = (key as usize) % pool.len();
    if pool[i] == truth {
        i = (i + 1) % pool.len();
    }
    pool[i].to_string()
}

/// The rendered (adversarial) field values for one restaurant under one
/// profile and site salt. Pure function of `(profile, salt, truth)` — each
/// site's lies are systematic and self-consistent, but decorrelated from
/// other sites'.
#[derive(Debug, Clone)]
pub struct AdversarialFacts {
    /// Rendered name (always honest: the lie must pool with the entity).
    pub name: String,
    /// Street line, or `None` when the profile omits it.
    pub street: Option<String>,
    /// City (always honest).
    pub city: String,
    /// State (always honest).
    pub state: String,
    /// Zip.
    pub zip: String,
    /// 10-digit phone.
    pub phone: String,
    /// Opening hours.
    pub hours: String,
    /// Cuisine.
    pub cuisine: String,
    /// Rating line.
    pub rating: String,
}

/// Compute the facts a profile asserts about a restaurant. `salt` is the
/// site's perturbation salt from [`AdversarialSite::salt`].
pub fn facts_for(profile: AdversarialProfile, salt: u64, v: &RestaurantView) -> AdversarialFacts {
    let phone = v.phones.first().cloned().unwrap_or_default();
    // Per-attribute perturbation keys, mixed from the site salt.
    let rk = |base: u64| mix(salt, base);
    // Cuisine shift in 1..len-1, likewise salted.
    let ck = |base: u64| 1 + mix(salt, base) as usize % (CUISINES.len() - 1);
    match profile {
        // Farms keep only name/city honest and fabricate the rest; no
        // street at all (thin doorway pages).
        AdversarialProfile::SpamFarm => AdversarialFacts {
            name: v.name.clone(),
            street: None,
            city: v.city.clone(),
            state: v.state.clone(),
            zip: rot_digits(&v.zip, rk(3)),
            phone: rot_digits(&phone, rk(1)),
            hours: fake_hours(&v.hours, mix(salt, 100 + v.index as u64)),
            cuisine: shift_cuisine(&v.cuisine, ck(1)),
            rating: "5.0 stars".to_string(),
        },
        // Clones scrape the aggregator but garble in transit; the cuisine
        // survives the scrape, addresses and numbers do not.
        AdversarialProfile::MangledClone => AdversarialFacts {
            name: v.name.clone(),
            street: Some(swap_street_suffix(&v.street, mix(salt, 7) as usize)),
            city: v.city.clone(),
            state: v.state.clone(),
            zip: rot_digits(&v.zip, rk(2)),
            phone: rot_digits(&phone, rk(2)),
            hours: fake_hours(&v.hours, mix(salt, 200 + v.index as u64)),
            cuisine: v.cuisine.clone(),
            rating: "2.0 stars".to_string(),
        },
        // Mirrors assert yesterday's address, phone and hours with full
        // confidence; identity and cuisine have not changed.
        AdversarialProfile::StaleMirror => AdversarialFacts {
            name: v.name.clone(),
            street: Some(rot_digits(&v.street, rk(0))),
            city: v.city.clone(),
            state: v.state.clone(),
            zip: rot_digits(&v.zip, rk(0)),
            phone: rot_digits(&phone, rk(5)),
            hours: fake_hours(&v.hours, mix(salt, 300 + v.index as u64)),
            cuisine: v.cuisine.clone(),
            rating: format!("{:.1} stars", v.rating),
        },
        // Conflicting-fact sites keep the whole identity (name, street,
        // city, state) honest and flip exactly the contact/category facts.
        AdversarialProfile::ConflictingFacts => AdversarialFacts {
            name: v.name.clone(),
            street: Some(v.street.clone()),
            city: v.city.clone(),
            state: v.state.clone(),
            zip: rot_digits(&v.zip, rk(7)),
            phone: rot_digits(&phone, rk(4)),
            hours: fake_hours(&v.hours, mix(salt, 400 + v.index as u64)),
            cuisine: shift_cuisine(&v.cuisine, ck(2)),
            rating: format!("{:.1} stars", v.rating),
        },
    }
}

/// Generate every page of one adversarial site: a biz-style page per covered
/// restaurant plus a front page linking them. Rendering style is sampled
/// from `rng`; the asserted *values* come from [`facts_for`] and carry no
/// randomness.
pub fn adversarial_pages(world: &World, site: &AdversarialSite, rng: &mut StdRng) -> Vec<Page> {
    let views = RestaurantView::all(world);
    let style = SiteStyle::sample(rng);
    let base = format!("http://{}", site.host);
    let nav = vec![
        ("Home".to_string(), format!("{base}/")),
        ("Listings".to_string(), format!("{base}/")),
        ("About".to_string(), format!("{base}/")),
    ];
    let mut pages = Vec::new();
    let mut home_links = Vec::new();

    for &idx in &site.coverage {
        let v = &views[idx];
        let facts = facts_for(site.profile, site.salt, v);
        let url = format!("{base}/biz/{}", v.slug());
        home_links.push((facts.name.clone(), url.clone()));

        let addr_line = match &facts.street {
            Some(street) => format!("{street}, {}, {} {}", facts.city, facts.state, facts.zip),
            None => format!("{}, {} {}", facts.city, facts.state, facts.zip),
        };
        let pitch = match site.profile {
            AdversarialProfile::SpamFarm => format!(
                "Best {} restaurants near you. {} {} deals, coupons, {} menu, reservations.",
                facts.cuisine, facts.name, facts.city, facts.cuisine
            ),
            AdversarialProfile::MangledClone => format!(
                "Reviews, menus and photos for {} in {}.",
                facts.name, facts.city
            ),
            AdversarialProfile::StaleMirror => format!(
                "Archived listing for {} in {}. Snapshot may not reflect recent changes.",
                facts.name, facts.city
            ),
            AdversarialProfile::ConflictingFacts => {
                format!("Verified facts for {} in {}.", facts.name, facts.city)
            }
        };
        let content = vec![
            style.headline(&facts.name),
            style.para(&pitch),
            style.field("addr", "Address", &addr_line),
            style.field("phone", "Phone", &show_phone(&facts.phone)),
            style.field("hours", "Hours", &facts.hours),
            style.field("cuisine", "Cuisine", &facts.cuisine),
            style.field("rating", "Rating", &facts.rating),
        ];

        let mut fields = vec![("name".into(), facts.name.clone())];
        if let Some(street) = &facts.street {
            fields.push(("street".into(), street.clone()));
        }
        fields.extend([
            ("city".into(), facts.city.clone()),
            ("state".into(), facts.state.clone()),
            ("zip".into(), facts.zip.clone()),
            ("phone".into(), show_phone(&facts.phone)),
            ("hours".into(), facts.hours.clone()),
            ("cuisine".into(), facts.cuisine.clone()),
        ]);

        pages.push(Page {
            url,
            site: site.host.clone(),
            title: format!("{} - {} - {}", facts.name, facts.city, site.host),
            dom: style.page(&facts.name, nav.clone(), content),
            truth: PageTruth {
                kind: PageKind::AdversarialBiz,
                about: Some(v.id),
                records: vec![TruthRecord {
                    concept: world.concepts.restaurant,
                    entity: v.id,
                    fields,
                }],
                mentions: vec![v.id],
            },
        });
    }

    let mut content = vec![
        style.headline("Local restaurant directory"),
        style.para("The most complete restaurant listings on the web."),
    ];
    let mut links = Node::elem("div").class(&style.class_for("listing"));
    for (text, href) in &home_links {
        links = links.child(style.link(text, href));
    }
    content.push(links);
    pages.push(Page {
        url: format!("{base}/"),
        site: site.host.clone(),
        title: format!("{} - restaurant directory", site.host),
        dom: style.page("Directory", nav, content),
        truth: PageTruth {
            kind: PageKind::AdversarialHome,
            about: None,
            records: Vec::new(),
            mentions: Vec::new(),
        },
    });

    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rand::SeedableRng;

    fn world() -> World {
        World::generate(WorldConfig::tiny(31))
    }

    #[test]
    fn plan_honors_ratio_and_cycles_profiles() {
        let w = world();
        let plan = plan_sites(&w, 30, &AdversarialConfig::at_ratio(0.3, 7));
        // 0.3/(0.7) * 30 ≈ 13 sites.
        assert_eq!(plan.len(), 13);
        assert_eq!(plan[0].profile, AdversarialProfile::SpamFarm);
        assert_eq!(plan[1].profile, AdversarialProfile::MangledClone);
        assert_eq!(plan[2].profile, AdversarialProfile::StaleMirror);
        assert_eq!(plan[3].profile, AdversarialProfile::ConflictingFacts);
        let hosts: std::collections::HashSet<&str> = plan.iter().map(|s| s.host.as_str()).collect();
        assert_eq!(hosts.len(), plan.len(), "hosts unique");
        assert!(plan_sites(&w, 30, &AdversarialConfig::at_ratio(0.0, 7)).is_empty());
    }

    #[test]
    fn perturbations_are_wrong_but_plausible() {
        let w = world();
        let v = &RestaurantView::all(&w)[0];
        for profile in [
            AdversarialProfile::SpamFarm,
            AdversarialProfile::MangledClone,
            AdversarialProfile::StaleMirror,
            AdversarialProfile::ConflictingFacts,
        ] {
            let f = facts_for(profile, 0, v);
            assert_eq!(f.name, v.name, "{profile:?} keeps the name honest");
            assert_eq!(f.city, v.city, "{profile:?} keeps the city honest");
            assert_ne!(f.zip, v.zip, "{profile:?} flips the zip");
            assert_eq!(f.zip.len(), 5, "flipped zip still looks like a zip");
            assert_ne!(
                f.phone,
                v.phones.first().cloned().unwrap_or_default(),
                "{profile:?} flips the phone"
            );
            assert_eq!(f.phone.len(), 10, "flipped phone is still 10 digits");
            assert_ne!(f.hours, v.hours, "{profile:?} flips the hours");
        }
    }

    #[test]
    fn sites_lie_consistently_but_do_not_collude() {
        // One site repeats its own lies verbatim (pure function of salt)…
        let w = world();
        let v = &RestaurantView::all(&w)[1];
        let a = facts_for(AdversarialProfile::SpamFarm, 0, v);
        let a2 = facts_for(AdversarialProfile::SpamFarm, 0, v);
        assert_eq!(a.phone, a2.phone);
        assert_eq!(a.zip, a2.zip);
        // …but two sites of the same profile fabricate independently: their
        // wrong values differ, so no spam bloc outnumbers the honest pair.
        let b = facts_for(AdversarialProfile::SpamFarm, 4, v);
        assert_ne!(a.phone, b.phone);
        assert_ne!(a.zip, b.zip);
        // …and different profiles assert *different* wrong facts too.
        let c = facts_for(AdversarialProfile::MangledClone, 1, v);
        assert_ne!(a.phone, c.phone);
        assert_ne!(a.zip, c.zip);
    }

    #[test]
    fn pages_render_the_asserted_facts() {
        let w = world();
        let plan = plan_sites(&w, 20, &AdversarialConfig::at_ratio(0.2, 9));
        let mut rng = StdRng::seed_from_u64(9);
        for site in &plan {
            for p in adversarial_pages(&w, site, &mut rng) {
                if p.truth.kind != PageKind::AdversarialBiz {
                    continue;
                }
                let text = p.text();
                for (k, val) in &p.truth.records[0].fields {
                    assert!(text.contains(val), "{k} value {val:?} must be rendered");
                }
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let w = world();
        let plan = plan_sites(&w, 20, &AdversarialConfig::at_ratio(0.3, 5));
        let render = || {
            let mut rng = StdRng::seed_from_u64(5);
            plan.iter()
                .flat_map(|s| adversarial_pages(&w, s, &mut rng))
                .collect::<Vec<Page>>()
        };
        let (a, b) = (render(), render());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }
}
