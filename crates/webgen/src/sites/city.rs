//! City-guide sites (the paper's `sanjose.com` example, §4.2 "Relational
//! Classification").
//!
//! Each city site hosts pages in several categories (dining, hotels,
//! attractions, nightlife, events). Crucially, the events pages of a site
//! live under a site-specific directory (often `calendar`, sometimes
//! `events` or `whatson`), and pages of the same category link to each other
//! — the *relational structure* a per-site classifier can exploit to clean
//! up the labels of a noisy global classifier.

// woc-lint: allow-file(panic-in-lib) — site generator: unwraps are choose() over
// statically non-empty pools.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;

use crate::dom::Node;
use crate::page::{Page, PageKind, PageTruth, TruthRecord};
use crate::sites::style::SiteStyle;
use crate::world::{slugify, World};

const NON_EVENT_CATEGORIES: &[(&str, &[&str])] = &[
    (
        "dining",
        &[
            "brunch",
            "patio",
            "chefs",
            "wine list",
            "tasting menu",
            "happy hour",
        ],
    ),
    (
        "hotels",
        &[
            "rooms",
            "suites",
            "check in",
            "lobby",
            "concierge",
            "amenities",
        ],
    ),
    (
        "attractions",
        &[
            "museum",
            "gallery",
            "park",
            "tour",
            "landmark",
            "exhibit hall",
        ],
    ),
    (
        "nightlife",
        &[
            "cocktails",
            "dance floor",
            "live band",
            "late night",
            "cover charge",
            "bar",
        ],
    ),
];

/// Words typical of event pages — the vocabulary a global events classifier
/// keys on. Event pages also contain misleading non-event words (and vice
/// versa), which is what makes the global classifier noisy.
const EVENT_WORDS: &[&str] = &[
    "tickets",
    "doors open",
    "admission",
    "rsvp",
    "lineup",
    "schedule",
    "venue",
    "performance",
];

/// Generate one city-guide site for each city that has events or
/// restaurants, returning all pages.
pub fn city_guide_pages(world: &World, rng: &mut StdRng) -> Vec<Page> {
    let mut cities: Vec<String> = world
        .events
        .iter()
        .map(|&e| world.attr(e, "city"))
        .chain(world.restaurants.iter().map(|&r| world.attr(r, "city")))
        .collect();
    cities.sort();
    cities.dedup();

    let mut pages = Vec::new();
    for city in &cities {
        let style = SiteStyle::sample(rng);
        let host = format!("{}-guide.example.com", slugify(city));
        let base = format!("http://{host}");
        // Site-specific events directory name — relational structure differs
        // per site (paper §4.2: "this relational structure will be different
        // for different web sites").
        let events_dir = *["calendar", "events", "whatson"].choose(rng).unwrap();

        let nav: Vec<(String, String)> = NON_EVENT_CATEGORIES
            .iter()
            .map(|&(cat, _)| (cat.to_string(), format!("{base}/{cat}/")))
            .chain(std::iter::once((
                "events".to_string(),
                format!("{base}/{events_dir}/"),
            )))
            .collect();

        // Content pages per non-event category.
        let mut urls_by_cat: Vec<(String, Vec<String>)> = Vec::new();
        for &(cat, words) in NON_EVENT_CATEGORIES {
            let n = rng.random_range(2..5);
            let urls: Vec<String> = (0..n)
                .map(|i| format!("{base}/{cat}/page-{i}.html"))
                .collect();
            urls_by_cat.push((cat.to_string(), urls.clone()));
            for (i, url) in urls.iter().enumerate() {
                let mut text = format!("Your guide to {cat} in {city}. ");
                for _ in 0..rng.random_range(2..5) {
                    text.push_str(words.choose(rng).unwrap());
                    text.push_str(", ");
                }
                // Noise: non-event pages regularly mention event words
                // (hotels sell "tickets", bars have "lineup"s) — the
                // cross-site vocabulary bleed that makes a global classifier
                // noisy (§4.2).
                for _ in 0..4 {
                    if rng.random_bool(0.5) {
                        text.push_str(EVENT_WORDS.choose(rng).unwrap());
                        text.push_str(". ");
                    }
                }
                let mut content = vec![
                    style.headline(&format!("{city} {cat} guide {i}")),
                    style.para(&text),
                ];
                // Confounders: hotel deals carry dates and prices too, with
                // the same labeled-field markup event pages use.
                if rng.random_bool(0.5) {
                    content.push(style.field(
                        "date",
                        "Updated",
                        &format!(
                            "2009-{:02}-{:02}",
                            rng.random_range(1..=12),
                            rng.random_range(1..=28)
                        ),
                    ));
                }
                if rng.random_bool(0.4) {
                    content.push(style.field(
                        "price",
                        "From",
                        &format!("${}.00", rng.random_range(49..300)),
                    ));
                }
                // Same-category sibling links (the relational signal).
                let mut sib = Node::elem("div").class(&style.class_for("sib"));
                for (j, u) in urls.iter().enumerate() {
                    if j != i {
                        sib = sib.child(style.link(&format!("more {j}"), u));
                    }
                }
                content.push(sib);
                pages.push(Page {
                    url: url.clone(),
                    site: host.clone(),
                    title: format!("{city} {cat} {i}"),
                    dom: style.page(&format!("{city} {cat}"), nav.clone(), content),
                    truth: PageTruth {
                        kind: PageKind::CityCategory,
                        about: None,
                        records: Vec::new(),
                        mentions: Vec::new(),
                    },
                });
            }
        }

        // Event pages in the events directory.
        let city_events: Vec<_> = world
            .events
            .iter()
            .copied()
            .filter(|&e| world.attr(e, "city") == *city)
            .collect();
        let event_urls: Vec<String> = city_events
            .iter()
            .map(|&e| {
                format!(
                    "{base}/{events_dir}/{}.html",
                    slugify(&world.attr(e, "name"))
                )
            })
            .collect();
        for (idx, &eid) in city_events.iter().enumerate() {
            let rec = world.rec(eid);
            let name = rec.best_string("name").unwrap_or_default();
            let date = rec.best_string("date").unwrap_or_default();
            let venue = rec.best_string("venue").unwrap_or_default();
            let price = rec.best_string("price").unwrap_or_default();
            let category = rec.best_string("category").unwrap_or_default();
            let mut text = format!("{name} at {venue}, {date}. ");
            if rng.random_bool(0.3) {
                text.push_str(&format!("See our guide to {city}. "));
            }
            // Event vocabulary is present but not guaranteed — some event
            // pages read plainly, which is exactly what defeats a purely
            // global classifier.
            for _ in 0..2 {
                if rng.random_bool(0.6) {
                    text.push_str(EVENT_WORDS.choose(rng).unwrap());
                    text.push_str(". ");
                }
            }
            // Noise in the other direction: event pages read like dining or
            // nightlife copy half the time.
            for _ in 0..3 {
                if rng.random_bool(0.5) {
                    let (_, words) = NON_EVENT_CATEGORIES.choose(rng).unwrap();
                    text.push_str(words.choose(rng).unwrap());
                    text.push_str(". ");
                }
            }
            let mut content = vec![
                style.headline(&name),
                style.field("date", "Date", &date),
                style.field("venue", "Venue", &venue),
                style.field("price", "Tickets", &price),
                style.para(&text),
            ];
            let mut sib = Node::elem("div").class(&style.class_for("sib"));
            for (j, u) in event_urls.iter().enumerate() {
                if j != idx {
                    sib = sib.child(style.link(&format!("event {j}"), u));
                }
            }
            content.push(sib);
            pages.push(Page {
                url: event_urls[idx].clone(),
                site: host.clone(),
                title: name.clone(),
                dom: style.page(&name, nav.clone(), content),
                truth: PageTruth {
                    kind: PageKind::CityEvents,
                    about: Some(eid),
                    records: vec![TruthRecord {
                        concept: world.concepts.event,
                        entity: eid,
                        fields: vec![
                            ("name".into(), name.clone()),
                            ("date".into(), date),
                            ("venue".into(), venue),
                            ("price".into(), price),
                            ("category".into(), category),
                        ],
                    }],
                    mentions: vec![eid],
                },
            });
        }
    }
    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rand::SeedableRng;

    #[test]
    fn event_pages_live_in_one_directory_per_site() {
        let w = World::generate(WorldConfig::tiny(21));
        let mut rng = StdRng::seed_from_u64(1);
        let pages = city_guide_pages(&w, &mut rng);
        let mut sites: std::collections::HashMap<&str, std::collections::HashSet<&str>> =
            std::collections::HashMap::new();
        for p in pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::CityEvents)
        {
            sites
                .entry(p.site.as_str())
                .or_default()
                .insert(p.directory());
        }
        for (site, dirs) in sites {
            assert_eq!(
                dirs.len(),
                1,
                "site {site} should use one events dir, got {dirs:?}"
            );
            let d = dirs.into_iter().next().unwrap();
            assert!(["calendar", "events", "whatson"].contains(&d));
        }
    }

    #[test]
    fn every_event_gets_a_page() {
        let w = World::generate(WorldConfig::tiny(22));
        let mut rng = StdRng::seed_from_u64(2);
        let pages = city_guide_pages(&w, &mut rng);
        let event_pages = pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::CityEvents)
            .count();
        assert_eq!(event_pages, w.events.len());
    }

    #[test]
    fn non_event_pages_exist_in_each_category() {
        let w = World::generate(WorldConfig::tiny(23));
        let mut rng = StdRng::seed_from_u64(3);
        let pages = city_guide_pages(&w, &mut rng);
        let dirs: std::collections::HashSet<&str> = pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::CityCategory)
            .map(|p| p.directory())
            .collect();
        for (cat, _) in NON_EVENT_CATEGORIES {
            assert!(dirs.contains(cat), "missing category dir {cat}");
        }
    }

    #[test]
    fn sibling_links_stay_in_category() {
        let w = World::generate(WorldConfig::tiny(24));
        let mut rng = StdRng::seed_from_u64(4);
        let pages = city_guide_pages(&w, &mut rng);
        for p in &pages {
            let own_dir = p.directory().to_string();
            for link in p.links() {
                if link.contains(&p.site) && link.contains("page-") {
                    let dir = crate::page::url_path(&link)
                        .trim_start_matches('/')
                        .split('/')
                        .next()
                        .unwrap()
                        .to_string();
                    assert_eq!(dir, own_dir, "sibling links are same-category on {}", p.url);
                }
            }
        }
    }
}
