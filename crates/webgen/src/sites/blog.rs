//! Blog/article sites — the *article pages* of Table 1 and the raw material
//! for semantic linking ("mining articles to understand references to records
//! in a web of concepts", §5.4).

// woc-lint: allow-file(panic-in-lib) — site generator: unwraps are choose() over
// statically non-empty pools.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;

use woc_lrec::LrecId;

use crate::page::{Page, PageKind, PageTruth};
use crate::prose;
use crate::sites::style::SiteStyle;
use crate::world::World;

/// Configuration for the blog corpus.
#[derive(Debug, Clone)]
pub struct BlogSpec {
    /// Hostname of the blog.
    pub host: String,
    /// Number of articles.
    pub articles: usize,
    /// Max entities mentioned per article.
    pub max_mentions: usize,
}

impl Default for BlogSpec {
    fn default() -> Self {
        Self {
            host: "webfood.example.com".into(),
            articles: 40,
            max_mentions: 3,
        }
    }
}

/// Generate blog articles mentioning restaurants, products and events by
/// their canonical names.
pub fn blog_pages(world: &World, spec: &BlogSpec, rng: &mut StdRng) -> Vec<Page> {
    let style = SiteStyle::sample(rng);
    let base = format!("http://{}", spec.host);
    let topics = [
        "dining trends",
        "weekend plans",
        "camera gear",
        "local events",
        "city life",
        "eating out on a budget",
    ];
    // Mentionable pool: restaurants, products, events.
    let pool: Vec<LrecId> = world
        .restaurants
        .iter()
        .chain(&world.products)
        .chain(&world.events)
        .copied()
        .collect();

    let mut pages = Vec::new();
    let article_urls: Vec<String> = (0..spec.articles)
        .map(|i| format!("{base}/post/{i}.html"))
        .collect();
    for i in 0..spec.articles {
        let topic = *topics.choose(rng).unwrap();
        let n = rng.random_range(1..=spec.max_mentions.max(1));
        let mut mentions: Vec<LrecId> = Vec::new();
        while mentions.len() < n && mentions.len() < pool.len() {
            let m = *pool.choose(rng).unwrap();
            if !mentions.contains(&m) {
                mentions.push(m);
            }
        }
        let names: Vec<String> = mentions.iter().map(|&m| world.attr(m, "name")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let text = prose::article_text(rng, topic, &name_refs);
        let title = format!("Notes on {topic} #{i}");
        let mut content = vec![style.headline(&title), style.para(&text)];
        // "Related posts" links — the Article→Article cell of Table 1 needs
        // a linked article graph to compare against.
        let mut rel = crate::dom::Node::elem("div").class(&style.class_for("rel"));
        for _ in 0..2 {
            let j = rng.random_range(0..spec.articles);
            if j != i {
                rel = rel.child(style.link(&format!("post {j}"), &article_urls[j]));
            }
        }
        content.push(rel);
        let nav = vec![("Blog home".to_string(), format!("{base}/"))];
        pages.push(Page {
            url: article_urls[i].clone(),
            site: spec.host.clone(),
            title,
            dom: style.page(topic, nav, content),
            truth: PageTruth {
                kind: PageKind::Article,
                about: None,
                records: Vec::new(),
                mentions,
            },
        });
    }
    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rand::SeedableRng;

    #[test]
    fn articles_mention_entities_verbatim() {
        let w = World::generate(WorldConfig::tiny(51));
        let mut rng = StdRng::seed_from_u64(1);
        let pages = blog_pages(&w, &BlogSpec::default(), &mut rng);
        assert_eq!(pages.len(), 40);
        for p in &pages {
            assert!(!p.truth.mentions.is_empty());
            let text = p.text();
            for &m in &p.truth.mentions {
                let name = w.attr(m, "name");
                assert!(
                    text.contains(&name),
                    "article must mention {name:?} verbatim"
                );
            }
        }
    }

    #[test]
    fn articles_link_to_each_other() {
        let w = World::generate(WorldConfig::tiny(52));
        let mut rng = StdRng::seed_from_u64(2);
        let pages = blog_pages(&w, &BlogSpec::default(), &mut rng);
        let with_links = pages
            .iter()
            .filter(|p| p.links().iter().any(|l| l.contains("/post/")))
            .count();
        assert!(with_links > pages.len() / 2);
    }
}
