//! Per-site presentation styles.
//!
//! Real websites serve pages "off a database … to generate highly structured
//! and regular HTML" (paper §4.1) — regular *within* a site, different
//! *across* sites. [`SiteStyle`] captures that: each site draws its own class
//! names, list markup, wrapper nesting and label conventions, so wrappers
//! learned on one site do not transfer verbatim to another, exactly the
//! situation that motivates domain-centric extraction.

// woc-lint: allow-file(panic-in-lib) — site generator: unwraps are choose() over
// statically non-empty pools.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dom::Node;

/// A site's presentation conventions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteStyle {
    /// Site-specific CSS class prefix (e.g. `yx`), making class names
    /// site-local.
    pub class_prefix: String,
    /// Render record lists as `<table><tr><td>` instead of `<ul><li>`.
    pub use_table_lists: bool,
    /// Extra nested wrapper `<div>`s around the main content (0..=2).
    pub wrapper_depth: usize,
    /// Render `Label:` spans before field values.
    pub label_fields: bool,
    /// Number of boilerplate navigation links.
    pub nav_links: usize,
    /// Put navigation after the content instead of before.
    pub nav_last: bool,
}

impl SiteStyle {
    /// Sample a style from a site-specific RNG.
    pub fn sample(rng: &mut StdRng) -> SiteStyle {
        let prefixes = ["yx", "cs", "lp", "qd", "mv", "tk", "rb", "zn", "wf", "hg"];
        SiteStyle {
            class_prefix: format!(
                "{}{}",
                prefixes.choose(rng).unwrap(),
                rng.random_range(0..100)
            ),
            use_table_lists: rng.random_bool(0.4),
            wrapper_depth: rng.random_range(0..3),
            label_fields: rng.random_bool(0.6),
            nav_links: rng.random_range(2..6),
            nav_last: rng.random_bool(0.2),
        }
    }

    /// A fixed plain style (tests).
    pub fn plain() -> SiteStyle {
        SiteStyle {
            class_prefix: "pl".into(),
            use_table_lists: false,
            wrapper_depth: 0,
            label_fields: true,
            nav_links: 2,
            nav_last: false,
        }
    }

    /// Site-local class name for a field.
    pub fn class_for(&self, field: &str) -> String {
        format!("{}-{}", self.class_prefix, field)
    }

    /// Build a full page DOM: `html > body > [nav, wrapped main content]`.
    pub fn page(&self, title: &str, nav: Vec<(String, String)>, content: Vec<Node>) -> Node {
        let mut main = Node::elem("div")
            .class(&self.class_for("main"))
            .children(content);
        for _ in 0..self.wrapper_depth {
            main = Node::elem("div").class(&self.class_for("wrap")).child(main);
        }
        let mut nav_node = Node::elem("div").class(&self.class_for("nav"));
        for (text, href) in nav.into_iter().take(self.nav_links.max(1)) {
            nav_node = nav_node.child(Node::elem("a").attr("href", &href).text_child(text));
        }
        let body = if self.nav_last {
            Node::elem("body").child(main).child(nav_node)
        } else {
            Node::elem("body").child(nav_node).child(main)
        };
        Node::elem("html")
            .child(Node::elem("head").child(Node::elem("title").text_child(title)))
            .child(body)
    }

    /// A labeled field block: `<div class="{p}-{name}">[<span class="{p}-l">Label:</span>]<span class="{p}-v">value</span></div>`.
    pub fn field(&self, name: &str, label: &str, value: &str) -> Node {
        let mut div = Node::elem("div").class(&self.class_for(name));
        if self.label_fields {
            div = div.child(
                Node::elem("span")
                    .class(&self.class_for("l"))
                    .text_child(format!("{label}:")),
            );
        }
        div.child(
            Node::elem("span")
                .class(&self.class_for("v"))
                .text_child(value),
        )
    }

    /// A record list: each row is a sequence of cell nodes. Rendered as a
    /// table or a `ul` per the style; either way rows share structure, which
    /// is the repeating pattern list extraction looks for.
    pub fn list(&self, name: &str, rows: Vec<Vec<Node>>) -> Node {
        if self.use_table_lists {
            let mut table = Node::elem("table").class(&self.class_for(name));
            for cells in rows {
                let mut tr = Node::elem("tr");
                for c in cells {
                    tr = tr.child(Node::elem("td").child(c));
                }
                table = table.child(tr);
            }
            table
        } else {
            let mut ul = Node::elem("ul").class(&self.class_for(name));
            for cells in rows {
                let mut li = Node::elem("li");
                for c in cells {
                    li = li.child(c);
                }
                ul = ul.child(li);
            }
            ul.child(
                Node::elem("li")
                    .class(&self.class_for("foot"))
                    .text_child("·"),
            )
        }
    }

    /// A headline node.
    pub fn headline(&self, text: &str) -> Node {
        Node::elem("h1")
            .class(&self.class_for("h"))
            .text_child(text)
    }

    /// A paragraph of running text.
    pub fn para(&self, text: &str) -> Node {
        Node::elem("p").class(&self.class_for("p")).text_child(text)
    }

    /// A link node.
    pub fn link(&self, text: &str, href: &str) -> Node {
        Node::elem("a").attr("href", href).text_child(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sampled_styles_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let styles: Vec<SiteStyle> = (0..10).map(|_| SiteStyle::sample(&mut rng)).collect();
        let prefixes: std::collections::HashSet<_> =
            styles.iter().map(|s| s.class_prefix.clone()).collect();
        assert!(prefixes.len() > 5, "prefixes should mostly differ");
    }

    #[test]
    fn page_structure() {
        let s = SiteStyle::plain();
        let p = s.page(
            "Title",
            vec![("Home".into(), "/".into())],
            vec![s.headline("H"), s.field("phone", "Phone", "408-555-0134")],
        );
        assert!(p.text_content().contains("Phone: 408-555-0134"));
        assert!(p.find_class("pl-phone").is_some());
        assert!(p.find_class("pl-nav").is_some());
        let html = p.to_html();
        assert_eq!(crate::dom::parse_html(&html), p, "round-trips");
    }

    #[test]
    fn wrapper_depth_respected() {
        let mut s = SiteStyle::plain();
        s.wrapper_depth = 2;
        let p = s.page("t", vec![], vec![s.para("x")]);
        // main is nested under two wrap divs.
        let body = &p.child_nodes()[1];
        let nav_then_wrap = body.child_nodes();
        let wrap = &nav_then_wrap[1];
        assert_eq!(wrap.get_attr("class"), Some("pl-wrap"));
        assert_eq!(wrap.child_nodes()[0].get_attr("class"), Some("pl-wrap"));
    }

    #[test]
    fn table_and_ul_lists() {
        let mut s = SiteStyle::plain();
        let rows = vec![
            vec![Node::text("a"), Node::text("b")],
            vec![Node::text("c"), Node::text("d")],
        ];
        s.use_table_lists = true;
        let t = s.list("rows", rows.clone());
        assert_eq!(t.tag(), Some("table"));
        assert_eq!(t.find_tag("tr").len(), 2);
        s.use_table_lists = false;
        let u = s.list("rows", rows);
        assert_eq!(u.tag(), Some("ul"));
        assert_eq!(u.find_tag("li").len(), 3, "2 rows + footer");
    }

    #[test]
    fn unlabeled_fields() {
        let mut s = SiteStyle::plain();
        s.label_fields = false;
        let f = s.field("zip", "Zip", "95014");
        assert_eq!(f.text_content(), "95014");
    }
}
