//! The shopping domain: one catalog site per seller, with product detail
//! pages and category listings (the paper's product/seller/review shopping
//! domain, plus the §2.3 camera taxonomy examples).

// woc-lint: allow-file(panic-in-lib) — site generator: unwraps are choose() over
// statically non-empty pools.

use rand::rngs::StdRng;
use rand::Rng;

use woc_lrec::LrecId;

use crate::dom::Node;
use crate::page::{Page, PageKind, PageTruth, TruthRecord};
use crate::sites::style::SiteStyle;
use crate::world::{slugify, World};

/// Generate all seller catalog sites.
pub fn shop_pages(world: &World, rng: &mut StdRng) -> Vec<Page> {
    let mut pages = Vec::new();

    // Seller → offers.
    let mut by_seller: std::collections::HashMap<LrecId, Vec<LrecId>> =
        std::collections::HashMap::new();
    for &o in &world.offers {
        if let Some(s) = world
            .rec(o)
            .best("seller")
            .and_then(|e| e.value.as_ref_id())
        {
            by_seller.entry(s).or_default().push(o);
        }
    }

    for &seller in &world.sellers {
        let style = SiteStyle::sample(rng);
        let homepage = world.attr(seller, "homepage");
        let host = crate::page::url_host(&homepage).to_string();
        let base = format!("http://{host}");
        let seller_name = world.attr(seller, "name");
        let offers = by_seller.get(&seller).cloned().unwrap_or_default();

        let nav = vec![
            ("Home".to_string(), format!("{base}/")),
            (
                "All products".to_string(),
                format!("{base}/category/all.html"),
            ),
            ("Cart".to_string(), format!("{base}/cart")),
        ];

        // Product detail pages.
        let mut by_category: std::collections::BTreeMap<String, Vec<(LrecId, LrecId)>> =
            std::collections::BTreeMap::new();
        for &offer in &offers {
            let orec = world.rec(offer);
            let product = orec
                .best("product")
                .and_then(|e| e.value.as_ref_id())
                .unwrap();
            let prec = world.rec(product);
            let pname = prec.best_string("name").unwrap_or_default();
            let brand = prec.best_string("brand").unwrap_or_default();
            let model = prec.best_string("model").unwrap_or_default();
            let category = prec.best_string("category").unwrap_or_default();
            let price = orec.best_string("price").unwrap_or_default();
            let in_stock = orec.best_string("in_stock").unwrap_or_default() == "true";
            let url = format!("{base}/product/{}.html", slugify(&pname));

            by_category
                .entry(category.clone())
                .or_default()
                .push((product, offer));

            let mut content = vec![
                style.headline(&pname),
                style.field("brand", "Brand", &brand),
                style.field("model", "Model", &model),
                style.field("category", "Category", &category),
                style.field("price", "Price", &price),
                style.field(
                    "stock",
                    "Availability",
                    if in_stock { "In stock" } else { "Out of stock" },
                ),
                style.para(&format!(
                    "Buy the {pname} from {seller_name} with free shipping over $50."
                )),
            ];
            // "Customers also bought" — the augmentation links of §5.4.
            let augments: Vec<LrecId> = prec
                .get("augments")
                .iter()
                .filter_map(|e| e.value.as_ref_id())
                .collect();
            if !augments.is_empty() {
                let mut div = Node::elem("div").class(&style.class_for("also"));
                for a in &augments {
                    let aname = world.attr(*a, "name");
                    div = div.child(
                        style.link(&aname, &format!("{base}/product/{}.html", slugify(&aname))),
                    );
                }
                content.push(Node::elem("h2").text_child("Customers also bought"));
                content.push(div);
            }

            pages.push(Page {
                url,
                site: host.clone(),
                title: format!("{pname} - {seller_name}"),
                dom: style.page(&pname, nav.clone(), content),
                truth: PageTruth {
                    kind: PageKind::ProductPage,
                    about: Some(product),
                    records: vec![
                        TruthRecord {
                            concept: world.concepts.product,
                            entity: product,
                            fields: vec![
                                ("name".into(), pname.clone()),
                                ("brand".into(), brand),
                                ("model".into(), model),
                                ("category".into(), category),
                            ],
                        },
                        TruthRecord {
                            concept: world.concepts.offer,
                            entity: offer,
                            fields: vec![("price".into(), price)],
                        },
                    ],
                    mentions: vec![product],
                },
            });
        }

        // Category listing pages.
        for (category, items) in &by_category {
            let url = format!("{base}/category/{}.html", slugify(category));
            let mut rows = Vec::new();
            let mut records = Vec::new();
            for (product, offer) in items {
                let pname = world.attr(*product, "name");
                let price = world.attr(*offer, "price");
                rows.push(vec![
                    Node::elem("a")
                        .attr("href", &format!("{base}/product/{}.html", slugify(&pname)))
                        .class(&style.class_for("pname"))
                        .text_child(&*pname),
                    Node::elem("span")
                        .class(&style.class_for("pprice"))
                        .text_child(&*price),
                ]);
                records.push(TruthRecord {
                    concept: world.concepts.product,
                    entity: *product,
                    fields: vec![("name".into(), pname), ("price".into(), price)],
                });
            }
            let content = vec![
                style.headline(&format!("{category} at {seller_name}")),
                style.list("catalog", rows),
            ];
            pages.push(Page {
                url,
                site: host.clone(),
                title: format!("{category} - {seller_name}"),
                dom: style.page(category, nav.clone(), content),
                truth: PageTruth {
                    kind: PageKind::ProductList,
                    about: None,
                    mentions: items.iter().map(|(p, _)| *p).collect(),
                    records,
                },
            });
        }

        // A simple homepage.
        let _ = rng.random_bool(0.5);
        pages.push(Page {
            url: format!("{base}/"),
            site: host.clone(),
            title: seller_name.clone(),
            dom: style.page(
                &seller_name,
                nav,
                vec![
                    style.headline(&seller_name),
                    style.para("Cameras, lenses and accessories at honest prices."),
                ],
            ),
            truth: PageTruth {
                kind: PageKind::ProductList,
                about: Some(seller),
                records: vec![],
                mentions: vec![seller],
            },
        });
    }
    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rand::SeedableRng;

    #[test]
    fn product_pages_per_offer() {
        let w = World::generate(WorldConfig::tiny(41));
        let mut rng = StdRng::seed_from_u64(1);
        let pages = shop_pages(&w, &mut rng);
        let detail = pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::ProductPage)
            .count();
        assert_eq!(detail, w.offers.len());
    }

    #[test]
    fn product_truth_matches_world() {
        let w = World::generate(WorldConfig::tiny(42));
        let mut rng = StdRng::seed_from_u64(2);
        let pages = shop_pages(&w, &mut rng);
        for p in pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::ProductPage)
        {
            let tr = &p.truth.records[0];
            assert_eq!(tr.field("name").unwrap(), w.attr(tr.entity, "name"));
            assert!(p.text().contains(tr.field("name").unwrap()));
        }
    }

    #[test]
    fn category_pages_list_products() {
        let w = World::generate(WorldConfig::tiny(43));
        let mut rng = StdRng::seed_from_u64(3);
        let pages = shop_pages(&w, &mut rng);
        let lists: Vec<_> = pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::ProductList && !p.truth.records.is_empty())
            .collect();
        assert!(!lists.is_empty());
        for p in lists {
            assert!(p.links().iter().any(|l| l.contains("/product/")));
        }
    }
}
