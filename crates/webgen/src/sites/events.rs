//! An events aggregator (the paper's `upcoming.yahoo.com` example, §2.1) —
//! a second, independently styled source of event records overlapping the
//! city-guide calendars.

use rand::rngs::StdRng;

use woc_lrec::LrecId;

use crate::dom::Node;
use crate::page::{Page, PageKind, PageTruth, TruthRecord};
use crate::sites::style::SiteStyle;
use crate::world::{slugify, World};

/// Generate the events-aggregator site (`upcoming.example.com`).
pub fn events_aggregator_pages(world: &World, rng: &mut StdRng) -> Vec<Page> {
    let style = SiteStyle::sample(rng);
    let host = "upcoming.example.com".to_string();
    let base = format!("http://{host}");
    let mut pages = Vec::new();
    let nav = vec![
        ("Home".to_string(), format!("{base}/")),
        ("Cities".to_string(), format!("{base}/cities.html")),
    ];

    // Event detail pages.
    for &eid in &world.events {
        let rec = world.rec(eid);
        let name = rec.best_string("name").unwrap_or_default();
        let date = rec.best_string("date").unwrap_or_default();
        let venue = rec.best_string("venue").unwrap_or_default();
        let city = rec.best_string("city").unwrap_or_default();
        let category = rec.best_string("category").unwrap_or_default();
        let price = rec.best_string("price").unwrap_or_default();
        let url = format!("{base}/event/{}.html", slugify(&name));
        let content = vec![
            style.headline(&name),
            style.field("when", "When", &date),
            style.field("where", "Where", &format!("{venue}, {city}")),
            style.field("category", "Category", &category),
            style.field("price", "Price", &price),
            style.link("All events in this city", &city_url(&base, &city)),
        ];
        pages.push(Page {
            url,
            site: host.clone(),
            title: name.clone(),
            dom: style.page(&name, nav.clone(), content),
            truth: PageTruth {
                kind: PageKind::EventPage,
                about: Some(eid),
                records: vec![TruthRecord {
                    concept: world.concepts.event,
                    entity: eid,
                    fields: vec![
                        ("name".into(), name),
                        ("date".into(), date),
                        ("venue".into(), venue),
                        ("city".into(), city),
                        ("category".into(), category),
                        ("price".into(), price),
                    ],
                }],
                mentions: vec![eid],
            },
        });
    }

    // City listing pages.
    let mut by_city: std::collections::BTreeMap<String, Vec<LrecId>> =
        std::collections::BTreeMap::new();
    for &e in &world.events {
        by_city.entry(world.attr(e, "city")).or_default().push(e);
    }
    for (city, events) in &by_city {
        let url = city_url(&base, city);
        let mut rows = Vec::new();
        let mut records = Vec::new();
        for &e in events {
            let name = world.attr(e, "name");
            let date = world.attr(e, "date");
            rows.push(vec![
                Node::elem("a")
                    .attr("href", &format!("{base}/event/{}.html", slugify(&name)))
                    .text_child(&*name),
                Node::elem("span")
                    .class(&style.class_for("d"))
                    .text_child(&*date),
            ]);
            records.push(TruthRecord {
                concept: world.concepts.event,
                entity: e,
                fields: vec![("name".into(), name), ("date".into(), date)],
            });
        }
        let content = vec![
            style.headline(&format!("Upcoming events in {city}")),
            style.list("events", rows),
        ];
        pages.push(Page {
            url,
            site: host.clone(),
            title: format!("Events in {city}"),
            dom: style.page(city, nav.clone(), content),
            truth: PageTruth {
                kind: PageKind::EventList,
                about: None,
                mentions: events.clone(),
                records,
            },
        });
    }
    pages
}

fn city_url(base: &str, city: &str) -> String {
    format!("{base}/city/{}.html", slugify(city))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rand::SeedableRng;

    #[test]
    fn every_event_has_detail_page() {
        let w = World::generate(WorldConfig::tiny(61));
        let mut rng = StdRng::seed_from_u64(1);
        let pages = events_aggregator_pages(&w, &mut rng);
        let detail = pages
            .iter()
            .filter(|p| p.truth.kind == PageKind::EventPage)
            .count();
        assert_eq!(detail, w.events.len());
    }

    #[test]
    fn city_lists_link_to_details() {
        let w = World::generate(WorldConfig::tiny(62));
        let mut rng = StdRng::seed_from_u64(2);
        let pages = events_aggregator_pages(&w, &mut rng);
        for p in pages.iter().filter(|p| p.truth.kind == PageKind::EventList) {
            assert!(p.links().iter().any(|l| l.contains("/event/")));
            assert!(!p.truth.records.is_empty());
        }
    }
}
