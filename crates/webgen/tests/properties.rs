//! Property tests: DOM round-trips, parser robustness, corpus determinism.

use proptest::prelude::*;
use woc_webgen::dom::{parse_html, Node};

/// Strategy generating small random DOM trees with the builders.
fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        "[a-zA-Z0-9 .,!]{1,20}".prop_map(Node::text),
        ("(div|span|p|li|b|td)", prop::option::of("[a-z]{1,8}")).prop_map(|(tag, class)| {
            let n = Node::elem(&tag);
            match class {
                Some(c) => n.class(&c),
                None => n,
            }
        }),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        (
            "(div|ul|li|span|table|tr|td|p)",
            prop::option::of("[a-z]{1,8}"),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, class, children)| {
                let mut n = Node::elem(&tag);
                if let Some(c) = class {
                    n = n.class(&c);
                }
                n.children(children)
            })
    })
}

/// Adjacent text nodes merge on parse (the writer would emit them adjacent),
/// so normalize trees before comparing round-trips.
fn merge_adjacent_text(n: &Node) -> Node {
    match n {
        Node::Text(t) => Node::text(t.trim()),
        Node::Element {
            tag,
            attrs,
            children,
        } => {
            let mut out: Vec<Node> = Vec::new();
            for c in children {
                let c = merge_adjacent_text(c);
                if let (Some(Node::Text(prev)), Node::Text(cur)) = (out.last_mut(), &c) {
                    // The parser sees "a" + "b" as one text run.
                    *prev = format!("{prev}{cur}");
                    continue;
                }
                // Whitespace-only text is dropped by the parser.
                if matches!(&c, Node::Text(t) if t.trim().is_empty()) {
                    continue;
                }
                out.push(c);
            }
            Node::Element {
                tag: tag.clone(),
                attrs: attrs.clone(),
                children: out,
            }
        }
    }
}

proptest! {
    #[test]
    fn html_round_trip(node in node_strategy()) {
        let normalized = merge_adjacent_text(&node);
        let html = normalized.to_html();
        let parsed = parse_html(&html);
        // Wrap single text roots like the parser does.
        let expected = if normalized.tag().is_some() {
            normalized
        } else {
            Node::elem("html").child(normalized)
        };
        // Parser trims text; compare normalized forms.
        prop_assert_eq!(merge_adjacent_text(&parsed), merge_adjacent_text(&expected));
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,300}") {
        let _ = parse_html(&s);
    }

    #[test]
    fn parser_never_panics_tagsoup(s in "[<>a-z\"=/ ]{0,200}") {
        let _ = parse_html(&s);
    }

    #[test]
    fn walk_paths_always_resolve(node in node_strategy()) {
        for (path, n) in node.walk() {
            if n.tag().is_some() {
                prop_assert_eq!(node.resolve(&path), Some(n));
            }
        }
    }

    #[test]
    fn text_content_contains_all_text(texts in prop::collection::vec("[a-z]{1,8}", 1..6)) {
        let mut n = Node::elem("div");
        for t in &texts {
            n = n.child(Node::elem("span").text_child(t.clone()));
        }
        let content = n.text_content();
        for t in &texts {
            prop_assert!(content.contains(t.as_str()));
        }
    }
}

#[test]
fn drift_preserves_truth_and_tokens() {
    use woc_webgen::{drift_site, generate_corpus, CorpusConfig, DriftConfig, World, WorldConfig};
    let w = World::generate(WorldConfig::tiny(15));
    let c = generate_corpus(&w, &CorpusConfig::tiny(16));
    for site in ["localreviews.example.com", "upcoming.example.com"] {
        let pages: Vec<woc_webgen::Page> = c.pages_of_site(site).into_iter().cloned().collect();
        for seed in [1u64, 2, 3] {
            let (drifted, _) = drift_site(&pages, &DriftConfig::heavy(), seed);
            for (old, new) in pages.iter().zip(&drifted) {
                assert_eq!(old.truth, new.truth, "drift never touches truth");
                assert_eq!(old.url, new.url);
                // Every original truth value still appears in the new text.
                let text = new.text();
                for tr in &old.truth.records {
                    for (_, v) in &tr.fields {
                        assert!(text.contains(v), "drift lost value {v:?} on {}", old.url);
                    }
                }
            }
        }
    }
}

#[test]
fn corpus_generation_deterministic_across_processes() {
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};
    let w1 = World::generate(WorldConfig::tiny(5));
    let w2 = World::generate(WorldConfig::tiny(5));
    let c1 = generate_corpus(&w1, &CorpusConfig::tiny(6));
    let c2 = generate_corpus(&w2, &CorpusConfig::tiny(6));
    assert_eq!(c1.pages().len(), c2.pages().len());
    for (a, b) in c1.pages().iter().zip(c2.pages()) {
        assert_eq!(a.url, b.url);
        assert_eq!(a.dom, b.dom);
    }
}
