//! Shard-level fault profiles for the cluster serving tier.
//!
//! Where [`crate::fault`] breaks individual page fetches, this module
//! breaks whole *serving nodes*: a [`ShardFaultProfile`] declares which
//! shard replicas are dead, flapping in and out of availability windows on
//! the virtual clock, or serving slowly, and a [`ShardFaultInjector`]
//! rolls every decision as a pure function of `(seed, shard, replica,
//! window | request)` — so a partition/failover scenario replays
//! byte-identically across runs and thread counts.
//!
//! The profiles mirror the failure shapes a scatter-gather router must
//! survive (see `woc-cluster`):
//!
//! * **node kill** ([`ShardFaultProfile::replica_down`]) — one replica of
//!   one shard is gone; the quorum must keep answers byte-identical;
//! * **shard blackout** ([`ShardFaultProfile::shard_blackout`]) — every
//!   replica of a shard is gone; the router must degrade with *explicit*
//!   partial-result metadata, never a silently incomplete answer;
//! * **flapping** ([`ShardFaultProfile::flappy`]) — replicas bounce per
//!   availability window, exercising hedging and replica rotation;
//! * **brownout** ([`ShardFaultProfile::slow`]) — replicas answer, but
//!   slowly enough to trip per-shard timeouts and fire hedged requests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::{fnv, mix};

/// Salt separating replica-flap rolls from request-latency rolls.
const SHARD_FLAP_SALT: u64 = 0x7368_666c;
/// Salt for per-request slowness rolls.
const SHARD_SLOW_SALT: u64 = 0x7368_736c;

/// What the simulated shard fleet does wrong.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardFaultProfile {
    /// Stable name, used in test output and failover-latency tables.
    pub name: &'static str,
    /// Shards whose *every* replica is permanently dead (blackout — e.g. a
    /// network partition isolating the whole shard).
    pub dead_shards: Vec<usize>,
    /// Individual `(shard, replica)` slots that are permanently dead (a
    /// killed node; the shard's other replicas keep serving).
    pub dead_replicas: Vec<(usize, usize)>,
    /// Probability that a replica is down for a given availability window.
    pub flap_rate: f64,
    /// Availability-window length on the virtual clock, in microseconds.
    pub flap_window_micros: u64,
    /// Probability that a single request is served slowly.
    pub slow_rate: f64,
    /// Extra virtual service time injected on a slow request.
    pub slow_extra_micros: u64,
}

impl ShardFaultProfile {
    /// No shard faults at all.
    pub fn healthy() -> Self {
        Self {
            name: "healthy",
            ..Self::default()
        }
    }

    /// One replica of one shard is dead — the single-node-kill scenario.
    pub fn replica_down(shard: usize, replica: usize) -> Self {
        Self {
            name: "replica-down",
            dead_replicas: vec![(shard, replica)],
            ..Self::default()
        }
    }

    /// Every replica of `shard` is dead — the whole-shard blackout.
    pub fn shard_blackout(shard: usize) -> Self {
        Self {
            name: "shard-blackout",
            dead_shards: vec![shard],
            ..Self::default()
        }
    }

    /// Replicas flap in and out of availability windows.
    pub fn flappy(rate: f64) -> Self {
        Self {
            name: "flappy",
            flap_rate: rate,
            flap_window_micros: 50_000,
            ..Self::default()
        }
    }

    /// Replicas answer, but a fraction of requests are served slowly —
    /// the brownout that exercises timeouts and hedging.
    pub fn slow(rate: f64, extra_micros: u64) -> Self {
        Self {
            name: "slow",
            slow_rate: rate,
            slow_extra_micros: extra_micros,
            ..Self::default()
        }
    }

    /// True when the profile injects nothing.
    pub fn is_quiet(&self) -> bool {
        self.dead_shards.is_empty()
            && self.dead_replicas.is_empty()
            && self.flap_rate == 0.0
            && self.slow_rate == 0.0
    }
}

/// Rolls shard-fault decisions from a seed. Every answer is a pure
/// function of the constructor arguments and the call parameters — no
/// interior state, so concurrent routers observe the same faults.
#[derive(Debug, Clone)]
pub struct ShardFaultInjector {
    profile: ShardFaultProfile,
    seed: u64,
}

impl ShardFaultInjector {
    /// Injector for `profile`, rolling from `seed`.
    pub fn new(profile: ShardFaultProfile, seed: u64) -> Self {
        Self { profile, seed }
    }

    /// The profile being injected.
    pub fn profile(&self) -> &ShardFaultProfile {
        &self.profile
    }

    /// Stable per-slot identity for fault rolls.
    fn slot_key(shard: usize, replica: usize) -> u64 {
        fnv(&format!("shard-{shard}/replica-{replica}"))
    }

    /// Is this replica unreachable at virtual time `now_micros`?
    pub fn replica_down(&self, shard: usize, replica: usize, now_micros: u64) -> bool {
        if self.profile.dead_shards.contains(&shard)
            || self.profile.dead_replicas.contains(&(shard, replica))
        {
            return true;
        }
        if self.profile.flap_rate > 0.0 && self.profile.flap_window_micros > 0 {
            let window = now_micros / self.profile.flap_window_micros;
            return StdRng::seed_from_u64(mix(
                self.seed ^ SHARD_FLAP_SALT,
                mix(Self::slot_key(shard, replica), window),
            ))
            .random_bool(self.profile.flap_rate.min(1.0));
        }
        false
    }

    /// Extra virtual service latency injected into request `seq` at this
    /// replica (0 unless the slowness roll fires).
    pub fn extra_latency_micros(&self, shard: usize, replica: usize, seq: u64) -> u64 {
        if self.profile.slow_rate <= 0.0 {
            return 0;
        }
        let slow = StdRng::seed_from_u64(mix(
            self.seed ^ SHARD_SLOW_SALT,
            mix(Self::slot_key(shard, replica), seq),
        ))
        .random_bool(self.profile.slow_rate.min(1.0));
        if slow {
            self.profile.slow_extra_micros
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_declare_their_shape() {
        assert!(ShardFaultProfile::healthy().is_quiet());
        assert!(!ShardFaultProfile::replica_down(0, 1).is_quiet());
        assert!(!ShardFaultProfile::shard_blackout(2).is_quiet());
        assert!(!ShardFaultProfile::flappy(0.3).is_quiet());
        assert!(!ShardFaultProfile::slow(0.5, 10_000).is_quiet());
    }

    #[test]
    fn dead_slots_are_down_at_any_time() {
        let inj = ShardFaultInjector::new(ShardFaultProfile::replica_down(1, 0), 11);
        for now in [0, 1, 1_000_000, u64::MAX / 2] {
            assert!(inj.replica_down(1, 0, now));
            assert!(!inj.replica_down(1, 1, now), "sibling replica untouched");
            assert!(!inj.replica_down(0, 0, now), "other shard untouched");
        }
        let blackout = ShardFaultInjector::new(ShardFaultProfile::shard_blackout(2), 17);
        for replica in 0..4 {
            assert!(blackout.replica_down(2, replica, 123));
        }
        assert!(!blackout.replica_down(1, 0, 123));
    }

    #[test]
    fn flap_rolls_are_deterministic_and_window_keyed() {
        let a = ShardFaultInjector::new(ShardFaultProfile::flappy(0.5), 42);
        let b = ShardFaultInjector::new(ShardFaultProfile::flappy(0.5), 42);
        let mut down_windows = 0;
        for window in 0..64u64 {
            let now = window * 50_000;
            let x = a.replica_down(0, 0, now);
            assert_eq!(x, b.replica_down(0, 0, now), "same seed, same roll");
            // Within one window the decision is constant.
            assert_eq!(x, a.replica_down(0, 0, now + 49_999));
            down_windows += x as usize;
        }
        assert!(
            down_windows > 5 && down_windows < 59,
            "flap rate ~0.5 must bounce ({down_windows}/64 down)"
        );
        // A different seed flips at least one window.
        let c = ShardFaultInjector::new(ShardFaultProfile::flappy(0.5), 43);
        assert!(
            (0..64u64)
                .any(|w| a.replica_down(0, 0, w * 50_000) != c.replica_down(0, 0, w * 50_000)),
            "different seeds must differ somewhere"
        );
    }

    #[test]
    fn slow_rolls_hit_roughly_at_rate() {
        let inj = ShardFaultInjector::new(ShardFaultProfile::slow(0.25, 7_000), 7);
        let slow = (0..400u64)
            .filter(|&seq| inj.extra_latency_micros(0, 0, seq) == 7_000)
            .count();
        assert!(
            (40..=200).contains(&slow),
            "rate 0.25 over 400 requests landed {slow} slow"
        );
        let quiet = ShardFaultInjector::new(ShardFaultProfile::healthy(), 7);
        assert_eq!(quiet.extra_latency_micros(0, 0, 3), 0);
    }
}
