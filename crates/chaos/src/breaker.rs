//! Per-site circuit breakers over the virtual clock.
//!
//! A breaker trips to [`BreakerState::Open`] after a run of consecutive
//! failures, rejects fetches for a cooldown measured in virtual
//! microseconds, then half-opens to let one probe through: a success
//! closes it, another failure re-opens it. All transitions are driven by
//! the caller's clock, so behavior is deterministic and testable.

/// The classic three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every fetch is allowed.
    Closed,
    /// Tripped: fetches are rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe is allowed through.
    HalfOpen,
}

/// One site's circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_micros: u64,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_micros: u64,
    trips: u32,
}

impl CircuitBreaker {
    /// A closed breaker that trips after `threshold` consecutive failures
    /// and stays open for `cooldown_micros` of virtual time.
    pub fn new(threshold: u32, cooldown_micros: u64) -> Self {
        Self {
            threshold: threshold.max(1),
            cooldown_micros,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_micros: 0,
            trips: 0,
        }
    }

    /// Current state as of the last transition (call [`Self::allows`] to
    /// advance an elapsed cooldown into `HalfOpen`).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times this breaker has tripped open.
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Whether a fetch may proceed at virtual time `now_micros`. An open
    /// breaker whose cooldown has elapsed transitions to half-open and
    /// admits the probe.
    pub fn allows(&mut self, now_micros: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_micros.saturating_sub(self.opened_at_micros) >= self.cooldown_micros {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful fetch: the breaker closes and the failure run
    /// resets.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Record a failed fetch at virtual time `now_micros`. A half-open
    /// probe failure re-opens immediately; a closed breaker opens once the
    /// consecutive-failure run reaches the threshold.
    pub fn record_failure(&mut self, now_micros: u64) {
        self.consecutive_failures += 1;
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.opened_at_micros = now_micros;
            self.trips += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_cools_down() {
        let mut b = CircuitBreaker::new(3, 1_000);
        assert!(b.allows(0));
        b.record_failure(10);
        b.record_failure(20);
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.record_failure(30);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allows(500), "rejecting during cooldown");
        assert!(b.allows(1_030), "cooldown elapsed admits a probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_probe_failure_reopens_success_closes() {
        let mut b = CircuitBreaker::new(2, 100);
        b.record_failure(0);
        b.record_failure(0);
        assert!(b.allows(100));
        b.record_failure(100);
        assert_eq!(b.state(), BreakerState::Open, "probe failure re-opens");
        assert_eq!(b.trips(), 2);
        assert!(b.allows(200));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows(201));
    }

    #[test]
    fn success_resets_the_failure_run() {
        let mut b = CircuitBreaker::new(3, 100);
        b.record_failure(0);
        b.record_failure(0);
        b.record_success();
        b.record_failure(0);
        b.record_failure(0);
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "run restarted after success"
        );
    }
}
