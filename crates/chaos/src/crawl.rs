//! The resilient crawl loop: retry with seeded jittered backoff, per-site
//! circuit breakers, a content validator, and poison-page quarantine.
//!
//! The crawler walks the truth corpus in its deterministic page order and
//! simulates every fetch through a [`FaultInjector`]. Nothing sleeps:
//! injected latency, backoff delays and breaker cooldowns all accumulate
//! on a [`VirtualClock`], so a crawl is a pure function of
//! `(corpus, profile, policy, seed)`.

use std::collections::BTreeMap;

use woc_core::SiteCoverage;
use woc_webgen::WebCorpus;

use crate::backoff::{Backoff, RetryPolicy};
use crate::breaker::{BreakerState, CircuitBreaker};
use crate::fault::{fnv, mix, Delivery, FaultInjector, FaultProfile, GARBLE_LIMIT};

/// Deterministic time: microseconds that would have elapsed, accumulated
/// instead of slept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    micros: u64,
}

impl VirtualClock {
    /// A clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in microseconds.
    pub fn now(&self) -> u64 {
        self.micros
    }

    /// Advance by `micros`.
    pub fn advance(&mut self, micros: u64) {
        self.micros = self.micros.saturating_add(micros);
    }
}

/// Why a page contributed nothing to the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The body arrived but was poisoned (truncated or garbled) on every
    /// attempt.
    Poison,
    /// No body ever arrived (timeouts, errors, down windows, open breaker).
    Undelivered,
}

/// One page the crawl had to give up on, with the reason recorded in
/// lineage by [`crate::build_resilient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedPage {
    /// The page URL.
    pub url: String,
    /// Its site.
    pub site: String,
    /// Stable reason string (`truncated`, `garbled`, `timeout`, `http-5xx`,
    /// `site-unavailable`, `circuit-open`).
    pub reason: String,
    /// Poisoned content vs never delivered.
    pub kind: FaultKind,
}

/// Per-site crawl accounting: coverage plus breaker/retry telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteReport {
    /// Expected/delivered/quarantined/failed page counts.
    pub coverage: SiteCoverage,
    /// Retries spent against this site.
    pub retries: u64,
    /// Times the site's breaker tripped open.
    pub breaker_trips: u32,
    /// Breaker state when the crawl finished.
    pub breaker_state: BreakerState,
}

/// Everything one crawl produced.
#[derive(Debug, Clone)]
pub struct CrawlOutcome {
    /// The delivered pages, in crawl order — the corpus a resilient build
    /// publishes over.
    pub corpus: WebCorpus,
    /// Pages given up on, in crawl order.
    pub quarantined: Vec<QuarantinedPage>,
    /// Per-site accounting, sorted by site.
    pub sites: Vec<SiteReport>,
    /// Total retries across all pages.
    pub retries: u64,
    /// Delivered pages that arrived damaged (lightly corrupted) and were
    /// re-parsed rather than cloned.
    pub damaged_delivered: usize,
    /// Virtual microseconds the whole crawl consumed (latency + backoff).
    pub virtual_micros: u64,
}

impl CrawlOutcome {
    /// True when every expected page was delivered.
    pub fn complete(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Pages quarantined for poisoned content.
    pub fn poisoned(&self) -> usize {
        self.quarantined
            .iter()
            .filter(|q| q.kind == FaultKind::Poison)
            .count()
    }

    /// Pages never delivered.
    pub fn undelivered(&self) -> usize {
        self.quarantined
            .iter()
            .filter(|q| q.kind == FaultKind::Undelivered)
            .count()
    }

    /// Per-site coverage rows (for [`woc_core::PipelineReport::coverage`]).
    pub fn coverage(&self) -> Vec<SiteCoverage> {
        self.sites.iter().map(|s| s.coverage.clone()).collect()
    }

    /// Patch the delivered corpus with last-known-good copies of every
    /// page the crawl could not deliver: the partial-maintenance corpus.
    /// A page missing from `last_good` too (e.g. brand new and unfetchable)
    /// stays missing. Maintenance over the patched corpus serves stale
    /// copies of unreachable pages instead of tombstoning their records.
    pub fn patched_with(&self, last_good: &WebCorpus) -> WebCorpus {
        let mut out = WebCorpus::new();
        for page in self.corpus.pages() {
            out.add(page.clone());
        }
        for q in &self.quarantined {
            if let Some(old) = last_good.get(&q.url) {
                out.add(old.clone());
            }
        }
        out
    }
}

/// Validate a delivered body: the renderer always closes the `html` root,
/// so a missing close tag means truncation; [`GARBLE_LIMIT`]+ replacement
/// characters mean the encoding was destroyed in transit.
fn validate(html: &str) -> Result<(), &'static str> {
    if !html.trim_end().ends_with("</html>") {
        return Err("truncated");
    }
    if html.chars().filter(|&c| c == '\u{FFFD}').count() >= GARBLE_LIMIT {
        return Err("garbled");
    }
    Ok(())
}

enum Verdict {
    Delivered {
        damaged: bool,
    },
    GaveUp {
        reason: &'static str,
        kind: FaultKind,
    },
}

/// Crawl `truth` under `profile`, retrying with `policy`. Deterministic
/// for fixed arguments: the same seed yields a byte-identical outcome at
/// any thread count (the crawl itself is sequential; parallelism lives in
/// the build that follows).
pub fn crawl(
    truth: &WebCorpus,
    profile: &FaultProfile,
    policy: &RetryPolicy,
    seed: u64,
) -> CrawlOutcome {
    let injector = FaultInjector::new(profile.clone(), seed);
    let mut clock = VirtualClock::new();
    let mut breakers: BTreeMap<String, CircuitBreaker> = BTreeMap::new();
    let mut site_seq: BTreeMap<String, u64> = BTreeMap::new();
    let mut tallies: BTreeMap<String, (SiteCoverage, u64)> = BTreeMap::new();

    let mut corpus = WebCorpus::new();
    let mut quarantined = Vec::new();
    let mut retries_total = 0u64;
    let mut damaged_delivered = 0usize;

    for page in truth.pages() {
        let breaker = breakers.entry(page.site.clone()).or_insert_with(|| {
            CircuitBreaker::new(policy.breaker_threshold, policy.breaker_cooldown_micros)
        });
        let (tally, site_retries) = tallies.entry(page.site.clone()).or_insert_with(|| {
            (
                SiteCoverage {
                    site: page.site.clone(),
                    ..SiteCoverage::default()
                },
                0,
            )
        });
        tally.expected += 1;

        let mut backoff = Backoff::new(policy, mix(seed, fnv(&page.url)));
        let verdict = loop {
            if !breaker.allows(clock.now()) {
                break Verdict::GaveUp {
                    reason: "circuit-open",
                    kind: FaultKind::Undelivered,
                };
            }
            let seq = site_seq.entry(page.site.clone()).or_insert(0);
            let attempt_seq = *seq;
            *seq += 1;
            let (latency, result) = injector.fetch(page, backoff.attempts() - 1, attempt_seq);
            clock.advance(latency);
            let (failure_reason, failure_kind) = match result {
                Ok(Delivery::Clean(p)) => {
                    breaker.record_success();
                    corpus.add(p);
                    break Verdict::Delivered { damaged: false };
                }
                Ok(Delivery::Raw(html)) => match validate(&html) {
                    Ok(()) => {
                        breaker.record_success();
                        corpus.add(page.with_html(&html));
                        break Verdict::Delivered { damaged: true };
                    }
                    Err(reason) => (reason, FaultKind::Poison),
                },
                Err(e) => (e.reason(), FaultKind::Undelivered),
            };
            breaker.record_failure(clock.now());
            match backoff.next_delay() {
                Some(delay) => {
                    retries_total += 1;
                    *site_retries += 1;
                    clock.advance(delay);
                }
                None => {
                    break Verdict::GaveUp {
                        reason: failure_reason,
                        kind: failure_kind,
                    }
                }
            }
        };

        match verdict {
            Verdict::Delivered { damaged } => {
                tally.delivered += 1;
                if damaged {
                    damaged_delivered += 1;
                }
            }
            Verdict::GaveUp { reason, kind } => {
                match kind {
                    FaultKind::Poison => tally.quarantined += 1,
                    FaultKind::Undelivered => tally.failed += 1,
                }
                quarantined.push(QuarantinedPage {
                    url: page.url.clone(),
                    site: page.site.clone(),
                    reason: reason.to_string(),
                    kind,
                });
            }
        }
    }

    let sites = tallies
        .into_iter()
        .map(|(site, (coverage, site_retries))| {
            let breaker = &breakers[&site];
            SiteReport {
                coverage,
                retries: site_retries,
                breaker_trips: breaker.trips(),
                breaker_state: breaker.state(),
            }
        })
        .collect();

    CrawlOutcome {
        corpus,
        quarantined,
        sites,
        retries: retries_total,
        damaged_delivered,
        virtual_micros: clock.now(),
    }
}
