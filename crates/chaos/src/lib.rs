//! # woc-chaos — seeded fault injection and the resilient crawl
//!
//! A deterministic chaos layer over the crawl/fetch boundary. A
//! [`FaultProfile`] describes what the simulated web does wrong — timeouts,
//! transient 5xx errors, truncated bodies, byte-level corruption, flapping
//! availability, injected latency — and a [`FaultInjector`] rolls those
//! faults from a seed, so every failure a test observes is reproducible.
//!
//! The crate also supplies the machinery that survives the faults:
//!
//! * [`RetryPolicy`] / [`Backoff`] — seeded jittered exponential backoff
//!   whose schedule is a pure function of `(policy, seed)`;
//! * [`CircuitBreaker`] — per-site breakers driven by a [`VirtualClock`]
//!   (delays accumulate, nothing sleeps);
//! * [`crawl`] — the resilient crawl loop: retries, breakers, a content
//!   validator, and poison-page quarantine with stable reason strings;
//! * [`build_resilient`] — partial-build semantics: publish a clean web
//!   over the delivered pages, record every quarantined page in lineage,
//!   and report degraded per-site coverage in the pipeline report.
//!
//! The chaos invariant the test suite enforces: under every fault profile,
//! either a clean epoch is published (and `woc-audit` passes on it), or
//! serving stays on the previous epoch with byte-identical answers. With
//! faults disabled the resilient path is byte-identical to a plain
//! [`woc_core::build`] of the truth corpus.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backoff;
mod breaker;
mod crawl;
mod fault;
mod shardfault;

pub use backoff::{Backoff, RetryPolicy};
pub use breaker::{BreakerState, CircuitBreaker};
pub use crawl::{crawl, CrawlOutcome, FaultKind, QuarantinedPage, SiteReport, VirtualClock};
pub use fault::{Delivery, FaultInjector, FaultProfile, FetchError, GARBLE_LIMIT};
pub use shardfault::{ShardFaultInjector, ShardFaultProfile};

use woc_core::{build, PipelineConfig, WebOfConcepts};

/// Build a web of concepts from a (possibly degraded) crawl outcome.
///
/// The pipeline runs over whatever pages were delivered; every page the
/// crawl gave up on is stamped into lineage as a quarantine node carrying
/// its reason, and the report gains quarantine/failure counts plus
/// per-site coverage. A fault-free crawl adds no lineage nodes and no
/// report degradation, so its canonical bytes match a plain
/// [`woc_core::build`] of the truth corpus exactly.
pub fn build_resilient(outcome: &CrawlOutcome, config: &PipelineConfig) -> WebOfConcepts {
    let mut woc = build(&outcome.corpus, config);
    for q in &outcome.quarantined {
        woc.lineage.quarantine(&q.url, &q.reason);
    }
    woc.report.pages_quarantined = outcome.poisoned();
    woc.report.pages_failed = outcome.undelivered();
    woc.report.coverage = outcome.coverage();
    woc
}
