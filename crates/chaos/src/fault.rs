//! Fault profiles and the seeded fault injector.
//!
//! Every fault decision is a pure function of `(fault seed, page URL,
//! attempt number)` — plus `(site, availability window)` for flapping — so
//! two crawls with the same seed inject byte-identical faults regardless
//! of thread count or wall-clock time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use woc_webgen::Page;

/// FNV-1a over a string (same constants as the index digests) — the stable
/// per-URL / per-site identity that keys fault rolls.
pub(crate) fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministically combine two 64-bit values into an RNG seed.
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.rotate_left(31)
}

/// Salt separating flapping rolls from per-fetch rolls.
const FLAP_SALT: u64 = 0x666c_6170;

/// How a simulated fetch fails without delivering anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchError {
    /// The fetch exceeded its deadline.
    Timeout,
    /// The site answered with a transient server error.
    Http5xx,
    /// The site is in a down window of its availability flap.
    Unavailable,
}

impl FetchError {
    /// Stable reason string recorded in lineage quarantine nodes.
    pub fn reason(self) -> &'static str {
        match self {
            FetchError::Timeout => "timeout",
            FetchError::Http5xx => "http-5xx",
            FetchError::Unavailable => "site-unavailable",
        }
    }
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.reason())
    }
}

/// What a non-failing simulated fetch delivered.
#[derive(Debug, Clone)]
pub enum Delivery {
    /// The page arrived exactly as published (no content fault rolled) —
    /// handed over without an HTML round-trip, so a fault-free crawl
    /// reproduces the truth corpus byte-for-byte.
    Clean(Page),
    /// The page arrived as damaged HTML bytes the crawler must validate
    /// and re-parse.
    Raw(String),
}

/// A configurable mix of crawl faults. Rates are per-fetch probabilities;
/// a page's rolls are independent across attempts, so retries can succeed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Display name for reports and benches.
    pub name: &'static str,
    /// Probability a fetch times out.
    pub timeout_rate: f64,
    /// Virtual microseconds a timed-out fetch burns before failing.
    pub timeout_micros: u64,
    /// Probability of a transient 5xx-style fetch error.
    pub error_rate: f64,
    /// Probability the response body arrives truncated.
    pub truncate_rate: f64,
    /// Probability the response body arrives with byte-level corruption
    /// (encoding garbage); light corruption is delivered, heavy corruption
    /// is quarantined by the crawler's validator.
    pub corrupt_rate: f64,
    /// Fetches per availability window; `0` disables flapping.
    pub flap_period: u64,
    /// Probability a given availability window is a down window.
    pub flap_duty: f64,
    /// Base injected latency per fetch, in virtual microseconds.
    pub latency_micros: u64,
    /// Latency jitter fraction: actual latency is `base * (1 + jitter*u)`.
    pub latency_jitter: f64,
    /// Fraction of sites whose fault rates are doubled — the long-tail
    /// heterogeneity of real site populations.
    pub flaky_site_fraction: f64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self {
            name: "custom",
            timeout_rate: 0.0,
            timeout_micros: 2_000_000,
            error_rate: 0.0,
            truncate_rate: 0.0,
            corrupt_rate: 0.0,
            flap_period: 0,
            flap_duty: 0.0,
            latency_micros: 0,
            latency_jitter: 0.0,
            flaky_site_fraction: 0.0,
        }
    }
}

impl FaultProfile {
    /// No faults at all: the crawl must reproduce the truth corpus exactly.
    pub fn none() -> Self {
        Self {
            name: "none",
            ..Self::default()
        }
    }

    /// Per-site fetch timeouts.
    pub fn timeouts() -> Self {
        Self {
            name: "timeouts",
            timeout_rate: 0.15,
            flaky_site_fraction: 0.3,
            ..Self::default()
        }
    }

    /// Transient 5xx-style fetch errors.
    pub fn transient_errors() -> Self {
        Self {
            name: "transient-errors",
            error_rate: 0.2,
            flaky_site_fraction: 0.3,
            ..Self::default()
        }
    }

    /// Truncated HTML bodies.
    pub fn truncation() -> Self {
        Self {
            name: "truncation",
            truncate_rate: 0.12,
            ..Self::default()
        }
    }

    /// Byte-level corruption / encoding garbage.
    pub fn corruption() -> Self {
        Self {
            name: "corruption",
            corrupt_rate: 0.15,
            ..Self::default()
        }
    }

    /// Flapping site availability: whole windows of fetches fail.
    pub fn flapping() -> Self {
        Self {
            name: "flapping",
            flap_period: 4,
            flap_duty: 0.3,
            ..Self::default()
        }
    }

    /// Slow responses: heavy injected latency, no failures.
    pub fn slow() -> Self {
        Self {
            name: "slow",
            latency_micros: 50_000,
            latency_jitter: 1.0,
            ..Self::default()
        }
    }

    /// Every fault class at once, scaled by `rate` (the chaos-bench sweep
    /// knob): `rate` is the per-fetch probability of each failure class.
    pub fn everything(rate: f64) -> Self {
        Self {
            name: "everything",
            timeout_rate: rate,
            error_rate: rate,
            truncate_rate: rate,
            corrupt_rate: rate,
            flap_period: 6,
            flap_duty: rate,
            latency_micros: 5_000,
            latency_jitter: 0.5,
            flaky_site_fraction: 0.25,
            ..Self::default()
        }
    }

    /// Every shipped profile, for exhaustive chaos suites.
    pub fn all() -> Vec<FaultProfile> {
        vec![
            Self::none(),
            Self::timeouts(),
            Self::transient_errors(),
            Self::truncation(),
            Self::corruption(),
            Self::flapping(),
            Self::slow(),
            Self::everything(0.15),
        ]
    }

    /// True when no fault class can fire.
    pub fn is_quiet(&self) -> bool {
        self.timeout_rate == 0.0
            && self.error_rate == 0.0
            && self.truncate_rate == 0.0
            && self.corrupt_rate == 0.0
            && (self.flap_period == 0 || self.flap_duty == 0.0)
    }
}

/// Number of U+FFFD replacement characters at which the crawler's
/// validator declares a delivered body garbled and quarantines the page.
pub const GARBLE_LIMIT: usize = 12;

/// The seeded injector wrapping the fetch boundary.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    profile: FaultProfile,
    seed: u64,
}

impl FaultInjector {
    /// An injector applying `profile` with all rolls keyed on `seed`.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        Self { profile, seed }
    }

    /// The profile being injected.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// True when this site drew the doubled fault rates.
    pub fn site_is_flaky(&self, site: &str) -> bool {
        if self.profile.flaky_site_fraction <= 0.0 {
            return false;
        }
        StdRng::seed_from_u64(mix(self.seed, fnv(site)))
            .random_bool(self.profile.flaky_site_fraction.min(1.0))
    }

    fn site_rate(&self, rate: f64, site: &str) -> f64 {
        if self.site_is_flaky(site) {
            (rate * 2.0).min(0.95)
        } else {
            rate
        }
    }

    /// Whether `site` is in a down window at per-site fetch `site_seq`.
    fn flapped_down(&self, site: &str, site_seq: u64) -> bool {
        if self.profile.flap_period == 0 || self.profile.flap_duty <= 0.0 {
            return false;
        }
        let window = site_seq / self.profile.flap_period;
        StdRng::seed_from_u64(mix(self.seed ^ FLAP_SALT, mix(fnv(site), window)))
            .random_bool(self.site_rate(self.profile.flap_duty, site).min(1.0))
    }

    /// Simulate fetching `page` on its `attempt`-th try (0-based), with
    /// `site_seq` the site's monotone fetch counter (flapping windows).
    /// Returns the virtual microseconds the fetch consumed and its result.
    /// Deterministic in all arguments plus the injector seed.
    pub fn fetch(
        &self,
        page: &Page,
        attempt: u32,
        site_seq: u64,
    ) -> (u64, Result<Delivery, FetchError>) {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, mix(fnv(&page.url), attempt as u64)));
        let latency = {
            let u: f64 = rng.random();
            let jittered = self.profile.latency_micros as f64
                * (1.0 + self.profile.latency_jitter.max(0.0) * u);
            jittered as u64
        };
        if self.flapped_down(&page.site, site_seq) {
            return (latency, Err(FetchError::Unavailable));
        }
        if rng.random_bool(
            self.site_rate(self.profile.timeout_rate, &page.site)
                .min(1.0),
        ) {
            return (
                latency.saturating_add(self.profile.timeout_micros),
                Err(FetchError::Timeout),
            );
        }
        if rng.random_bool(self.site_rate(self.profile.error_rate, &page.site).min(1.0)) {
            return (latency, Err(FetchError::Http5xx));
        }
        if rng.random_bool(
            self.site_rate(self.profile.truncate_rate, &page.site)
                .min(1.0),
        ) {
            return (
                latency,
                Ok(Delivery::Raw(truncate(&page.to_html(), &mut rng))),
            );
        }
        if rng.random_bool(
            self.site_rate(self.profile.corrupt_rate, &page.site)
                .min(1.0),
        ) {
            return (
                latency,
                Ok(Delivery::Raw(corrupt(&page.to_html(), &mut rng))),
            );
        }
        (latency, Ok(Delivery::Clean(page.clone())))
    }
}

/// Cut the body somewhere in its middle (char-boundary safe). The renderer
/// always emits a trailing `</html>` close tag, so any cut strips it and
/// the crawler's validator can detect the damage.
fn truncate(html: &str, rng: &mut StdRng) -> String {
    if html.len() < 8 {
        return String::new();
    }
    let lo = html.len() / 5;
    let hi = html.len() * 4 / 5;
    let mut cut = rng.random_range(lo..hi.max(lo + 1));
    while cut > 0 && !html.is_char_boundary(cut) {
        cut -= 1;
    }
    html[..cut].to_string()
}

/// Replace a rolled number of characters with U+FFFD encoding garbage,
/// sparing the trailing close tag so corruption is not misread as
/// truncation. Light corruption (below [`GARBLE_LIMIT`] replacements) is
/// delivered to the pipeline; heavy corruption trips the validator.
fn corrupt(html: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = html.chars().collect();
    if chars.len() < 16 {
        return html.to_string();
    }
    let k: usize = rng.random_range(4..=32);
    let span = chars.len() - 8;
    for _ in 0..k {
        let idx = rng.random_range(0..span);
        chars[idx] = '\u{FFFD}';
    }
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    fn sample_page() -> Page {
        let world = World::generate(WorldConfig::tiny(7));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(3));
        corpus.pages()[0].clone()
    }

    #[test]
    fn fetch_is_deterministic_per_seed_url_attempt() {
        let page = sample_page();
        let inj = FaultInjector::new(FaultProfile::everything(0.3), 42);
        for attempt in 0..4 {
            let (la, ra) = inj.fetch(&page, attempt, 0);
            let (lb, rb) = inj.fetch(&page, attempt, 0);
            assert_eq!(la, lb);
            assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
        }
        let (_, r0) = inj.fetch(&page, 0, 0);
        let other = FaultInjector::new(FaultProfile::everything(0.3), 43);
        let (_, r1) = other.fetch(&page, 0, 0);
        // Different seeds *may* coincide on one page; over several attempts
        // the streams must diverge.
        let a: Vec<String> = (0..8)
            .map(|i| format!("{:?}", inj.fetch(&page, i, 0).1))
            .collect();
        let b: Vec<String> = (0..8)
            .map(|i| format!("{:?}", other.fetch(&page, i, 0).1))
            .collect();
        assert!(a != b || format!("{r0:?}") == format!("{r1:?}"));
    }

    #[test]
    fn quiet_profile_always_delivers_clean() {
        let page = sample_page();
        let inj = FaultInjector::new(FaultProfile::none(), 42);
        assert!(FaultProfile::none().is_quiet());
        for attempt in 0..8 {
            let (latency, r) = inj.fetch(&page, attempt, attempt as u64);
            assert_eq!(latency, 0);
            match r {
                Ok(Delivery::Clean(p)) => assert_eq!(p, page),
                other => panic!("quiet profile must deliver clean, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_strips_the_close_tag() {
        let page = sample_page();
        let html = page.to_html();
        assert!(html.ends_with("</html>"), "renderer closes the root");
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let cut = truncate(&html, &mut rng);
            assert!(!cut.ends_with("</html>"), "any cut strips the close tag");
            assert!(cut.len() < html.len());
        }
    }

    #[test]
    fn corruption_spares_the_tail_and_injects_garbage() {
        let page = sample_page();
        let html = page.to_html();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let damaged = corrupt(&html, &mut rng);
            assert!(damaged.ends_with("</html>"), "tail spared");
            assert!(damaged.chars().any(|c| c == '\u{FFFD}'));
        }
    }

    #[test]
    fn flapping_is_window_based_per_site() {
        let page = sample_page();
        let inj = FaultInjector::new(FaultProfile::flapping(), 5);
        // Within one window every fetch agrees; across many windows both
        // up and down windows occur.
        let mut down_windows = 0;
        let mut up_windows = 0;
        for w in 0..40u64 {
            let seq = w * 4;
            let first = matches!(inj.fetch(&page, 0, seq).1, Err(FetchError::Unavailable));
            for off in 1..4 {
                let again = matches!(
                    inj.fetch(&page, 0, seq + off).1,
                    Err(FetchError::Unavailable)
                );
                assert_eq!(first, again, "availability constant within a window");
            }
            if first {
                down_windows += 1;
            } else {
                up_windows += 1;
            }
        }
        assert!(down_windows > 0, "some windows are down");
        assert!(up_windows > 0, "some windows are up");
    }

    #[test]
    fn slow_profile_injects_latency_without_failures() {
        let page = sample_page();
        let inj = FaultInjector::new(FaultProfile::slow(), 5);
        let (latency, r) = inj.fetch(&page, 0, 0);
        assert!(latency >= 50_000, "base latency applies");
        assert!(latency <= 100_000, "jitter at most doubles it");
        assert!(matches!(r, Ok(Delivery::Clean(_))));
    }
}
