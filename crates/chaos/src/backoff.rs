//! Seeded retry schedule: jittered exponential backoff.
//!
//! The schedule is a pure function of its policy and seed — no wall clock,
//! no thread-local state — so a crawl that consults it is byte-identical
//! for a fixed fault seed at any thread count. Delays are *virtual*
//! microseconds accumulated on a [`crate::VirtualClock`], never slept.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Retry and circuit-breaker tunables shared by the crawl layer.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total fetch attempts per page (first try + retries), ≥ 1.
    pub max_attempts: u32,
    /// Backoff cap before the first retry, in virtual microseconds.
    pub base_micros: u64,
    /// Upper bound every backoff cap saturates at.
    pub cap_micros: u64,
    /// Jitter fraction in `[0, 1]`: retry `i` sleeps in
    /// `((1 - jitter) * cap_i, cap_i]` where `cap_i = min(cap, base * 2^i)`.
    pub jitter: f64,
    /// Consecutive failures that trip a site's circuit breaker.
    pub breaker_threshold: u32,
    /// Virtual microseconds an open breaker rejects fetches before
    /// half-opening for a probe.
    pub breaker_cooldown_micros: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_micros: 10_000,
            cap_micros: 1_000_000,
            jitter: 0.5,
            breaker_threshold: 3,
            breaker_cooldown_micros: 5_000_000,
        }
    }
}

impl RetryPolicy {
    /// The deterministic envelope of retry `attempt` (0-based): the largest
    /// delay the schedule can emit for it. Monotone non-decreasing in
    /// `attempt` and saturating at [`RetryPolicy::cap_micros`].
    pub fn cap_for(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base_micros.saturating_mul(factor).min(self.cap_micros)
    }

    /// Worst-case total delay over a full schedule: the sum of every
    /// retry's envelope. Every actual schedule's total is ≤ this bound.
    pub fn max_total_delay(&self) -> u64 {
        (0..self.max_attempts.saturating_sub(1))
            .map(|i| self.cap_for(i))
            .sum()
    }
}

/// One page's retry schedule: seeded, jittered, exhaustible.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    rng: StdRng,
    attempt: u32,
}

impl Backoff {
    /// A fresh schedule for one fetch target. `seed` should mix the fault
    /// seed with a stable identity of the target (e.g. its URL hash) so
    /// different pages jitter independently but reproducibly.
    pub fn new(policy: &RetryPolicy, seed: u64) -> Self {
        Self {
            policy: policy.clone(),
            rng: StdRng::seed_from_u64(seed),
            attempt: 0,
        }
    }

    /// Attempts consumed so far (the first fetch counts as one).
    pub fn attempts(&self) -> u32 {
        self.attempt + 1
    }

    /// The delay to wait before the next retry, in virtual microseconds —
    /// or `None` when the attempt budget is exhausted and the caller must
    /// give up. Each delay lands in `((1 - jitter) * cap_i, cap_i]`.
    pub fn next_delay(&mut self) -> Option<u64> {
        if self.attempt + 1 >= self.policy.max_attempts {
            return None;
        }
        let cap = self.policy.cap_for(self.attempt);
        self.attempt += 1;
        let u: f64 = self.rng.random();
        let shaved = (self.policy.jitter * u * cap as f64) as u64;
        Some(cap - shaved.min(cap.saturating_sub(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_saturate_and_never_decrease() {
        let p = RetryPolicy::default();
        let mut prev = 0;
        for i in 0..40 {
            let c = p.cap_for(i);
            assert!(c >= prev, "cap must be monotone at attempt {i}");
            assert!(c <= p.cap_micros);
            prev = c;
        }
        assert_eq!(p.cap_for(39), p.cap_micros, "large attempts saturate");
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let p = RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        };
        let mut a = Backoff::new(&p, 99);
        let mut b = Backoff::new(&p, 99);
        let sa: Vec<_> = std::iter::from_fn(|| a.next_delay()).collect();
        let sb: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(sa, sb);
        assert_eq!(sa.len(), 5, "max_attempts - 1 retries");
        let mut c = Backoff::new(&p, 100);
        let sc: Vec<_> = std::iter::from_fn(|| c.next_delay()).collect();
        assert_ne!(sa, sc, "different seeds jitter differently");
    }

    #[test]
    fn delays_respect_the_jitter_band() {
        let p = RetryPolicy {
            max_attempts: 8,
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        for seed in 0..50 {
            let mut b = Backoff::new(&p, seed);
            let mut i = 0;
            while let Some(d) = b.next_delay() {
                let cap = p.cap_for(i);
                assert!(d <= cap, "delay {d} above cap {cap} at retry {i}");
                assert!(
                    d as f64 >= (1.0 - p.jitter) * cap as f64 - 1.0,
                    "delay {d} below jitter band of cap {cap}"
                );
                i += 1;
            }
        }
    }

    #[test]
    fn exhaustion_is_exact() {
        let p = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        let mut b = Backoff::new(&p, 1);
        assert_eq!(b.next_delay(), None, "one attempt means zero retries");
        assert_eq!(b.attempts(), 1);
        assert_eq!(p.max_total_delay(), 0);
    }
}
