//! The chaos invariant, end to end: under every fault profile, either a
//! clean epoch is published (and `woc-audit` passes on it), or serving
//! stays on the previous epoch with byte-identical answers.
//!
//! Every test is deterministic: faults are rolled from fixed seeds, and
//! delays accumulate on a virtual clock instead of sleeping. Set
//! `WOC_CHAOS_SEED` to sweep an extra seed in CI.

use woc_audit::{audit, AuditConfig};
use woc_chaos::{build_resilient, crawl, CrawlOutcome, FaultProfile, RetryPolicy};
use woc_core::{build, PipelineConfig};
use woc_incr::{canonical_bytes, IncrEngine};
use woc_lrec::Tick;
use woc_serve::{ConceptServer, CrawlHealth, Query, ServeConfig};
use woc_webgen::{
    churn_restaurants, generate_corpus, AdversarialConfig, CorpusConfig, WebCorpus, World,
    WorldConfig,
};

/// Seeds every profile is exercised at. `WOC_CHAOS_SEED` adds one more.
fn fault_seeds() -> Vec<u64> {
    let mut seeds = vec![11, 17];
    if let Ok(extra) = std::env::var("WOC_CHAOS_SEED") {
        if let Ok(s) = extra.parse() {
            if !seeds.contains(&s) {
                seeds.push(s);
            }
        }
    }
    seeds
}

fn truth_corpus() -> WebCorpus {
    let world = World::generate(WorldConfig::tiny(700));
    generate_corpus(&world, &CorpusConfig::tiny(70))
}

fn fixed_queries() -> Vec<Query> {
    vec![
        Query::Search("pizza".to_string(), 5),
        Query::Search("thai noodles".to_string(), 5),
        Query::ConceptBox("sushi".to_string()),
        Query::Recommend("burger".to_string(), 3),
    ]
}

/// Debug-render a batch of answers: the byte-identity oracle for "serving
/// stays on the previous epoch with byte-identical answers".
fn answer_bytes(server: &ConceptServer, queries: &[Query]) -> String {
    queries
        .iter()
        .map(|q| format!("{:?}\n", server.execute(q).value))
        .collect()
}

fn crawl_health_of(outcome: &CrawlOutcome) -> CrawlHealth {
    CrawlHealth {
        breakers_open: outcome
            .sites
            .iter()
            .filter(|s| s.breaker_state != woc_chaos::BreakerState::Closed)
            .count(),
        breaker_trips: outcome
            .sites
            .iter()
            .map(|s| u64::from(s.breaker_trips))
            .sum(),
        retries: outcome.retries,
    }
}

/// The full invariant, one profile at one seed: crawl, resilient build,
/// audit, publish, then a faulted publish attempt that must leave answers
/// byte-identical, then recovery.
fn drive_profile(truth: &WebCorpus, profile: &FaultProfile, seed: u64) {
    let policy = RetryPolicy::default();
    let config = PipelineConfig::default();
    let outcome = crawl(truth, profile, &policy, seed);

    // Coverage arithmetic: every expected page is delivered, quarantined,
    // or failed — nothing is silently dropped.
    for site in &outcome.sites {
        let c = &site.coverage;
        assert_eq!(
            c.expected,
            c.delivered + c.quarantined + c.failed,
            "[{}/{seed}] site {} leaks pages",
            profile.name,
            c.site
        );
    }
    assert_eq!(
        outcome.corpus.len() + outcome.quarantined.len(),
        truth.len(),
        "[{}/{seed}] outcome must account for every truth page",
        profile.name
    );

    // A clean epoch over the delivered pages: the audit must pass even on
    // a degraded build.
    let woc = build_resilient(&outcome, &config);
    let report = audit(&woc, &AuditConfig::default());
    assert!(
        report.passed(),
        "[{}/{seed}] audit failed on resilient build:\n{report:?}",
        profile.name
    );
    assert_eq!(
        woc.report.pages_quarantined + woc.report.pages_failed,
        outcome.quarantined.len()
    );

    // Publish and pin the answers of the good epoch.
    let server = ConceptServer::new(woc, ServeConfig::default());
    server.set_crawl_health(crawl_health_of(&outcome));
    let queries = fixed_queries();
    let before = answer_bytes(&server, &queries);
    let epoch = server.epoch();

    // A publish whose rebuild dies must not perturb serving: same epoch,
    // byte-identical answers, degraded health.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = server
        .try_publish_with(|_| panic!("injected publish failure"))
        .expect_err("publish with a panicking rebuild must fail");
    std::panic::set_hook(prev_hook);
    assert!(err.to_string().contains("injected publish failure"));
    assert_eq!(
        server.epoch(),
        epoch,
        "[{}/{seed}] epoch moved",
        profile.name
    );
    assert_eq!(
        answer_bytes(&server, &queries),
        before,
        "[{}/{seed}] answers changed after failed publish",
        profile.name
    );
    let health = server.health();
    assert!(
        health.degraded,
        "[{}/{seed}] failed publish must degrade health",
        profile.name
    );
    assert_eq!(health.failed_maintains, 1);
    assert!(health.last_error.is_some());

    // Recovery: a clean publish lands a new epoch and clears the degraded
    // failure streak.
    let next = server
        .try_publish_with(|woc| woc.clone())
        .expect("clean publish succeeds");
    assert_eq!(next, epoch + 1);
    assert_eq!(server.health().consecutive_failures, 0);
}

#[test]
fn chaos_invariant_holds_under_every_profile_and_seed() {
    let truth = truth_corpus();
    for seed in fault_seeds() {
        for profile in FaultProfile::all() {
            drive_profile(&truth, &profile, seed);
        }
    }
}

#[test]
fn fault_free_crawl_is_byte_identical_to_plain_build() {
    let truth = truth_corpus();
    let outcome = crawl(&truth, &FaultProfile::none(), &RetryPolicy::default(), 11);
    assert!(outcome.complete(), "no faults, nothing quarantined");
    assert_eq!(outcome.retries, 0);
    assert_eq!(outcome.damaged_delivered, 0);

    let config = PipelineConfig::default();
    let resilient = build_resilient(&outcome, &config);
    let plain = build(&truth, &config);
    assert_eq!(
        canonical_bytes(&resilient),
        canonical_bytes(&plain),
        "faults disabled must reproduce the plain build byte-for-byte"
    );
}

#[test]
fn crawl_is_deterministic_for_a_fixed_seed() {
    let truth = truth_corpus();
    let policy = RetryPolicy::default();
    for profile in FaultProfile::all() {
        let a = crawl(&truth, &profile, &policy, 11);
        let b = crawl(&truth, &profile, &policy, 11);
        assert_eq!(a.quarantined, b.quarantined, "[{}]", profile.name);
        assert_eq!(a.retries, b.retries, "[{}]", profile.name);
        assert_eq!(a.virtual_micros, b.virtual_micros, "[{}]", profile.name);
        assert_eq!(
            canonical_bytes(&build_resilient(&a, &PipelineConfig::default())),
            canonical_bytes(&build_resilient(&b, &PipelineConfig::default())),
            "[{}]",
            profile.name
        );
    }
}

#[test]
fn different_seeds_reach_different_outcomes_under_heavy_faults() {
    let truth = truth_corpus();
    let policy = RetryPolicy::default();
    let profile = FaultProfile::everything(0.25);
    let outcomes: Vec<CrawlOutcome> = fault_seeds()
        .iter()
        .map(|&s| crawl(&truth, &profile, &policy, s))
        .collect();
    // Seeds must actually vary the fault pattern — otherwise the two-seed
    // CI sweep is testing one seed twice.
    assert!(
        outcomes
            .windows(2)
            .any(|w| w[0].quarantined != w[1].quarantined || w[0].retries != w[1].retries),
        "all seeds produced identical outcomes"
    );
}

#[test]
fn partial_maintenance_patches_unreachable_pages_from_last_good() {
    let mut world = World::generate(WorldConfig::tiny(700));
    let corpus_cfg = CorpusConfig::tiny(70);
    let v1 = generate_corpus(&world, &corpus_cfg);
    let mut seed = 1;
    while churn_restaurants(&mut world, 0.4, Tick(10), seed).is_empty() {
        seed += 1;
        assert!(seed < 1000, "no churn events after a thousand seeds");
    }
    let v2 = generate_corpus(&world, &corpus_cfg);

    let config = PipelineConfig::default();
    let mut engine = IncrEngine::new(&v1, config.clone());
    let policy = RetryPolicy::default();

    // The v2 crawl arrives degraded; patch the holes with last-good copies
    // and maintain over the patched corpus.
    let outcome = crawl(&v2, &FaultProfile::everything(0.2), &policy, 17);
    let patched = outcome.patched_with(&v1);
    assert_eq!(
        patched.len(),
        outcome.corpus.len()
            + outcome
                .quarantined
                .iter()
                .filter(|q| v1.get(&q.url).is_some())
                .count()
    );
    engine
        .maintain(&patched)
        .expect("maintenance over the patched corpus succeeds");

    // The maintained web equals a fresh build of the same patched corpus,
    // and it audits clean.
    let fresh = build(&patched, &config);
    assert_eq!(canonical_bytes(engine.web()), canonical_bytes(&fresh));
    let report = audit(engine.web(), &AuditConfig::default());
    assert!(
        report.passed(),
        "patched maintenance audit failed:\n{report:?}"
    );
}

#[test]
fn trust_and_poison_quarantine_share_one_lineage_story() {
    // Content-level (trust, site-scope) and transport-level (poison,
    // page-scope) quarantine both arrive through
    // `Lineage::quarantine_scoped` and must coexist in one build: an
    // adversarial corpus crawled under transport faults produces both
    // kinds, and W012 (page accounting) plus W016 (site accounting) audit
    // the same lineage cleanly without stepping on each other.
    let world = World::generate(WorldConfig::tiny(700));
    let mut corpus_cfg = CorpusConfig::tiny(70);
    corpus_cfg.adversarial = Some(AdversarialConfig::at_ratio(0.3, 11));
    let truth = generate_corpus(&world, &corpus_cfg);

    let outcome = crawl(
        &truth,
        &FaultProfile::everything(0.15),
        &RetryPolicy::default(),
        17,
    );
    assert!(
        !outcome.quarantined.is_empty(),
        "transport faults must poison some pages"
    );
    let woc = build_resilient(&outcome, &PipelineConfig::default());
    assert!(
        woc.report.sites_distrusted > 0,
        "the reliability model must distrust the spam sites"
    );
    assert!(
        !woc.lineage.quarantined().is_empty() && !woc.lineage.quarantined_sites().is_empty(),
        "both quarantine scopes must be present in one lineage"
    );
    // Page-scope listing never bleeds into site-scope listing or vice versa.
    for (url, _) in woc.lineage.quarantined() {
        assert!(!woc.lineage.is_site_quarantined(url));
    }
    for (site, _) in woc.lineage.quarantined_sites() {
        assert!(!woc.lineage.is_quarantined(site));
    }
    let report = audit(&woc, &AuditConfig::default());
    let w12 = report.check("W012").expect("W012 present");
    let w16 = report.check("W016").expect("W016 present");
    assert!(
        w12.passed() && w16.passed(),
        "both quarantine planes must audit clean:\n{}",
        report.render()
    );
    assert!(report.passed(), "{}", report.render());
}

#[test]
fn quarantine_reasons_are_stable_vocabulary() {
    let truth = truth_corpus();
    let policy = RetryPolicy::default();
    const KNOWN: [&str; 6] = [
        "truncated",
        "garbled",
        "timeout",
        "http-5xx",
        "site-unavailable",
        "circuit-open",
    ];
    for seed in fault_seeds() {
        let outcome = crawl(&truth, &FaultProfile::everything(0.3), &policy, seed);
        for q in &outcome.quarantined {
            assert!(
                KNOWN.contains(&q.reason.as_str()),
                "unknown quarantine reason {:?}",
                q.reason
            );
        }
        // Heavy faults must actually quarantine something, or the reason
        // assertions above are vacuous.
        assert!(
            !outcome.quarantined.is_empty(),
            "everything(0.3) quarantined nothing"
        );
    }
}
