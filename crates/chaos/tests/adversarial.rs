//! The adversarial-web invariant, end to end: at spam-site ratios up to
//! 50%, the source-reliability fixpoint quarantines every planted
//! adversarial site and not one honest site, the audit (including W016,
//! the source-reliability check) passes, and served search/lookup/recommend
//! answers are byte-identical to a clean-corpus build of the same world.
//!
//! Everything is deterministic in the seeds below. Set `WOC_ADV_SEED` to
//! sweep an extra adversarial-rendering seed in CI.

use std::collections::BTreeSet;

use woc_audit::{audit, AuditConfig};
use woc_core::{build, PipelineConfig, WebOfConcepts};
use woc_serve::{ConceptServer, Query, ServeConfig};
use woc_webgen::sites::adversarial::plan_sites;
use woc_webgen::{generate_corpus, AdversarialConfig, CorpusConfig, WebCorpus, World, WorldConfig};

/// Spam ratios every seed is exercised at.
const RATIOS: [f64; 3] = [0.1, 0.3, 0.5];

/// Seeds the adversarial renderer is exercised at. `WOC_ADV_SEED` adds one.
fn adv_seeds() -> Vec<u64> {
    let mut seeds = vec![11, 17];
    if let Ok(extra) = std::env::var("WOC_ADV_SEED") {
        if let Ok(s) = extra.parse() {
            if !seeds.contains(&s) {
                seeds.push(s);
            }
        }
    }
    seeds
}

fn fixed_world() -> World {
    World::generate(WorldConfig::tiny(700))
}

fn clean_corpus(world: &World) -> WebCorpus {
    generate_corpus(world, &CorpusConfig::tiny(70))
}

fn spam_corpus(world: &World, adv: &AdversarialConfig) -> WebCorpus {
    let mut cfg = CorpusConfig::tiny(70);
    cfg.adversarial = Some(adv.clone());
    generate_corpus(world, &cfg)
}

/// A query mix covering all three serving planes.
fn fixed_queries() -> Vec<Query> {
    vec![
        Query::Search("pizza".to_string(), 5),
        Query::Search("thai noodles".to_string(), 5),
        Query::Search("sushi downtown".to_string(), 5),
        Query::ConceptBox("sushi".to_string()),
        Query::ConceptBox("pizza".to_string()),
        Query::Recommend("burger".to_string(), 3),
    ]
}

/// Debug-render a batch of answers: the byte-identity oracle. Serving
/// payloads are value-level (no provenance or trust floats), so two builds
/// that serve the same facts render the same bytes.
fn answer_bytes(woc: WebOfConcepts, queries: &[Query]) -> String {
    let server = ConceptServer::new(woc, ServeConfig::default());
    queries
        .iter()
        .map(|q| format!("{:?}\n", server.execute(q).value))
        .collect()
}

/// One leg of the matrix: build at (`ratio`, `seed`), check the quarantine
/// set is exactly the planted hosts, the audit passes, and answers match
/// the clean baseline byte-for-byte.
fn drive_leg(
    world: &World,
    honest_sites: usize,
    baseline: &str,
    queries: &[Query],
    ratio: f64,
    seed: u64,
) {
    let adv = AdversarialConfig::at_ratio(ratio, seed);
    let truth = spam_corpus(world, &adv);
    let planted: BTreeSet<String> = plan_sites(world, honest_sites, &adv)
        .into_iter()
        .map(|s| s.host)
        .collect();
    assert!(
        !planted.is_empty(),
        "[{ratio}/{seed}] the plan must plant at least one adversarial site"
    );

    let woc = build(&truth, &PipelineConfig::default());

    // The reliability model must distrust exactly the planted sites: every
    // spam host quarantined, no honest site caught in the net.
    let quarantined: BTreeSet<String> = woc
        .trust
        .quarantined
        .iter()
        .map(|(site, _)| site.clone())
        .collect();
    assert_eq!(
        quarantined, planted,
        "[{ratio}/{seed}] quarantine set must equal the planted adversarial hosts"
    );
    assert_eq!(woc.report.sites_distrusted, planted.len());

    // Lineage mirrors the model, so explanations can name the distrusted
    // sites.
    for host in &planted {
        assert!(
            woc.lineage.is_site_quarantined(host),
            "[{ratio}/{seed}] lineage must record quarantined site {host}"
        );
    }

    // The audit — W016 recomputes the fixpoint from the stored claims and
    // cross-checks lineage, documents, and the selection log.
    let report = audit(&woc, &AuditConfig::default());
    assert!(
        report.passed(),
        "[{ratio}/{seed}] audit failed on adversarial build:\n{}",
        report.render()
    );

    // The headline invariant: served answers are byte-identical to the
    // clean-corpus build. The spam never reaches a served fact.
    assert_eq!(
        answer_bytes(woc, queries),
        baseline,
        "[{ratio}/{seed}] adversarial build must serve the clean build's answers"
    );
}

#[test]
fn spam_matrix_serves_clean_answers_at_every_ratio_and_seed() {
    let world = fixed_world();
    let clean = clean_corpus(&world);
    let honest_sites = clean.sites().len();
    let clean_woc = build(&clean, &PipelineConfig::default());
    assert_eq!(
        clean_woc.report.sites_distrusted, 0,
        "the clean corpus must not trip the reliability model"
    );
    let queries = fixed_queries();
    let baseline = answer_bytes(clean_woc, &queries);

    for seed in adv_seeds() {
        for ratio in RATIOS {
            drive_leg(&world, honest_sites, &baseline, &queries, ratio, seed);
        }
    }
}

#[test]
fn honest_corpus_prefix_is_byte_identical_under_attack() {
    // The adversarial renderer must not perturb a single honest byte: the
    // first `clean.len()` pages of an attacked corpus are the clean corpus.
    let world = fixed_world();
    let clean = clean_corpus(&world);
    let spam = spam_corpus(&world, &AdversarialConfig::at_ratio(0.3, 11));
    assert!(spam.len() > clean.len());
    for (c, s) in clean.pages().iter().zip(spam.pages().iter()) {
        assert_eq!(c, s, "honest page {} perturbed", c.url);
    }
}

#[test]
fn trust_digest_is_stable_for_a_fixed_seed() {
    // Two builds of the same attacked corpus agree on every trust score,
    // the quarantine list, and the claim pool — the digest the incremental
    // engine folds into its canonical bytes.
    let world = fixed_world();
    let adv = AdversarialConfig::at_ratio(0.3, 17);
    let truth = spam_corpus(&world, &adv);
    let a = build(&truth, &PipelineConfig::default());
    let b = build(&truth, &PipelineConfig::default());
    assert_eq!(a.trust.digest(), b.trust.digest());
    assert_eq!(a.trust.site_trust, b.trust.site_trust);
    assert_eq!(a.trust.quarantined, b.trust.quarantined);
}
