//! Property tests for the seeded jittered exponential backoff: the total
//! delay is bounded, the per-attempt caps are monotone non-decreasing, the
//! schedule is a pure function of `(policy, seed)`, and it is independent
//! of how many threads compute it.

use proptest::prelude::*;
use woc_chaos::{Backoff, RetryPolicy};
use woc_core::shard_map;

fn policy_strategy() -> impl Strategy<Value = RetryPolicy> {
    (1u32..=8, 1u64..=100_000, 1u64..=5_000_000, 0.0f64..=0.99).prop_map(
        |(max_attempts, base_micros, cap_extra, jitter)| RetryPolicy {
            max_attempts,
            base_micros,
            cap_micros: base_micros.saturating_add(cap_extra),
            jitter,
            ..RetryPolicy::default()
        },
    )
}

/// The full delay schedule a backoff yields before giving up.
fn schedule(policy: &RetryPolicy, seed: u64) -> Vec<u64> {
    let mut b = Backoff::new(policy, seed);
    let mut out = Vec::new();
    while let Some(d) = b.next_delay() {
        out.push(d);
    }
    out
}

proptest! {
    #[test]
    fn total_delay_is_bounded(policy in policy_strategy(), seed in 0u64..=u64::MAX) {
        let delays = schedule(&policy, seed);
        // One delay per retry: max_attempts fetches leave max_attempts - 1
        // gaps between them.
        prop_assert_eq!(delays.len() as u32, policy.max_attempts - 1);
        let total: u64 = delays.iter().sum();
        prop_assert!(
            total <= policy.max_total_delay(),
            "schedule {:?} exceeds bound {}", delays, policy.max_total_delay()
        );
    }

    #[test]
    fn caps_are_monotone_non_decreasing(policy in policy_strategy(), seed in 0u64..=u64::MAX) {
        for attempt in 1..policy.max_attempts {
            prop_assert!(policy.cap_for(attempt) >= policy.cap_for(attempt - 1));
        }
        // Every rolled delay respects its attempt's cap and (for positive
        // jitter) stays within the jitter window below it.
        let delays = schedule(&policy, seed);
        for (i, &d) in delays.iter().enumerate() {
            let cap = policy.cap_for(i as u32);
            prop_assert!(d <= cap, "delay {} above cap {}", d, cap);
            let floor = ((1.0 - policy.jitter) * cap as f64) as u64;
            prop_assert!(d >= floor.min(cap), "delay {} below jitter floor {}", d, floor);
        }
    }

    #[test]
    fn schedule_is_deterministic_for_a_fixed_seed(
        policy in policy_strategy(),
        seed in 0u64..=u64::MAX,
    ) {
        prop_assert_eq!(schedule(&policy, seed), schedule(&policy, seed));
    }

    #[test]
    fn schedule_is_independent_of_thread_count(
        policy in policy_strategy(),
        seeds in prop::collection::vec(0u64..=u64::MAX, 1..32),
    ) {
        let sequential: Vec<Vec<u64>> =
            seeds.iter().map(|&s| schedule(&policy, s)).collect();
        for threads in [2usize, 4, 8] {
            let sharded = shard_map(&seeds, threads, |&s| schedule(&policy, s));
            prop_assert_eq!(&sharded, &sequential, "threads={}", threads);
        }
    }
}
