//! Integration tests for the serving layer: epoch-swap consistency under
//! concurrent load, and cache transparency (cached answers byte-identical to
//! uncached evaluation, across invalidation cycles).

use std::collections::HashMap;
use std::sync::Arc;

use woc_core::{build, PipelineConfig, WebOfConcepts};
use woc_serve::{Answer, ConceptServer, Query, ServeConfig};
use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

fn build_woc(world_seed: u64, corpus_seed: u64) -> WebOfConcepts {
    let world = World::generate(WorldConfig::tiny(world_seed));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(corpus_seed));
    build(&corpus, &PipelineConfig::default())
}

fn mixed_queries() -> Vec<Query> {
    vec![
        Query::Search("gochi cupertino".into(), 5),
        Query::Search("is:restaurant".into(), 8),
        Query::Search("cuisine:italian".into(), 5),
        Query::ConceptBox("gochi cupertino".into()),
        Query::Recommend("gochi cupertino".into(), 3),
        Query::Search("san jose".into(), 5),
    ]
}

/// Render an answer's payload for byte-identity comparison. `Debug` prints
/// floats at full round-trip precision, so two renderings are equal iff the
/// results are bit-identical.
fn payload(a: &Answer) -> String {
    format!("{:?}", a.value)
}

/// Reference answers: a fresh single-epoch server with the cache disabled,
/// evaluated once per query.
fn reference_answers(woc: WebOfConcepts, queries: &[Query]) -> HashMap<Query, String> {
    let server = ConceptServer::new(
        woc,
        ServeConfig {
            cache_enabled: false,
            ..ServeConfig::default()
        },
    );
    queries
        .iter()
        .map(|q| (q.clone(), payload(&server.execute(q))))
        .collect()
}

/// N threads hammer a shared snapshot with mixed queries while the main
/// thread publishes a new epoch mid-flight. Every answer must match the
/// reference evaluation of exactly one epoch — no torn reads, no blends.
#[test]
fn epoch_swap_under_concurrent_load() {
    let woc_v1 = build_woc(41, 14);
    let woc_v2 = build_woc(42, 24);
    let queries = mixed_queries();
    let expected_v1 = reference_answers(woc_v1.clone(), &queries);
    let expected_v2 = reference_answers(woc_v2.clone(), &queries);

    for threads in [1usize, 8] {
        let server = Arc::new(ConceptServer::new(woc_v1.clone(), ServeConfig::default()));
        // Each worker keeps querying until it has answered several rounds
        // against epoch 2, so the swap always lands mid-run regardless of
        // scheduling (bounded to stay finite if publish were broken).
        let tail_rounds = 12usize;
        let max_rounds = 200_000usize;
        let answers: Vec<(Query, u64, String)> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let server = Arc::clone(&server);
                    let queries = &queries;
                    scope.spawn(move |_| {
                        let mut out = Vec::new();
                        let mut after_swap = 0usize;
                        for r in 0..max_rounds {
                            // Stagger start positions so threads disagree on
                            // which query is in flight at the swap.
                            let q = &queries[(t + r) % queries.len()];
                            let a = server.execute(q);
                            if a.epoch >= 2 {
                                after_swap += 1;
                            }
                            out.push((q.clone(), a.epoch, payload(&a)));
                            if after_swap >= tail_rounds {
                                break;
                            }
                        }
                        out
                    })
                })
                .collect();
            // Publish the new epoch while workers are mid-loop.
            let publisher = {
                let server = Arc::clone(&server);
                let woc_v2 = woc_v2.clone();
                scope.spawn(move |_| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    server.publish(woc_v2)
                })
            };
            assert_eq!(publisher.join().unwrap(), 2);
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
        .unwrap();

        assert!(answers.len() >= threads * tail_rounds);
        let mut seen_epochs = std::collections::BTreeSet::new();
        for (q, epoch, got) in &answers {
            seen_epochs.insert(*epoch);
            let want = match epoch {
                1 => &expected_v1[q],
                2 => &expected_v2[q],
                other => panic!("answer from unknown epoch {other}"),
            };
            assert_eq!(
                &got, &want,
                "threads={threads}: answer for {q:?} at epoch {epoch} \
                 differs from that epoch's reference evaluation"
            );
        }
        // The swap happened mid-flight: with the publisher racing the
        // workers, epoch 2 must be observed by the tail of the run.
        assert!(
            seen_epochs.contains(&2),
            "threads={threads}: publish never became visible"
        );
    }
}

/// Cached answers are byte-identical to uncached evaluation — on first miss,
/// on hits, and across a full invalidation cycle (publish of an identical
/// web under a new epoch).
#[test]
fn cache_is_transparent() {
    let woc = build_woc(7, 7);
    let queries = mixed_queries();
    let reference = reference_answers(woc.clone(), &queries);

    let server = ConceptServer::new(woc.clone(), ServeConfig::default());
    for q in &queries {
        let miss = server.execute(q);
        assert!(!miss.cached);
        assert_eq!(payload(&miss), reference[q], "fresh fill differs for {q:?}");
        let hit = server.execute(q);
        assert!(hit.cached, "repeat of {q:?} must hit");
        assert_eq!(payload(&hit), reference[q], "cache hit differs for {q:?}");
    }

    // Invalidation cycle: republish the *same* web as a new epoch. The cache
    // is cleared; fresh fills and fresh hits must still match the reference.
    let epoch = server.publish(woc);
    assert_eq!(epoch, 2);
    assert_eq!(server.cache_len(), 0);
    for q in &queries {
        let refill = server.execute(q);
        assert!(!refill.cached, "cache must be cold after publish");
        assert_eq!(refill.epoch, 2);
        assert_eq!(
            payload(&refill),
            reference[q],
            "post-invalidation fill differs for {q:?}"
        );
        let hit = server.execute(q);
        assert!(hit.cached);
        assert_eq!(payload(&hit), reference[q]);
    }
}

/// Concurrent batches against a fixed snapshot are deterministic: every
/// thread count yields the same answers in the same order.
#[test]
fn batch_deterministic_across_thread_counts() {
    let server = ConceptServer::new(build_woc(11, 12), ServeConfig::default());
    let queries: Vec<Query> = (0..24).map(|i| mixed_queries()[i % 6].clone()).collect();
    let base: Vec<String> = server.run_batch(&queries, 1).iter().map(payload).collect();
    for threads in [2usize, 8] {
        let got: Vec<String> = server
            .run_batch(&queries, threads)
            .iter()
            .map(payload)
            .collect();
        assert_eq!(got, base, "batch at {threads} threads diverged");
    }
}
