//! Differential cache-retention tests: after a delta publish, cached
//! entries for untouched scopes must be served without recomputation and
//! byte-identical to a cold evaluation at the new epoch, while entries the
//! delta touched must be invalidated.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use woc_apps::interpret_query;
use woc_core::{build, PipelineConfig, WebOfConcepts};
use woc_index::{scoped_term, LrecIndex, MergePolicy, RecordChange};
use woc_lrec::{ConceptId, LrecId, Tick};
use woc_serve::{ConceptServer, Endpoint, EpochDelta, SegmentDelta, ServeConfig};
use woc_webgen::{churn_restaurants, generate_corpus, CorpusConfig, World, WorldConfig};

fn build_woc(world_seed: u64, corpus_seed: u64) -> WebOfConcepts {
    let world = World::generate(WorldConfig::tiny(world_seed));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(corpus_seed));
    build(&corpus, &PipelineConfig::default())
}

fn payload(a: &woc_serve::Answer) -> String {
    format!("{:?}", a.value)
}

/// A fresh, cache-bypassing evaluation on the server's *current* snapshot.
fn cold(server: &ConceptServer, query: &str, k: usize) -> String {
    server.set_cache_enabled(false);
    let a = server.search(query, k);
    server.set_cache_enabled(true);
    payload(&a)
}

/// Regression for the conservative whole-cache drop: a delta touching only
/// the document plane (doc tables, no lrec postings) must publish a new
/// epoch but *retain* every cached search entry — the search path reads
/// only the record plane. Scopeless entries (concept box) still drop.
#[test]
fn doc_only_delta_retains_search_entries() {
    let woc = build_woc(901, 91);
    let server = ConceptServer::new(woc.clone(), ServeConfig::default());
    let s1 = server.search("gochi cupertino", 5);
    assert!(!s1.cached);
    let b1 = server.concept_box("gochi cupertino");
    assert!(!b1.cached);
    let snap1 = server.snapshot();

    let delta = EpochDelta {
        touched_concepts: vec![],
        records_changed: false,
        docs_changed: true,
    };
    let epoch = server.publish_delta(woc, &delta);
    assert_eq!(epoch, 2, "a doc-plane delta is a real publish");

    // The record plane is untouched: the segmented index ships forward
    // unrebuilt — same Arc, zero copy.
    let snap2 = server.snapshot();
    assert!(
        Arc::ptr_eq(&snap1.segments, &snap2.segments),
        "doc-only publish must reuse the segmented index"
    );

    // The search entry survives: a hit, at the new epoch, byte-identical
    // both to its original fill and to a cold evaluation now.
    let s2 = server.search("gochi cupertino", 5);
    assert!(s2.cached, "doc-only delta must retain the search entry");
    assert_eq!(s2.epoch, 2);
    assert_eq!(payload(&s2), payload(&s1));
    assert_eq!(payload(&s2), cold(&server, "gochi cupertino", 5));

    // The concept box renders document-side state — its entry must drop.
    let b2 = server.concept_box("gochi cupertino");
    assert!(!b2.cached, "scopeless entries drop on a doc-plane delta");
}

/// `(concept, index tokens)` per live record — the record-plane view a
/// segmented delta is computed over.
fn tokens_map(woc: &WebOfConcepts) -> BTreeMap<LrecId, (ConceptId, Vec<String>)> {
    woc.store
        .live_ids()
        .into_iter()
        .map(|id| {
            let rec = woc.store.latest(id).expect("live id has a latest version");
            (id, (rec.concept(), LrecIndex::record_tokens(rec)))
        })
        .collect()
}

/// Full stored content per live record, rendered for byte comparison — a
/// record can change content (confidence, provenance) without changing its
/// index tokens, and such records must still land in `changed_records`.
fn content_map(woc: &WebOfConcepts) -> BTreeMap<LrecId, String> {
    woc.store
        .live_ids()
        .into_iter()
        .map(|id| (id, format!("{:?}", woc.store.latest(id))))
        .collect()
}

/// The retention scope the server records for `query`: rendered index
/// terms plus the result records of an evaluation on `snap`.
fn query_scope(snap: &woc_serve::Snapshot, query: &str, k: usize) -> (Vec<String>, Vec<LrecId>) {
    let fq = interpret_query(query).normalized();
    let mut terms = fq.terms.clone();
    for (f, t) in &fq.scoped {
        terms.push(scoped_term(f, t));
    }
    let woc = &snap.woc;
    let records = snap
        .segments
        .search(&fq, k, |n| woc.registry.id_of(n))
        .iter()
        .map(|h| h.id)
        .collect();
    (terms, records)
}

/// The differential harness for segmented retention: build v1, churn a few
/// restaurants, build v2, hand-derive the record-plane delta between the
/// two webs, maintain a segmented index across it (checking it against a
/// flat rebuild of v2), and publish with `publish_delta_segmented`. Every
/// warmed query whose scope is disjoint from the delta must then be served
/// from the cache, byte-identical to both its original fill and a cold
/// evaluation at the new epoch; every query the delta touched must be
/// invalidated. The hit-count delta proves survivors were not recomputed.
#[test]
fn segmented_delta_retains_untouched_entries_byte_identically() {
    let mut world = World::generate(WorldConfig::tiny(77));
    let cfg = CorpusConfig::tiny(17);
    let corpus_v1 = generate_corpus(&world, &cfg);
    let v1 = build(&corpus_v1, &PipelineConfig::default());

    let mut seed = 3u64;
    let mut events = churn_restaurants(&mut world, 0.08, Tick(10), seed);
    while events.is_empty() {
        seed += 1;
        events = churn_restaurants(&mut world, 0.08, Tick(10), seed);
        assert!(seed < 1000, "no churn events after many seeds");
    }
    let corpus_v2 = generate_corpus(&world, &cfg);
    let v2 = build(&corpus_v2, &PipelineConfig::default());

    // Hand-derive the record-plane delta between the two builds.
    let (t1, t2) = (tokens_map(&v1), tokens_map(&v2));
    let (c1, c2) = (content_map(&v1), content_map(&v2));
    let mut changes = Vec::new();
    let mut changed_terms: BTreeSet<String> = BTreeSet::new();
    let mut changed_records: BTreeSet<LrecId> = BTreeSet::new();
    let ids: BTreeSet<LrecId> = t1.keys().chain(t2.keys()).copied().collect();
    for id in ids {
        match (t1.get(&id), t2.get(&id)) {
            (Some(a), Some(b)) if a == b => {}
            (Some(a), Some(b)) => {
                changes.push(RecordChange {
                    id,
                    concept: b.0,
                    tokens: Some(b.1.clone()),
                });
                changed_terms.extend(a.1.iter().cloned());
                changed_terms.extend(b.1.iter().cloned());
            }
            (Some(a), None) => {
                changes.push(RecordChange {
                    id,
                    concept: a.0,
                    tokens: None,
                });
                changed_terms.extend(a.1.iter().cloned());
            }
            (None, Some(b)) => {
                changes.push(RecordChange {
                    id,
                    concept: b.0,
                    tokens: Some(b.1.clone()),
                });
                changed_terms.extend(b.1.iter().cloned());
            }
            (None, None) => unreachable!("id came from one of the maps"),
        }
        // Content changes are a superset of token changes: a record whose
        // stored bytes moved at all invalidates answers hydrated from it.
        if c1.get(&id) != c2.get(&id) {
            changed_records.insert(id);
        }
    }
    assert!(!changes.is_empty(), "churn must change at least one record");

    // Maintain a segmented index across the delta; it must be equivalent
    // to a flat rebuild of v2.
    let mut segments = v1.segmented_record_index(MergePolicy::default());
    let outcome = segments.apply_delta(&changes);
    assert_eq!(
        segments.flatten().digest(),
        v2.record_index.digest(),
        "maintained segments must flatten to v2's flat index"
    );

    let server = ConceptServer::new(v1.clone(), ServeConfig::default());
    let snap1 = server.snapshot();

    // Warm the cache with one single-word query per record, and predict
    // from each query's scope whether its entry must survive the delta.
    let pool: Vec<String> = {
        let mut words: BTreeSet<String> = BTreeSet::new();
        for (concept, tokens) in t1.values() {
            let _ = concept;
            if let Some(w) = tokens
                .iter()
                .find(|w| w.chars().all(|c| c.is_ascii_alphanumeric()) && w.len() > 2)
            {
                words.insert(w.clone());
            }
        }
        words.into_iter().take(48).collect()
    };
    let k = 5usize;
    let mut fills: BTreeMap<&str, String> = BTreeMap::new();
    let mut expect_survive: BTreeMap<&str, bool> = BTreeMap::new();
    for q in &pool {
        let a = server.search(q, k);
        assert!(!a.cached, "first evaluation of {q:?} is a miss");
        fills.insert(q, payload(&a));
        let (terms, records) = query_scope(&snap1, q, k);
        let survive = terms.iter().all(|t| !changed_terms.contains(t))
            && records.iter().all(|r| !changed_records.contains(r));
        expect_survive.insert(q, survive);
    }
    assert!(
        expect_survive.values().any(|&s| s),
        "pool must contain queries the delta does not touch"
    );
    assert!(
        expect_survive.values().any(|&s| !s),
        "pool must contain queries the delta touches"
    );

    let hits_before = server
        .metrics()
        .endpoint(Endpoint::Search)
        .summary()
        .cache_hits;
    let delta = SegmentDelta {
        base: EpochDelta {
            touched_concepts: vec![],
            records_changed: true,
            docs_changed: true,
        },
        changed_terms: changed_terms.iter().cloned().collect(),
        changed_records: changed_records.iter().copied().collect(),
        stats_repinned: outcome.repinned,
    };
    let epoch = server.publish_delta_segmented(v2.clone(), &delta, Arc::new(segments));
    assert_eq!(epoch, 2);

    let mut survivors = 0u64;
    for q in &pool {
        let a = server.search(q, k);
        assert_eq!(a.epoch, 2);
        if expect_survive[q.as_str()] {
            assert!(
                a.cached,
                "untouched query {q:?} must be served from the retained cache"
            );
            assert_eq!(
                payload(&a),
                fills[q.as_str()],
                "retained entry for {q:?} must be byte-identical to its fill"
            );
            survivors += 1;
        } else {
            assert!(
                !a.cached,
                "query {q:?} touching the delta must be invalidated"
            );
        }
        // Cached or refilled, the answer must equal a cold evaluation on
        // the new snapshot — the cache is transparent across the delta.
        assert_eq!(
            payload(&a),
            cold(&server, q, k),
            "answer for {q:?} diverges from a cold epoch-2 evaluation"
        );
    }
    let hits_after = server
        .metrics()
        .endpoint(Endpoint::Search)
        .summary()
        .cache_hits;
    assert_eq!(
        hits_after - hits_before,
        survivors,
        "every survivor is a true cache hit — zero recomputation"
    );
}

/// Statistics re-pinning (compaction during the pass) invalidates the
/// whole cache: every score in the corpus may shift.
#[test]
fn repinned_stats_drop_the_whole_cache() {
    let v1 = build_woc(901, 91);
    let server = ConceptServer::new(v1.clone(), ServeConfig::default());
    server.search("gochi cupertino", 5);
    assert!(server.cache_len() > 0);

    let segments = Arc::new(v1.segmented_record_index(MergePolicy::default()));
    let delta = SegmentDelta {
        base: EpochDelta {
            touched_concepts: vec![],
            records_changed: true,
            docs_changed: false,
        },
        changed_terms: vec![],
        changed_records: vec![],
        stats_repinned: true,
    };
    let epoch = server.publish_delta_segmented(v1, &delta, segments);
    assert_eq!(epoch, 2);
    assert_eq!(server.cache_len(), 0, "re-pinned stats drop everything");
    assert!(!server.search("gochi cupertino", 5).cached);
}
