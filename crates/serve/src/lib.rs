//! # woc-serve — the concurrent concept-serving layer
//!
//! The paper's applications (§5) presume "massively scalable" serving
//! infrastructure over the concept store and its inverted indexes (§2.2);
//! this crate is that read tier. A built [`WebOfConcepts`] is frozen into an
//! immutable [`Snapshot`] and published behind an `Arc`; any number of
//! threads query it concurrently through a [`ConceptServer`]:
//!
//! * **Snapshot/epoch model** — readers grab one `Arc<Snapshot>` per request
//!   and evaluate entirely against it, so a request can never observe a
//!   half-updated web (no torn reads, by construction). Maintenance builds a
//!   *new* web (see [`ConceptServer::maintain`]), publishes it under a bumped
//!   epoch, and in-flight readers of the old epoch drain gracefully — the old
//!   snapshot is freed when its last reader drops its `Arc`.
//! * **Segmented search path** — every snapshot carries a
//!   [`SegmentedLrecIndex`]: a frozen base segment with pinned corpus-global
//!   BM25 statistics plus delta segments, scored with block-max pruned
//!   top-k. Because every segment scores through the pinned statistics, a
//!   record's score is a pure function of its frozen content — which is
//!   what makes per-entry cache retention across epochs sound at all.
//! * **Sharded LRU result cache** ([`cache`]) — keyed on the endpoint and
//!   the *normalized* [`FieldQuery`] rendering, so syntactic variants of a
//!   query share one entry. Entries carry the epoch they were filled at and
//!   a retention [`cache::Scope`]; a stale worker finishing after a publish
//!   can never poison the new epoch's cache (its fill generation is
//!   refused), and a segmented delta publish
//!   ([`ConceptServer::publish_delta_segmented`]) retains every entry whose
//!   scope the delta provably did not touch instead of dropping the cache
//!   wholesale.
//! * **Metrics** ([`metrics`]) — per-endpoint request counters, cache
//!   hit/miss counters, and log2-bucketed latency histograms with p50/p95/p99
//!   summaries, cheap enough to stay on under load.
//!
//! Queries are canonicalized *before* evaluation (sorted terms, rendered
//! back to query syntax), so the cached and uncached paths evaluate the
//! byte-identical query — the cache can only ever return exactly what a
//! fresh evaluation would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod metrics;

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use woc_apps::{
    build_concept_box, hydrate_record_hit, interpret_query, trigger_concept_box, ConceptBox,
    ConceptResult, Recommendation,
};
use woc_core::{recrawl, shard_map, WebOfConcepts};
use woc_index::{scoped_term, FieldQuery, MergePolicy, SegmentedLrecIndex};
use woc_lrec::{ConceptId, LrecId, Tick, Violation};
use woc_webgen::WebCorpus;

pub use cache::Scope;
use cache::ShardedCache;
pub use metrics::{Endpoint, EndpointSummary, MetricsRegistry, ERROR_BUDGET};

/// Separator inside cache keys; cannot occur in tokenized query terms.
const KEY_SEP: char = '\u{1f}';

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Total result-cache entries across all shards (0 disables storage).
    pub cache_capacity: usize,
    /// Number of independent cache shards.
    pub cache_shards: usize,
    /// Whether queries consult the cache at all (togglable at runtime via
    /// [`ConceptServer::set_cache_enabled`], e.g. for A/B benchmarking).
    pub cache_enabled: bool,
    /// Exclude records with *hard* schema violations (kind mismatches,
    /// cardinality overruns) from search results — the serving-path guard
    /// against garbage that survived extraction. Undeclared keys are
    /// tolerated: the lrec model is deliberately loose (§2.2).
    pub exclude_nonconforming: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            cache_capacity: 4096,
            cache_shards: 16,
            cache_enabled: true,
            exclude_nonconforming: false,
        }
    }
}

/// What changed between a snapshot and a candidate replacement — the
/// incremental-maintenance engine hands this to [`ConceptServer::publish_delta`]
/// so a no-op maintenance pass never invalidates a warm cache.
///
/// Coarse, plane-level flags: `records_changed` covers the record store and
/// the record index, `docs_changed` covers document content and the doc
/// index. [`ConceptServer::publish_delta`] uses the distinction — a
/// doc-plane-only delta retains every cached *search* entry, because the
/// search path reads only the record plane. Finer, term/record-scoped
/// retention needs the segmented form ([`SegmentDelta`] via
/// [`ConceptServer::publish_delta_segmented`]); with only this coarse delta
/// a record-plane change still drops the whole cache, since BM25 statistics
/// are corpus-global unless a segmented index has pinned them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochDelta {
    /// Concepts with at least one created, updated, merged or tombstoned
    /// record (sorted, deduplicated).
    pub touched_concepts: Vec<ConceptId>,
    /// Any record content, merge state, or record-index posting changed.
    pub records_changed: bool,
    /// Any document content or doc-index posting changed.
    pub docs_changed: bool,
}

impl EpochDelta {
    /// True when nothing changed — publishing such a delta is a no-op.
    pub fn is_empty(&self) -> bool {
        self.touched_concepts.is_empty() && !self.records_changed && !self.docs_changed
    }

    /// True when the delta carries no record or document changes, even if
    /// `touched_concepts` is populated. Tombstone scrubbing can leave a
    /// delta in exactly this state: concepts were *visited* during the pass
    /// but every candidate change cancelled out, so the published bytes are
    /// unchanged. Publishing such a delta must be a no-op — dropping a warm
    /// cache for it would be pure waste.
    pub fn is_effectively_empty(&self) -> bool {
        !self.records_changed && !self.docs_changed
    }
}

/// The fine-grained change scope a segmented maintenance pass publishes
/// with ([`ConceptServer::publish_delta_segmented`]): the coarse plane
/// flags plus exactly what the record-plane delta touched, in the same
/// vocabulary cached entries record in their [`Scope`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentDelta {
    /// The coarse plane-level delta (no-op detection, touched concepts).
    pub base: EpochDelta,
    /// Every index term whose posting list the delta touched: the union of
    /// the old and new token sequences of every changed record (sorted,
    /// deduplicated). A cached search answer whose query terms are disjoint
    /// from this set keeps its result set and — under pinned statistics —
    /// its exact scores.
    pub changed_terms: Vec<String>,
    /// Every record whose stored content the pass may have changed
    /// (created, updated, merged or tombstoned), canonical ids, sorted. A
    /// cached answer hydrated only from records outside this set renders
    /// byte-identically after the publish.
    pub changed_records: Vec<LrecId>,
    /// True when the segmented index compacted during the pass and
    /// re-pinned its corpus-global statistics: every score in the corpus
    /// may shift, so the whole cache must drop.
    pub stats_repinned: bool,
}

/// Why a maintenance or publish pass failed without changing the served
/// epoch. The server stays in degraded mode — answering every query from
/// the last good snapshot — until a later pass succeeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintainError {
    /// The rebuild closure panicked; the payload message is captured.
    RebuildPanicked(String),
}

impl fmt::Display for MaintainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintainError::RebuildPanicked(msg) => write!(f, "rebuild panicked: {msg}"),
        }
    }
}

impl std::error::Error for MaintainError {}

/// Render a `catch_unwind` payload: panics carry `&str` or `String`
/// almost always; anything else is opaque.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Crawl-layer telemetry pushed into the server's health surface by the
/// maintenance driver (see `woc-chaos`), since the server itself never
/// crawls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrawlHealth {
    /// Sites whose circuit breaker was not closed when the crawl ended.
    pub breakers_open: usize,
    /// Total breaker trips across all sites.
    pub breaker_trips: u64,
    /// Total fetch retries across all pages.
    pub retries: u64,
}

/// One endpoint's health row: traffic, failures, and remaining error
/// budget (fraction of [`ERROR_BUDGET`] still unspent, in `[0, 1]`).
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointHealth {
    /// Stable endpoint name.
    pub endpoint: &'static str,
    /// Requests served.
    pub requests: u64,
    /// Requests whose evaluation failed (answered with a degraded empty
    /// response).
    pub errors: u64,
    /// Remaining error budget in `[0, 1]`.
    pub error_budget_remaining: f64,
}

/// The health endpoint's payload: epoch freshness, degraded-mode state,
/// quarantine accounting of the snapshot being served, crawl telemetry,
/// and per-endpoint error budgets.
#[derive(Debug, Clone)]
pub struct Health {
    /// The epoch currently being served.
    pub epoch: u64,
    /// Time since the current epoch was published (or since the server
    /// started, for epoch 1).
    pub epoch_age: Duration,
    /// True when the server is serving stale or incomplete data: a
    /// maintenance pass has failed without a subsequent success, or the
    /// served snapshot itself reports quarantined/failed pages.
    pub degraded: bool,
    /// Maintenance/publish passes that have failed since startup.
    pub failed_maintains: u64,
    /// Failed passes since the last successful publish.
    pub consecutive_failures: u64,
    /// The most recent maintenance error, if any.
    pub last_error: Option<String>,
    /// Pages quarantined (poisoned content) in the served snapshot's build.
    pub pages_quarantined: usize,
    /// Pages never delivered in the served snapshot's build.
    pub pages_failed: usize,
    /// Sites with incomplete coverage in the served snapshot.
    pub degraded_sites: usize,
    /// Crawl telemetry, when the maintenance driver pushed it.
    pub crawl: Option<CrawlHealth>,
    /// Per-endpoint traffic and error budgets, in display order.
    pub endpoints: Vec<EndpointHealth>,
}

/// What a [`ConceptServer::maintain`] pass did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaintainReport {
    /// Pages in the new crawl.
    pub pages_scanned: usize,
    /// Pages whose content fingerprint changed (or that are new).
    pub pages_dirty: usize,
    /// Existing records that received updated values.
    pub records_updated: usize,
    /// Records newly created.
    pub records_created: usize,
    /// Records tombstoned because every source page vanished.
    pub records_retracted: usize,
    /// Index postings patched in place. The recrawl path rebuilds its record
    /// index rather than patching, so this is 0 here; the `woc-incr` engine
    /// reports real patch counts.
    pub postings_patched: usize,
    /// The newly published epoch, or `None` when the pass short-circuited
    /// (nothing changed, nothing published, cache left warm).
    pub epoch: Option<u64>,
}

/// An immutable, read-only view of one published web of concepts.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotonically increasing publish generation (first publish = 1).
    pub epoch: u64,
    /// The web this snapshot serves.
    pub woc: WebOfConcepts,
    /// The segmented record index the search endpoint evaluates against.
    /// Shared across epochs wherever possible: a delta publish ships the
    /// same base-segment `Arc` plus small new delta segments, and a
    /// doc-plane-only publish reships the whole index untouched.
    pub segments: Arc<SegmentedLrecIndex>,
}

impl Snapshot {
    /// Freeze a built web under an explicit epoch — the constructor
    /// replication layers (e.g. `woc-cluster` shard replicas) use to mint
    /// epoch-consistent snapshots outside a [`ConceptServer`]. Builds a
    /// fresh segmented index whose base is pinned at this web's statistics
    /// (so segmented answers are byte-identical to flat ones).
    pub fn new(epoch: u64, woc: WebOfConcepts) -> Self {
        let segments = Arc::new(woc.segmented_record_index(MergePolicy::default()));
        Self {
            epoch,
            woc,
            segments,
        }
    }

    /// Freeze a web together with an already-maintained segmented index.
    /// The caller certifies the invariant the search path relies on: the
    /// segmented index's live entries are exactly the web's live records
    /// (`segments.flatten()` digest-equal to `woc.record_index`) — the
    /// W014 audit checks it.
    pub fn with_segments(
        epoch: u64,
        woc: WebOfConcepts,
        segments: Arc<SegmentedLrecIndex>,
    ) -> Self {
        Self {
            epoch,
            woc,
            segments,
        }
    }
}

/// A subscriber invoked after every successful publish with the newly
/// installed snapshot. This is the replication seam: a cluster layer
/// subscribes here to fan each published epoch out to shard replicas without
/// polling. Hooks run on the publishing thread, after the snapshot swap and
/// cache invalidation, so a subscriber always observes the epoch that new
/// requests are already being served from.
pub type PublishHook = Box<dyn Fn(&Arc<Snapshot>) + Send + Sync>;

/// Registered publish subscribers (interior-mutable so `on_publish` works
/// through a shared server handle).
#[derive(Default)]
struct PublishHooks(RwLock<Vec<PublishHook>>);

impl fmt::Debug for PublishHooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublishHooks({} registered)", self.0.read().len())
    }
}

/// One serving request, for batch execution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// Concept search: query string and result budget.
    Search(String, usize),
    /// Augmented-search concept box for the query.
    ConceptBox(String),
    /// Recommendations (alternatives) anchored on the query's best match.
    Recommend(String, usize),
}

/// A serving response payload.
#[derive(Debug, Clone)]
pub enum Response {
    /// Concept-search hits.
    Search(Vec<ConceptResult>),
    /// The concept box, when the query confidently matched a record.
    ConceptBox(Option<ConceptBox>),
    /// Recommendations for the query's matched record.
    Recommend(Vec<Recommendation>),
}

/// A response plus its serving metadata.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Shared response payload (uncopied on cache hits).
    pub value: Arc<Response>,
    /// The snapshot epoch that produced this answer. Every answer comes from
    /// exactly one epoch: the request holds one `Arc<Snapshot>` throughout.
    pub epoch: u64,
    /// True if served from the result cache.
    pub cached: bool,
    /// End-to-end service time in microseconds.
    pub micros: u64,
}

/// The thread-safe serving front end over a published [`Snapshot`].
#[derive(Debug)]
pub struct ConceptServer {
    snapshot: RwLock<Arc<Snapshot>>,
    cache: ShardedCache<Response>,
    cache_enabled: AtomicBool,
    metrics: MetricsRegistry,
    config: ServeConfig,
    published_at: RwLock<Instant>,
    failed_maintains: AtomicU64,
    consecutive_failures: AtomicU64,
    last_error: RwLock<Option<String>>,
    crawl_health: RwLock<Option<CrawlHealth>>,
    hooks: PublishHooks,
}

impl ConceptServer {
    /// Publish `woc` as epoch 1 and start serving.
    pub fn new(woc: WebOfConcepts, config: ServeConfig) -> Self {
        Self {
            snapshot: RwLock::new(Arc::new(Snapshot::new(1, woc))),
            cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
            cache_enabled: AtomicBool::new(config.cache_enabled),
            metrics: MetricsRegistry::new(),
            config,
            published_at: RwLock::new(Instant::now()),
            failed_maintains: AtomicU64::new(0),
            consecutive_failures: AtomicU64::new(0),
            last_error: RwLock::new(None),
            crawl_health: RwLock::new(None),
            hooks: PublishHooks::default(),
        }
    }

    /// Subscribe to publishes: `hook` runs after every snapshot swap with
    /// the newly installed snapshot. No-op publishes (see
    /// [`ConceptServer::publish_delta`]) do not fire hooks — subscribers
    /// only ever see genuinely new epochs.
    pub fn on_publish(&self, hook: PublishHook) {
        self.hooks.0.write().push(hook);
    }

    /// The currently published snapshot. Holding the returned `Arc` pins
    /// that epoch's web for as long as the caller needs it, independent of
    /// later publishes.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read())
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot.read().epoch
    }

    /// Swap in `woc` as the next epoch's snapshot, choosing its segmented
    /// index: an explicit one (segmented delta publish), the previous
    /// epoch's (doc-plane-only publish — the record index is untouched), or
    /// a fresh build. The fresh build itself reuses the previous segments
    /// when the record index is digest-identical and the previous index is
    /// at a merge point (no deltas), where its pinned statistics provably
    /// equal the flat index's own. Returns the epoch and the installed
    /// snapshot; the caller settles the cache and fires hooks.
    /// `settle` runs with the new epoch *before* the snapshot swap, while
    /// the write lock is held: it must advance the cache generation
    /// (`clear_to`/`retain`). Ordering matters — once the generation has
    /// moved, stale workers' fills are refused; and because no reader can
    /// pin the new snapshot until the swap, no reader can ever observe the
    /// new epoch with an unsettled cache.
    fn install(
        &self,
        woc: WebOfConcepts,
        segments: Option<Arc<SegmentedLrecIndex>>,
        reuse_segments: bool,
        settle: impl FnOnce(u64),
    ) -> (u64, Arc<Snapshot>) {
        let mut guard = self.snapshot.write();
        let epoch = guard.epoch + 1;
        // woc-lint: allow(lock-across-io) — settle-before-swap by design (the
        // publish/read race fix): the cache generation must advance while the
        // snapshot write lock excludes readers. Total lock order is
        // snapshot -> cache shard; settle closures only touch cache shards.
        settle(epoch);
        let next = match segments {
            Some(segments) => Snapshot::with_segments(epoch, woc, segments),
            None if reuse_segments => {
                Snapshot::with_segments(epoch, woc, Arc::clone(&guard.segments))
            }
            None if guard.segments.delta_count() == 0
                && guard.woc.record_index.digest() == woc.record_index.digest() =>
            {
                Snapshot::with_segments(epoch, woc, Arc::clone(&guard.segments))
            }
            None => Snapshot::new(epoch, woc),
        };
        *guard = Arc::new(next);
        let installed = Arc::clone(&guard);
        drop(guard);
        (epoch, installed)
    }

    /// Post-publish bookkeeping shared by every publish path: reset the
    /// failure streak, restamp the epoch age, and fire the publish hooks.
    fn after_publish(&self, installed: &Arc<Snapshot>) {
        *self.published_at.write() = Instant::now();
        self.consecutive_failures.store(0, Ordering::Relaxed);
        for hook in self.hooks.0.read().iter() {
            hook(installed);
        }
    }

    /// Publish a freshly built web as the next epoch and invalidate the
    /// result cache. In-flight requests keep serving from the epoch they
    /// started on; new requests see the new snapshot immediately. Returns
    /// the new epoch.
    pub fn publish(&self, woc: WebOfConcepts) -> u64 {
        let (epoch, installed) = self.install(woc, None, false, |e| self.cache.clear_to(e));
        self.after_publish(&installed);
        epoch
    }

    /// Publish `woc` as a new epoch *only if* `delta` carries actual record
    /// or document changes. An effectively-empty delta — including one whose
    /// `touched_concepts` survived tombstone scrubbing while every change
    /// cancelled out — returns the current epoch untouched: no snapshot
    /// swap, no epoch bump, and — crucially — no cache invalidation, so a
    /// no-op maintenance cycle keeps the result cache warm.
    ///
    /// A delta touching **only the document plane** (`docs_changed` without
    /// `records_changed`) publishes the new epoch but *retains* every
    /// cached search entry: the search path reads only the record index and
    /// the record store, both untouched, so the cached bytes still equal a
    /// fresh evaluation. (This used to drop the whole cache — the
    /// conservative plane-blind behavior.) Scopeless entries (concept box,
    /// recommendations) read document-side state and are dropped. A delta
    /// with record changes still drops the whole cache on this coarse path;
    /// term/record-scoped retention needs
    /// [`ConceptServer::publish_delta_segmented`].
    pub fn publish_delta(&self, woc: WebOfConcepts, delta: &EpochDelta) -> u64 {
        if delta.is_effectively_empty() {
            return self.epoch();
        }
        if !delta.records_changed {
            let (epoch, installed) = self.install(woc, None, true, |e| {
                self.cache.retain(e, |scope| scope.is_some());
            });
            self.after_publish(&installed);
            return epoch;
        }
        self.publish(woc)
    }

    /// Publish a maintained web together with its incrementally-maintained
    /// segmented index, retaining every cached entry the delta provably
    /// does not touch.
    ///
    /// Retention soundness, entry by entry: a cached search answer is a
    /// pure function of (a) the posting lists of its query terms, (b) the
    /// pinned scoring statistics, and (c) the stored content of its result
    /// records. The delta certifies (a) unchanged when the entry's terms
    /// are disjoint from [`SegmentDelta::changed_terms`], (b) unchanged
    /// unless [`SegmentDelta::stats_repinned`], and (c) unchanged when the
    /// entry's records are disjoint from [`SegmentDelta::changed_records`].
    /// Entries without a scope also read document-plane state, so they only
    /// survive a no-op. An effectively-empty delta is a no-op exactly like
    /// [`ConceptServer::publish_delta`].
    pub fn publish_delta_segmented(
        &self,
        woc: WebOfConcepts,
        delta: &SegmentDelta,
        segments: Arc<SegmentedLrecIndex>,
    ) -> u64 {
        if delta.base.is_effectively_empty() {
            return self.epoch();
        }
        let terms: std::collections::HashSet<&str> =
            delta.changed_terms.iter().map(String::as_str).collect();
        let records: std::collections::HashSet<LrecId> =
            delta.changed_records.iter().copied().collect();
        let (epoch, installed) = self.install(woc, Some(segments), false, |e| {
            if delta.stats_repinned {
                self.cache.clear_to(e);
            } else {
                self.cache.retain(e, |scope| {
                    scope.is_some_and(|s| {
                        !s.terms.iter().any(|t| terms.contains(t.as_str()))
                            && !s.records.iter().any(|r| records.contains(r))
                    })
                });
            }
        });
        self.after_publish(&installed);
        epoch
    }

    /// Maintenance cycle: fingerprint-diff the two crawls, and only when
    /// some page actually changed (or vanished) clone the published web,
    /// apply an incremental recrawl ([`woc_core::maintain`]) against it, and
    /// publish the result as a new epoch. Readers never block on the rebuild
    /// — they keep serving the old snapshot until the swap. When nothing
    /// changed the pass short-circuits: no clone, no publish, cache intact,
    /// and the returned report carries `epoch: None`.
    pub fn maintain(&self, old: &WebCorpus, new: &WebCorpus, tick: Tick) -> MaintainReport {
        match self.try_maintain(old, new, tick) {
            Ok(report) => report,
            // Degraded mode: the pass failed, the last good epoch keeps
            // serving. The failure is visible through [`Self::health`];
            // callers that need the typed error use `try_maintain`.
            Err(_) => MaintainReport {
                pages_scanned: new.len(),
                ..MaintainReport::default()
            },
        }
    }

    /// [`Self::maintain`] with transactional error reporting: a rebuild
    /// panic aborts the pass, leaves the published snapshot untouched, and
    /// surfaces as [`MaintainError::RebuildPanicked`]. No lock is held
    /// across the rebuild — the pass clones from a pinned `Arc` snapshot,
    /// so readers never block and a failed pass cannot poison the epoch.
    pub fn try_maintain(
        &self,
        old: &WebCorpus,
        new: &WebCorpus,
        tick: Tick,
    ) -> Result<MaintainReport, MaintainError> {
        let pages_dirty = new
            .pages()
            .iter()
            .filter(|page| match old.get(&page.url) {
                Some(old_page) => old_page.fingerprint() != page.fingerprint(),
                None => true,
            })
            .count();
        let any_removed = old.pages().iter().any(|p| new.get(&p.url).is_none());
        let mut report = MaintainReport {
            pages_scanned: new.len(),
            pages_dirty,
            ..MaintainReport::default()
        };
        if pages_dirty == 0 && !any_removed {
            self.consecutive_failures.store(0, Ordering::Relaxed);
            return Ok(report);
        }
        // Pin the snapshot (the guard inside `snapshot()` is dropped
        // before it returns) and rebuild under unwind protection.
        // `AssertUnwindSafe` is justified: the closure only reads the
        // pinned snapshot and mutates its own local clone, which is
        // discarded on panic.
        let snap = self.snapshot();
        let rebuilt = catch_unwind(AssertUnwindSafe(|| {
            let mut woc = snap.woc.clone();
            let m = recrawl(&mut woc, old, new, tick);
            (woc, m)
        }))
        .map_err(|payload| {
            let msg = panic_message(payload);
            self.record_maintain_failure(&msg);
            MaintainError::RebuildPanicked(msg)
        })?;
        let (woc, m) = rebuilt;
        report.records_updated = m.records_updated;
        report.records_created = m.records_created;
        report.records_retracted = m.records_retracted;
        report.epoch = Some(self.publish(woc));
        Ok(report)
    }

    /// Rebuild the next epoch with an arbitrary closure over the pinned
    /// current snapshot and publish the result. A panicking rebuild aborts
    /// transactionally: the error is recorded, the served epoch and its
    /// answers are untouched. This is the seam chaos tests use to inject
    /// publish-path failures.
    pub fn try_publish_with(
        &self,
        rebuild: impl FnOnce(&WebOfConcepts) -> WebOfConcepts,
    ) -> Result<u64, MaintainError> {
        let snap = self.snapshot();
        // AssertUnwindSafe: the closure receives a shared reference into
        // an immutable snapshot; any state it was going to produce dies
        // with the unwind.
        let woc = catch_unwind(AssertUnwindSafe(|| rebuild(&snap.woc))).map_err(|payload| {
            let msg = panic_message(payload);
            self.record_maintain_failure(&msg);
            MaintainError::RebuildPanicked(msg)
        })?;
        Ok(self.publish(woc))
    }

    fn record_maintain_failure(&self, msg: &str) {
        self.failed_maintains.fetch_add(1, Ordering::Relaxed);
        self.consecutive_failures.fetch_add(1, Ordering::Relaxed);
        *self.last_error.write() = Some(msg.to_string());
    }

    /// Push crawl-layer telemetry (breaker states, retries) into the
    /// health surface. The maintenance driver calls this after each crawl.
    pub fn set_crawl_health(&self, crawl: CrawlHealth) {
        *self.crawl_health.write() = Some(crawl);
    }

    /// The health endpoint: epoch age, degraded-mode state, quarantine
    /// accounting of the snapshot being served, crawl telemetry, and
    /// per-endpoint error budgets.
    pub fn health(&self) -> Health {
        let snap = self.snapshot();
        let report = &snap.woc.report;
        let consecutive_failures = self.consecutive_failures.load(Ordering::Relaxed);
        let endpoints = Endpoint::ALL
            .iter()
            .map(|&e| {
                let s = self.metrics.endpoint(e).summary();
                EndpointHealth {
                    endpoint: e.name(),
                    requests: s.requests,
                    errors: s.errors,
                    error_budget_remaining: s.error_budget_remaining(),
                }
            })
            .collect();
        Health {
            epoch: snap.epoch,
            epoch_age: self.published_at.read().elapsed(),
            degraded: consecutive_failures > 0
                || report.pages_quarantined > 0
                || report.pages_failed > 0,
            failed_maintains: self.failed_maintains.load(Ordering::Relaxed),
            consecutive_failures,
            last_error: self.last_error.read().clone(),
            pages_quarantined: report.pages_quarantined,
            pages_failed: report.pages_failed,
            degraded_sites: report.degraded_sites().len(),
            crawl: self.crawl_health.read().clone(),
            endpoints,
        }
    }

    /// Runtime cache switch (the config default applies at construction).
    pub fn set_cache_enabled(&self, on: bool) {
        self.cache_enabled.store(on, Ordering::Relaxed);
    }

    /// The metrics registry (counters, hit rates, latency histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Entries currently in the result cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Concept search (§5.2) with geo/cuisine query interpretation.
    /// Evaluates on the snapshot's segmented index — byte-identical to the
    /// flat index at every merge point, and between merge points a pure
    /// function of frozen segment content plus pinned statistics, which is
    /// what lets the answer's cache entry survive later delta publishes.
    pub fn search(&self, query: &str, k: usize) -> Answer {
        let fq = interpret_query(query).normalized();
        let key = format!("{k}{KEY_SEP}{fq}");
        let exclude = self.config.exclude_nonconforming;
        self.serve(Endpoint::Search, key, move |snap| {
            let woc = &snap.woc;
            let raw = snap.segments.search(&fq, k, |n| woc.registry.id_of(n));
            let mut hits: Vec<ConceptResult> = raw
                .iter()
                .filter_map(|h| hydrate_record_hit(woc, h))
                .collect();
            if exclude {
                hits.retain(|h| conforms(woc, h.id));
            }
            let scope = Scope {
                terms: scope_terms(&fq),
                records: raw.iter().map(|h| h.id).collect(),
            };
            (Response::Search(hits), Some(scope))
        })
    }

    /// Augmented-search concept box (§5.1): `Some` when the query
    /// confidently matches one record. Scopeless: the box renders
    /// document-side state (mention links, titles), so its cache entry only
    /// survives a no-op publish.
    pub fn concept_box(&self, query: &str) -> Answer {
        let canon = FieldQuery::parse(query).normalized().to_string();
        self.serve(Endpoint::ConceptBox, canon.clone(), move |snap| {
            let woc = &snap.woc;
            (
                Response::ConceptBox(
                    trigger_concept_box(woc, &canon)
                        .and_then(|(id, conf)| build_concept_box(woc, id, conf)),
                ),
                None,
            )
        })
    }

    /// Recommendations (§5.4): alternatives anchored on the query's best
    /// concept-box match, empty when nothing triggers. Scopeless, like the
    /// concept box.
    pub fn recommend(&self, query: &str, k: usize) -> Answer {
        let canon = FieldQuery::parse(query).normalized().to_string();
        let key = format!("{k}{KEY_SEP}{canon}");
        self.serve(Endpoint::Recommend, key, move |snap| {
            let woc = &snap.woc;
            (
                Response::Recommend(
                    trigger_concept_box(woc, &canon)
                        .map(|(id, _)| woc_apps::alternatives(woc, id, k))
                        .unwrap_or_default(),
                ),
                None,
            )
        })
    }

    /// Execute one [`Query`].
    pub fn execute(&self, q: &Query) -> Answer {
        match q {
            Query::Search(s, k) => self.search(s, *k),
            Query::ConceptBox(s) => self.concept_box(s),
            Query::Recommend(s, k) => self.recommend(s, *k),
        }
    }

    /// Fan a batch of queries across a worker pool of up to `threads`
    /// threads (0 = all available cores). Answers come back in input order;
    /// each query still runs against whichever snapshot is current when its
    /// worker picks it up.
    pub fn run_batch(&self, queries: &[Query], threads: usize) -> Vec<Answer> {
        let threads = woc_core::resolve_threads(threads);
        shard_map(queries, threads, |q| self.execute(q))
    }

    /// The shared serve skeleton: snapshot pin → cache probe → evaluate →
    /// cache fill → metrics. `key` must determine the evaluation entirely
    /// (it is combined with the endpoint name; epoch visibility is enforced
    /// by the cache's generation gates, not the key, so entries can survive
    /// epoch bumps under selective retention). `eval` returns the response
    /// plus its retention scope (`None` = drop on any effective publish).
    fn serve(
        &self,
        endpoint: Endpoint,
        key: String,
        eval: impl FnOnce(&Snapshot) -> (Response, Option<Scope>),
    ) -> Answer {
        let start = Instant::now();
        let snap = self.snapshot();
        let enabled = self.cache_enabled.load(Ordering::Relaxed);
        let full_key = format!("{}{KEY_SEP}{key}", endpoint.name());
        if enabled {
            if let Some(value) = self.cache.get(&full_key, snap.epoch) {
                let micros = start.elapsed().as_micros() as u64;
                self.metrics.endpoint(endpoint).record(micros, Some(true));
                return Answer {
                    value,
                    epoch: snap.epoch,
                    cached: true,
                    micros,
                };
            }
        }
        // Evaluation runs under unwind protection: a panicking query is
        // answered with the endpoint's empty response and counted against
        // its error budget instead of tearing down the worker.
        // `AssertUnwindSafe` is justified: `eval` is a pure read over the
        // immutable pinned snapshot.
        let (value, scope, failed) = match catch_unwind(AssertUnwindSafe(|| eval(&snap))) {
            Ok((v, scope)) => (Arc::new(v), scope, false),
            Err(_) => (Arc::new(empty_response(endpoint)), None, true),
        };
        if failed {
            self.metrics.endpoint(endpoint).record_error();
        } else if enabled {
            // Never cache a degraded answer: the next request re-evaluates.
            // The fill carries the pinned epoch; the cache refuses it if a
            // publish has moved the generation on (stale-worker guard).
            self.cache
                .insert(full_key, Arc::clone(&value), snap.epoch, scope);
        }
        let micros = start.elapsed().as_micros() as u64;
        self.metrics
            .endpoint(endpoint)
            .record(micros, (enabled && !failed).then_some(false));
        Answer {
            value,
            epoch: snap.epoch,
            cached: false,
            micros,
        }
    }
}

/// The rendered index terms a search evaluation reads: free terms plus
/// scoped constraints rendered exactly as the index stores them — the
/// vocabulary [`SegmentDelta::changed_terms`] speaks, so retention
/// intersection is exact.
fn scope_terms(fq: &FieldQuery) -> Vec<String> {
    let mut terms = fq.terms.clone();
    for (f, t) in &fq.scoped {
        terms.push(scoped_term(f, t));
    }
    terms
}

/// The degraded (empty) response an endpoint answers with when its
/// evaluation panics.
fn empty_response(endpoint: Endpoint) -> Response {
    match endpoint {
        Endpoint::Search => Response::Search(Vec::new()),
        Endpoint::ConceptBox => Response::ConceptBox(None),
        Endpoint::Recommend => Response::Recommend(Vec::new()),
    }
}

/// True unless the record carries a *hard* schema violation (kind mismatch
/// or cardinality overrun). Records of concepts without a schema conform
/// trivially, as do undeclared keys — the loose-schema stance of §2.2.
pub fn conforms(woc: &WebOfConcepts, id: woc_lrec::LrecId) -> bool {
    let Some(rec) = woc.store.latest(id) else {
        return false;
    };
    let Some(schema) = woc.registry.schema(rec.concept()) else {
        return true;
    };
    !schema.check(rec).iter().any(|v| {
        matches!(
            v,
            Violation::KindMismatch { .. } | Violation::CardinalityExceeded { .. }
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_core::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    fn tiny_woc(world_seed: u64, corpus_seed: u64) -> WebOfConcepts {
        let world = World::generate(WorldConfig::tiny(world_seed));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(corpus_seed));
        build(&corpus, &PipelineConfig::default())
    }

    #[test]
    fn search_hits_and_caches() {
        let server = ConceptServer::new(tiny_woc(901, 91), ServeConfig::default());
        let a = server.search("gochi cupertino", 5);
        assert_eq!(a.epoch, 1);
        assert!(!a.cached);
        let Response::Search(hits) = a.value.as_ref() else {
            panic!("wrong variant");
        };
        assert!(!hits.is_empty());
        let b = server.search("gochi cupertino", 5);
        assert!(b.cached, "repeat query served from cache");
        assert!(Arc::ptr_eq(&a.value, &b.value), "hit shares the payload");
        let s = server.metrics().endpoint(Endpoint::Search).summary();
        assert_eq!((s.requests, s.cache_hits, s.cache_misses), (2, 1, 1));
    }

    #[test]
    fn normalized_variants_share_a_cache_entry() {
        let server = ConceptServer::new(tiny_woc(901, 91), ServeConfig::default());
        let a = server.search("cupertino gochi", 5);
        let b = server.search("gochi   cupertino", 5);
        assert!(!a.cached && b.cached, "term order normalizes away");
        assert_eq!(format!("{:?}", a.value), format!("{:?}", b.value));
    }

    #[test]
    fn publish_bumps_epoch_and_invalidates() {
        let server = ConceptServer::new(tiny_woc(901, 91), ServeConfig::default());
        server.search("gochi cupertino", 5);
        assert!(server.cache_len() > 0);
        let epoch = server.publish(tiny_woc(902, 92));
        assert_eq!(epoch, 2);
        assert_eq!(server.epoch(), 2);
        assert_eq!(server.cache_len(), 0, "publish clears the cache");
        let a = server.search("gochi cupertino", 5);
        assert_eq!(a.epoch, 2);
        assert!(!a.cached);
    }

    #[test]
    fn old_snapshot_survives_publish() {
        let server = ConceptServer::new(tiny_woc(901, 91), ServeConfig::default());
        let pinned = server.snapshot();
        server.publish(tiny_woc(902, 92));
        assert_eq!(pinned.epoch, 1, "pinned epoch unchanged");
        assert!(pinned.woc.store.live_count() > 0, "old web still readable");
        assert_eq!(server.snapshot().epoch, 2);
    }

    #[test]
    fn cache_disabled_never_hits() {
        let server = ConceptServer::new(
            tiny_woc(901, 91),
            ServeConfig {
                cache_enabled: false,
                ..ServeConfig::default()
            },
        );
        server.search("gochi", 5);
        let b = server.search("gochi", 5);
        assert!(!b.cached);
        assert_eq!(server.cache_len(), 0);
        let s = server.metrics().endpoint(Endpoint::Search).summary();
        assert_eq!(s.cache_hits + s.cache_misses, 0, "bypass counts nothing");
    }

    #[test]
    fn batch_executes_all_queries_in_order() {
        let server = ConceptServer::new(tiny_woc(901, 91), ServeConfig::default());
        let queries = vec![
            Query::Search("gochi cupertino".into(), 5),
            Query::ConceptBox("gochi cupertino".into()),
            Query::Recommend("gochi cupertino".into(), 3),
            Query::Search("is:restaurant".into(), 10),
        ];
        for threads in [1, 4] {
            let answers = server.run_batch(&queries, threads);
            assert_eq!(answers.len(), queries.len());
            assert!(matches!(answers[0].value.as_ref(), Response::Search(_)));
            assert!(matches!(answers[1].value.as_ref(), Response::ConceptBox(_)));
            assert!(matches!(answers[2].value.as_ref(), Response::Recommend(_)));
        }
    }

    #[test]
    fn maintain_publishes_new_epoch() {
        let mut world = World::generate(WorldConfig::tiny(903));
        let cfg = CorpusConfig::tiny(93);
        let corpus_v1 = generate_corpus(&world, &cfg);
        let woc = build(&corpus_v1, &PipelineConfig::default());
        let server = ConceptServer::new(woc, ServeConfig::default());
        server.search("gochi", 5);

        let mut events = woc_webgen::churn_restaurants(&mut world, 0.5, Tick(10), 7);
        let mut seed = 8;
        while events.is_empty() {
            events = woc_webgen::churn_restaurants(&mut world, 0.5, Tick(10), seed);
            seed += 1;
            assert!(seed < 1000, "no churn events after many seeds");
        }
        let corpus_v2 = generate_corpus(&world, &cfg);
        let report = server.maintain(&corpus_v1, &corpus_v2, Tick(60));
        assert_eq!(report.epoch, Some(2));
        assert!(report.pages_scanned > 0);
        assert!(report.pages_dirty > 0);
        assert_eq!(server.cache_len(), 0);
        assert_eq!(server.search("gochi", 5).epoch, 2);
    }

    #[test]
    fn maintain_short_circuits_on_identical_corpus() {
        let world = World::generate(WorldConfig::tiny(903));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(93));
        let woc = build(&corpus, &PipelineConfig::default());
        let server = ConceptServer::new(woc, ServeConfig::default());
        server.search("gochi", 5);
        let warm = server.cache_len();
        assert!(warm > 0);

        let report = server.maintain(&corpus, &corpus, Tick(60));
        assert_eq!(report.epoch, None, "no-op maintenance publishes nothing");
        assert_eq!(report.pages_dirty, 0);
        assert_eq!(server.epoch(), 1, "epoch unchanged");
        assert_eq!(server.cache_len(), warm, "cache stays warm");
        assert!(server.search("gochi", 5).cached);
    }

    #[test]
    fn publish_delta_empty_keeps_epoch_and_cache() {
        let server = ConceptServer::new(tiny_woc(901, 91), ServeConfig::default());
        server.search("gochi", 5);
        let warm = server.cache_len();
        let epoch = server.publish_delta(tiny_woc(901, 91), &EpochDelta::default());
        assert_eq!(epoch, 1);
        assert_eq!(server.epoch(), 1);
        assert_eq!(server.cache_len(), warm);
    }

    #[test]
    fn health_starts_clean_and_tracks_traffic() {
        let server = ConceptServer::new(tiny_woc(901, 91), ServeConfig::default());
        server.search("gochi", 5);
        let h = server.health();
        assert_eq!(h.epoch, 1);
        assert!(!h.degraded);
        assert_eq!(h.failed_maintains, 0);
        assert_eq!(h.consecutive_failures, 0);
        assert!(h.last_error.is_none());
        assert_eq!(
            (h.pages_quarantined, h.pages_failed, h.degraded_sites),
            (0, 0, 0)
        );
        assert!(h.crawl.is_none());
        let search = h
            .endpoints
            .iter()
            .find(|e| e.endpoint == "search")
            .expect("search endpoint present");
        assert_eq!(search.requests, 1);
        assert_eq!(search.errors, 0);
        assert_eq!(search.error_budget_remaining, 1.0);
    }

    #[test]
    fn failed_publish_keeps_serving_last_good_epoch() {
        let server = ConceptServer::new(tiny_woc(901, 91), ServeConfig::default());
        let before = server.search("gochi cupertino", 5);

        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = server
            .try_publish_with(|_| panic!("injected publish failure"))
            .expect_err("panicking rebuild must fail");
        std::panic::set_hook(prev_hook);
        assert!(matches!(
            &err,
            MaintainError::RebuildPanicked(msg) if msg.contains("injected publish failure")
        ));

        // Degraded mode: same epoch, byte-identical answers, health dirty.
        assert_eq!(server.epoch(), 1, "failed publish must not bump the epoch");
        let after = server.search("gochi cupertino", 5);
        assert_eq!(after.epoch, 1);
        assert_eq!(
            format!("{:?}", before.value),
            format!("{:?}", after.value),
            "degraded serving answers from the last good snapshot"
        );
        let h = server.health();
        assert!(h.degraded);
        assert_eq!(h.failed_maintains, 1);
        assert_eq!(h.consecutive_failures, 1);
        assert!(h
            .last_error
            .as_deref()
            .is_some_and(|m| m.contains("injected")));

        // Recovery: a successful publish clears the degraded flag.
        let epoch = server
            .try_publish_with(|woc| woc.clone())
            .expect("clean rebuild publishes");
        assert_eq!(epoch, 2);
        let h = server.health();
        assert!(!h.degraded);
        assert_eq!(h.consecutive_failures, 0);
        assert_eq!(h.failed_maintains, 1, "lifetime counter keeps history");
    }

    #[test]
    fn crawl_health_surfaces_in_health() {
        let server = ConceptServer::new(tiny_woc(901, 91), ServeConfig::default());
        server.set_crawl_health(CrawlHealth {
            breakers_open: 2,
            breaker_trips: 5,
            retries: 17,
        });
        let crawl = server.health().crawl.expect("crawl telemetry set");
        assert_eq!(crawl.breakers_open, 2);
        assert_eq!(crawl.breaker_trips, 5);
        assert_eq!(crawl.retries, 17);
    }

    #[test]
    fn publish_delta_scrubbed_to_noop_keeps_epoch_and_cache() {
        // Regression: a delta whose record and doc changes were all scrubbed
        // away (e.g. tombstone candidates that cancelled out) used to drop
        // the whole warm cache just because `touched_concepts` was
        // non-empty. It must behave exactly like an empty delta.
        let server = ConceptServer::new(tiny_woc(901, 91), ServeConfig::default());
        server.search("gochi", 5);
        let warm = server.cache_len();
        assert!(warm > 0);
        let delta = EpochDelta {
            touched_concepts: vec![ConceptId(0), ConceptId(1)],
            records_changed: false,
            docs_changed: false,
        };
        assert!(!delta.is_empty(), "the delta is non-empty…");
        assert!(delta.is_effectively_empty(), "…but carries no changes");
        let epoch = server.publish_delta(tiny_woc(901, 91), &delta);
        assert_eq!(epoch, 1, "no epoch bump for a scrubbed-to-no-op delta");
        assert_eq!(server.epoch(), 1);
        assert_eq!(server.cache_len(), warm, "cache survives");
        assert!(server.search("gochi", 5).cached, "and still hits");
    }

    #[test]
    fn publish_hooks_observe_only_real_publishes() {
        let server = ConceptServer::new(tiny_woc(901, 91), ServeConfig::default());
        let seen: Arc<RwLock<Vec<u64>>> = Arc::new(RwLock::new(Vec::new()));
        let sink = Arc::clone(&seen);
        server.on_publish(Box::new(move |snap| sink.write().push(snap.epoch)));
        server.publish(tiny_woc(902, 92));
        // Effectively-empty delta → no publish → hook must not fire.
        server.publish_delta(tiny_woc(901, 91), &EpochDelta::default());
        server.publish(tiny_woc(903, 93));
        assert_eq!(*seen.read(), vec![2, 3]);
    }

    #[test]
    fn publish_delta_nonempty_bumps_and_clears() {
        let server = ConceptServer::new(tiny_woc(901, 91), ServeConfig::default());
        server.search("gochi", 5);
        let delta = EpochDelta {
            touched_concepts: vec![ConceptId(0)],
            records_changed: true,
            docs_changed: false,
        };
        assert!(!delta.is_empty());
        let epoch = server.publish_delta(tiny_woc(902, 92), &delta);
        assert_eq!(epoch, 2);
        assert_eq!(server.cache_len(), 0);
    }
}
