//! Sharded LRU result cache.
//!
//! Keys are canonical query renderings (endpoint + epoch + normalized
//! [`woc_index::FieldQuery`] + k); values are `Arc`-shared responses so a hit
//! never copies the payload. The map is split into shards, each behind its
//! own mutex, so concurrent readers on different shards never contend.
//! Recency is tracked with a per-shard logical clock and a `BTreeMap` from
//! stamp to key, giving `O(log n)` touch and strict least-recently-used
//! eviction without unsafe intrusive lists.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

/// One cache shard: key → (value, recency stamp), plus the recency order.
#[derive(Debug)]
struct Shard<V> {
    map: HashMap<String, (Arc<V>, u64)>,
    order: BTreeMap<u64, String>,
    clock: u64,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Self {
            map: HashMap::new(),
            order: BTreeMap::new(),
            clock: 0,
        }
    }
}

impl<V> Shard<V> {
    fn touch(&mut self, key: &str) -> Option<Arc<V>> {
        let (value, stamp) = self.map.get(key)?;
        let (value, old) = (Arc::clone(value), *stamp);
        self.clock += 1;
        let now = self.clock;
        self.order.remove(&old);
        self.order.insert(now, key.to_string());
        self.map.get_mut(key).expect("present").1 = now;
        Some(value)
    }

    fn insert(&mut self, key: String, value: Arc<V>, capacity: usize) {
        if capacity == 0 {
            return;
        }
        self.clock += 1;
        let now = self.clock;
        if let Some((_, old)) = self.map.insert(key.clone(), (value, now)) {
            self.order.remove(&old);
        }
        self.order.insert(now, key);
        while self.map.len() > capacity {
            let (&oldest, _) = self.order.iter().next().expect("order tracks map");
            let victim = self.order.remove(&oldest).expect("present");
            self.map.remove(&victim);
        }
    }
}

/// A sharded LRU cache from canonical query strings to shared responses.
#[derive(Debug)]
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    capacity_per_shard: usize,
}

impl<V> ShardedCache<V> {
    /// Cache with `shards` independent LRU shards and `capacity` total
    /// entries (rounded up to a multiple of the shard count).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: capacity.div_ceil(shards),
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<Shard<V>> {
        // FNV-1a; stable across runs so shard assignment is deterministic.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<V>> {
        self.shard_of(key).lock().touch(key)
    }

    /// Insert `key → value`, evicting least-recently-used entries of the
    /// same shard while over capacity.
    pub fn insert(&self, key: String, value: Arc<V>) {
        let shard = self.shard_of(&key);
        shard.lock().insert(key, value, self.capacity_per_shard);
    }

    /// Drop every entry (snapshot invalidation).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = s.lock();
            s.map.clear();
            s.order.clear();
        }
    }

    /// Entries currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_clear() {
        let c: ShardedCache<u32> = ShardedCache::new(8, 2);
        assert!(c.get("a").is_none());
        c.insert("a".into(), Arc::new(1));
        assert_eq!(*c.get("a").unwrap(), 1);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.get("a").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn overwrite_replaces_value() {
        let c: ShardedCache<u32> = ShardedCache::new(8, 1);
        c.insert("k".into(), Arc::new(1));
        c.insert("k".into(), Arc::new(2));
        assert_eq!(*c.get("k").unwrap(), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Single shard, capacity 2: touching "a" protects it from eviction.
        let c: ShardedCache<u32> = ShardedCache::new(2, 1);
        c.insert("a".into(), Arc::new(1));
        c.insert("b".into(), Arc::new(2));
        assert!(c.get("a").is_some());
        c.insert("c".into(), Arc::new(3));
        assert!(c.get("a").is_some(), "recently touched survives");
        assert!(c.get("b").is_none(), "least recent evicted");
        assert!(c.get("c").is_some());
    }

    #[test]
    fn zero_capacity_never_stores() {
        let c: ShardedCache<u32> = ShardedCache::new(0, 4);
        c.insert("a".into(), Arc::new(1));
        assert!(c.get("a").is_none());
    }
}
