//! Sharded LRU result cache with per-entry retention scopes.
//!
//! Keys are canonical query renderings (endpoint + normalized
//! [`woc_index::FieldQuery`] + k); values are `Arc`-shared responses so a hit
//! never copies the payload. The map is split into shards, each behind its
//! own mutex, so concurrent readers on different shards never contend.
//! Recency is tracked with a per-shard logical clock and a `BTreeMap` from
//! stamp to key, giving `O(log n)` touch and strict least-recently-used
//! eviction without unsafe intrusive lists.
//!
//! Entries deliberately do **not** carry the epoch in their key. Instead
//! each entry records the epoch (generation) it was filled at, plus an
//! optional retention [`Scope`] — the query terms its score depends on and
//! the records its hydration reads. On a segmented delta publish the server
//! calls [`ShardedCache::retain`], which advances the cache generation and
//! keeps only entries whose scope is provably untouched by the delta; a
//! kept entry keeps answering at later epochs without recomputation.
//!
//! Two staleness rules make this sound under concurrent publishes:
//!
//! * [`ShardedCache::insert`] refuses a fill whose pinned generation is not
//!   the cache's current one, so a slow worker that evaluated against an
//!   already-replaced snapshot can never poison the cache.
//! * [`ShardedCache::get`] only returns an entry whose fill generation is
//!   `<=` the reader's pinned epoch: a retained entry is valid from its
//!   fill epoch onward (that is the retention invariant), never backward,
//!   so a reader still pinned on an old snapshot cannot observe a fill from
//!   a newer epoch.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use woc_lrec::LrecId;

/// What a cached search answer depends on, for sound per-entry retention
/// across epochs: the rendered query terms (free terms plus
/// `field\u{1f}term` scoped renderings) that determine which records match
/// and how they score under pinned statistics, and the result records whose
/// stored content the hydration step read. An entry without a scope (the
/// concept-box and recommendation endpoints, which also read document-side
/// state) can only survive a publish that changed nothing at all.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scope {
    /// Rendered query terms the result set and scores depend on.
    pub terms: Vec<String>,
    /// Records whose content the cached answer was hydrated from.
    pub records: Vec<LrecId>,
}

/// One cached fill: the shared value, its LRU stamp, the epoch it was
/// computed at, and its retention scope.
#[derive(Debug)]
struct Entry<V> {
    value: Arc<V>,
    stamp: u64,
    generation: u64,
    scope: Option<Scope>,
}

/// One cache shard: key → entry, plus the recency order.
#[derive(Debug)]
struct Shard<V> {
    map: HashMap<String, Entry<V>>,
    order: BTreeMap<u64, String>,
    clock: u64,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Self {
            map: HashMap::new(),
            order: BTreeMap::new(),
            clock: 0,
        }
    }
}

impl<V> Shard<V> {
    fn touch(&mut self, key: &str, epoch: u64) -> Option<Arc<V>> {
        let entry = self.map.get(key)?;
        if entry.generation > epoch {
            // Filled at a newer epoch than the reader's pinned snapshot —
            // not necessarily valid there.
            return None;
        }
        let (value, old) = (Arc::clone(&entry.value), entry.stamp);
        self.clock += 1;
        let now = self.clock;
        self.order.remove(&old);
        self.order.insert(now, key.to_string());
        self.map.get_mut(key).expect("present").stamp = now;
        Some(value)
    }

    fn insert(
        &mut self,
        key: String,
        value: Arc<V>,
        generation: u64,
        scope: Option<Scope>,
        capacity: usize,
    ) {
        if capacity == 0 {
            return;
        }
        self.clock += 1;
        let now = self.clock;
        if let Some(old) = self.map.insert(
            key.clone(),
            Entry {
                value,
                stamp: now,
                generation,
                scope,
            },
        ) {
            self.order.remove(&old.stamp);
        }
        self.order.insert(now, key);
        while self.map.len() > capacity {
            let (&oldest, _) = self.order.iter().next().expect("order tracks map");
            let victim = self.order.remove(&oldest).expect("present");
            self.map.remove(&victim);
        }
    }

    fn retain(&mut self, keep: impl Fn(Option<&Scope>) -> bool) {
        let order = &mut self.order;
        self.map.retain(|_, e| {
            let kept = keep(e.scope.as_ref());
            if !kept {
                order.remove(&e.stamp);
            }
            kept
        });
    }
}

/// A sharded LRU cache from canonical query strings to shared responses,
/// with generation-gated fills and scope-predicated retention.
#[derive(Debug)]
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    capacity_per_shard: usize,
    generation: AtomicU64,
}

impl<V> ShardedCache<V> {
    /// Cache with `shards` independent LRU shards and `capacity` total
    /// entries (rounded up to a multiple of the shard count). The initial
    /// generation is 1, matching a server's first epoch.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: capacity.div_ceil(shards),
            generation: AtomicU64::new(1),
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<Shard<V>> {
        // FNV-1a; stable across runs so shard assignment is deterministic.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// The current fill generation (the epoch of the last publish the
    /// cache was synchronized to).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Look up `key` on behalf of a reader pinned at `epoch`, refreshing
    /// recency on a hit. Entries filled after `epoch` are invisible.
    pub fn get(&self, key: &str, epoch: u64) -> Option<Arc<V>> {
        self.shard_of(key).lock().touch(key, epoch)
    }

    /// Insert `key → value` computed against the snapshot of `generation`,
    /// evicting least-recently-used entries of the same shard while over
    /// capacity. Refused (silently) when `generation` is not the cache's
    /// current one — the stale-worker guard.
    pub fn insert(&self, key: String, value: Arc<V>, generation: u64, scope: Option<Scope>) {
        let shard = self.shard_of(&key);
        let mut shard = shard.lock();
        if generation != self.generation.load(Ordering::Acquire) {
            return;
        }
        shard.insert(key, value, generation, scope, self.capacity_per_shard);
    }

    /// Full invalidation: advance to `generation` and drop every entry.
    pub fn clear_to(&self, generation: u64) {
        self.generation.store(generation, Ordering::Release);
        for s in &self.shards {
            let mut s = s.lock();
            s.map.clear();
            s.order.clear();
        }
    }

    /// Selective invalidation: advance to `generation`, then keep only the
    /// entries whose scope `keep` approves. Kept entries retain their
    /// original fill generation — they were valid when filled and the
    /// caller certifies the publish did not change their bytes, so they
    /// stay valid at every epoch in between.
    pub fn retain(&self, generation: u64, keep: impl Fn(Option<&Scope>) -> bool) {
        self.generation.store(generation, Ordering::Release);
        for s in &self.shards {
            s.lock().retain(&keep);
        }
    }

    /// Entries currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scoped(terms: &[&str], records: &[u64]) -> Option<Scope> {
        Some(Scope {
            terms: terms.iter().map(|t| t.to_string()).collect(),
            records: records.iter().map(|&r| LrecId(r)).collect(),
        })
    }

    #[test]
    fn hit_miss_and_clear() {
        let c: ShardedCache<u32> = ShardedCache::new(8, 2);
        assert!(c.get("a", 1).is_none());
        c.insert("a".into(), Arc::new(1), 1, None);
        assert_eq!(*c.get("a", 1).unwrap(), 1);
        assert_eq!(c.len(), 1);
        c.clear_to(2);
        assert!(c.get("a", 2).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn overwrite_replaces_value() {
        let c: ShardedCache<u32> = ShardedCache::new(8, 1);
        c.insert("k".into(), Arc::new(1), 1, None);
        c.insert("k".into(), Arc::new(2), 1, None);
        assert_eq!(*c.get("k", 1).unwrap(), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Single shard, capacity 2: touching "a" protects it from eviction.
        let c: ShardedCache<u32> = ShardedCache::new(2, 1);
        c.insert("a".into(), Arc::new(1), 1, None);
        c.insert("b".into(), Arc::new(2), 1, None);
        assert!(c.get("a", 1).is_some());
        c.insert("c".into(), Arc::new(3), 1, None);
        assert!(c.get("a", 1).is_some(), "recently touched survives");
        assert!(c.get("b", 1).is_none(), "least recent evicted");
        assert!(c.get("c", 1).is_some());
    }

    #[test]
    fn zero_capacity_never_stores() {
        let c: ShardedCache<u32> = ShardedCache::new(0, 4);
        c.insert("a".into(), Arc::new(1), 1, None);
        assert!(c.get("a", 1).is_none());
    }

    #[test]
    fn stale_generation_insert_is_refused() {
        let c: ShardedCache<u32> = ShardedCache::new(8, 2);
        c.clear_to(3);
        c.insert("old".into(), Arc::new(1), 2, None);
        assert!(c.is_empty(), "a stale worker's fill must be dropped");
        c.insert("new".into(), Arc::new(2), 3, None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn newer_fills_are_invisible_to_older_readers() {
        let c: ShardedCache<u32> = ShardedCache::new(8, 2);
        c.clear_to(5);
        c.insert("k".into(), Arc::new(9), 5, None);
        assert!(
            c.get("k", 4).is_none(),
            "a reader pinned at epoch 4 must not see an epoch-5 fill"
        );
        assert_eq!(*c.get("k", 5).unwrap(), 9);
        assert_eq!(*c.get("k", 6).unwrap(), 9, "valid forward, not backward");
    }

    #[test]
    fn retain_keeps_approved_scopes_and_their_generation() {
        let c: ShardedCache<u32> = ShardedCache::new(8, 1);
        c.insert("hit".into(), Arc::new(1), 1, scoped(&["a"], &[7]));
        c.insert("term".into(), Arc::new(2), 1, scoped(&["b"], &[8]));
        c.insert("record".into(), Arc::new(3), 1, scoped(&["c"], &[9]));
        c.insert("scopeless".into(), Arc::new(4), 1, None);
        c.retain(2, |scope| {
            scope.is_some_and(|s| {
                !s.terms.iter().any(|t| t == "b") && !s.records.contains(&LrecId(9))
            })
        });
        assert_eq!(c.generation(), 2);
        assert_eq!(*c.get("hit", 2).unwrap(), 1, "untouched scope survives");
        assert!(c.get("term", 2).is_none(), "touched term dropped");
        assert!(c.get("record", 2).is_none(), "touched record dropped");
        assert!(c.get("scopeless", 2).is_none(), "scopeless dropped");
        assert_eq!(c.len(), 1);
    }
}
