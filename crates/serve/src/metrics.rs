//! Lightweight serving metrics: per-endpoint request counters, cache
//! hit/miss counters, and log2-bucketed latency histograms with percentile
//! summaries.
//!
//! Everything is a relaxed atomic — recording a sample is a handful of
//! `fetch_add`s, cheap enough to leave on in production serving. Buckets are
//! powers of two in microseconds: bucket `i` holds samples in
//! `[2^(i-1), 2^i)` µs (bucket 0 holds sub-microsecond samples), so p50/p95/
//! p99 are upper-bound estimates with ≤2× resolution — the standard
//! trade-off of histogram-based tail latency tracking.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets: 2^39 µs ≈ 6.4 days, beyond any query.
const BUCKETS: usize = 40;

/// The serving endpoints instrumented by the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Concept search (`§5.2`).
    Search,
    /// Augmented-search concept box (`§5.1`).
    ConceptBox,
    /// Concept recommendations (`§5.4`).
    Recommend,
}

impl Endpoint {
    /// All endpoints, in display order.
    pub const ALL: [Endpoint; 3] = [Endpoint::Search, Endpoint::ConceptBox, Endpoint::Recommend];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Search => "search",
            Endpoint::ConceptBox => "concept_box",
            Endpoint::Recommend => "recommend",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Search => 0,
            Endpoint::ConceptBox => 1,
            Endpoint::Recommend => 2,
        }
    }
}

/// Allowed fraction of requests that may error before an endpoint's error
/// budget is exhausted (SRE-style: 99% of requests must succeed).
pub const ERROR_BUDGET: f64 = 0.01;

/// Counters and latency histogram for one endpoint.
#[derive(Debug)]
pub struct EndpointMetrics {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    errors: AtomicU64,
    total_micros: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for EndpointMetrics {
    fn default() -> Self {
        Self {
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl EndpointMetrics {
    /// Record one request with its latency and cache outcome.
    /// `cached = None` means the cache was bypassed (disabled).
    pub fn record(&self, micros: u64, cached: Option<bool>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match cached {
            Some(true) => self.cache_hits.fetch_add(1, Ordering::Relaxed),
            Some(false) => self.cache_misses.fetch_add(1, Ordering::Relaxed),
            None => 0,
        };
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        let cell = self
            .buckets
            .get(bucket)
            .expect("invariant: bucket clamped to BUCKETS - 1");
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one failed request (the evaluation panicked or was refused).
    /// Errors count against the endpoint's [`ERROR_BUDGET`].
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time summary of this endpoint.
    pub fn summary(&self) -> EndpointSummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let requests = self.requests.load(Ordering::Relaxed);
        let percentile = |p: f64| -> u64 {
            let total: u64 = counts.iter().sum();
            if total == 0 {
                return 0;
            }
            let rank = (p * total as f64).ceil() as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Upper bound of bucket i: 2^i µs (bucket 0 → 1 µs).
                    return 1u64 << i.min(63);
                }
            }
            1u64 << (BUCKETS - 1)
        };
        EndpointSummary {
            requests,
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            mean_micros: if requests == 0 {
                0.0
            } else {
                self.total_micros.load(Ordering::Relaxed) as f64 / requests as f64
            },
            p50_micros: percentile(0.50),
            p95_micros: percentile(0.95),
            p99_micros: percentile(0.99),
        }
    }

    fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.total_micros.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Snapshot of one endpoint's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndpointSummary {
    /// Requests served.
    pub requests: u64,
    /// Requests answered from the cache.
    pub cache_hits: u64,
    /// Requests that evaluated and populated the cache.
    pub cache_misses: u64,
    /// Requests whose evaluation failed (served a degraded empty answer).
    pub errors: u64,
    /// Mean latency in microseconds.
    pub mean_micros: f64,
    /// Median latency (bucket upper bound), microseconds.
    pub p50_micros: u64,
    /// 95th-percentile latency (bucket upper bound), microseconds.
    pub p95_micros: u64,
    /// 99th-percentile latency (bucket upper bound), microseconds.
    pub p99_micros: u64,
}

impl EndpointSummary {
    /// Cache hit rate over requests that consulted the cache (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let consulted = self.cache_hits + self.cache_misses;
        if consulted == 0 {
            0.0
        } else {
            self.cache_hits as f64 / consulted as f64
        }
    }

    /// Fraction of requests that errored (0 when no traffic).
    pub fn error_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.errors as f64 / self.requests as f64
        }
    }

    /// Remaining fraction of the endpoint's [`ERROR_BUDGET`], in `[0, 1]`:
    /// 1 with no errors, 0 once the observed error rate has consumed the
    /// whole allowance.
    pub fn error_budget_remaining(&self) -> f64 {
        (1.0 - self.error_rate() / ERROR_BUDGET).clamp(0.0, 1.0)
    }
}

/// The registry: one [`EndpointMetrics`] per serving endpoint.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    endpoints: [EndpointMetrics; 3],
}

impl MetricsRegistry {
    /// Fresh registry with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The metrics of one endpoint.
    pub fn endpoint(&self, e: Endpoint) -> &EndpointMetrics {
        self.endpoints
            .get(e.index())
            .expect("invariant: Endpoint::index() is < the endpoint count")
    }

    /// Zero every counter and bucket (between benchmark phases).
    pub fn reset(&self) {
        for e in &self.endpoints {
            e.reset();
        }
    }

    /// Render every endpoint's summary as the standard report block.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("serving metrics\n");
        for e in Endpoint::ALL {
            let s = self.endpoint(e).summary();
            let _ = writeln!(
                out,
                "  {:<12} req {:>8}  hit {:>7}  miss {:>7}  err {:>5}  hit-rate {:>5.1}%  \
                 budget {:>5.1}%  mean {:>8.1}µs  p50 {:>6}µs  p95 {:>6}µs  p99 {:>6}µs",
                e.name(),
                s.requests,
                s.cache_hits,
                s.cache_misses,
                s.errors,
                100.0 * s.hit_rate(),
                100.0 * s.error_budget_remaining(),
                s.mean_micros,
                s.p50_micros,
                s.p95_micros,
                s.p99_micros,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_summarize() {
        let m = MetricsRegistry::new();
        let e = m.endpoint(Endpoint::Search);
        e.record(0, Some(false));
        e.record(3, Some(true));
        e.record(100, Some(true));
        let s = e.summary();
        assert_eq!(s.requests, 3);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert!(s.p50_micros <= s.p95_micros && s.p95_micros <= s.p99_micros);
        // 100µs lands in the (64,128] bucket → upper bound 128.
        assert_eq!(s.p99_micros, 128);
    }

    #[test]
    fn percentiles_track_distribution() {
        let m = MetricsRegistry::new();
        let e = m.endpoint(Endpoint::Recommend);
        // 90 fast samples, 10 slow: p50 small, p99 large.
        for _ in 0..90 {
            e.record(2, None);
        }
        for _ in 0..10 {
            e.record(5_000, None);
        }
        let s = e.summary();
        assert!(s.p50_micros <= 4);
        assert!(
            s.p99_micros >= 4_096,
            "tail visible at p99: {}",
            s.p99_micros
        );
        assert_eq!(s.cache_hits + s.cache_misses, 0, "bypass counts nothing");
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = MetricsRegistry::new();
        m.endpoint(Endpoint::ConceptBox).record(10, Some(true));
        m.reset();
        let s = m.endpoint(Endpoint::ConceptBox).summary();
        assert_eq!(s.requests, 0);
        assert_eq!(s.p99_micros, 0);
        assert!(m.report().contains("concept_box"));
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = EndpointMetrics::default().summary();
        assert_eq!(s.requests, 0);
        assert_eq!(s.p50_micros, 0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.errors, 0);
        assert_eq!(s.error_budget_remaining(), 1.0, "no traffic, full budget");
    }

    #[test]
    fn error_budget_drains_with_error_rate() {
        let m = MetricsRegistry::new();
        let e = m.endpoint(Endpoint::Search);
        for _ in 0..1_000 {
            e.record(5, None);
        }
        assert_eq!(e.summary().error_budget_remaining(), 1.0);
        // 5 errors in 1000 requests = 0.5% rate = half the 1% budget.
        for _ in 0..5 {
            e.record_error();
        }
        let s = e.summary();
        assert_eq!(s.errors, 5);
        assert!((s.error_budget_remaining() - 0.5).abs() < 1e-9);
        // Blow far past the budget: remaining clamps at zero.
        for _ in 0..100 {
            e.record_error();
        }
        assert_eq!(e.summary().error_budget_remaining(), 0.0);
    }
}
