//! The logs → concepts bridge (paper §5.3).
//!
//! "An understanding of the user's past interactions with records from a web
//! of concepts are a key data source": raw toolbar trails and search clicks
//! become record-level engagement by resolving URLs through the web of
//! concepts' record↔document associations. The output feeds user models and
//! the co-engagement table that powers recommendations.

use woc_apps::{CoEngagement, Interaction, UserModel};
use woc_core::{AssocKind, WebOfConcepts};
use woc_lrec::LrecId;

use crate::log::UsageLog;

/// Records a URL is about, resolved through merges. Profile pages and
/// homepages count as engagement; bare mentions do not.
pub fn records_for_url(woc: &WebOfConcepts, url: &str) -> Vec<LrecId> {
    let mut out: Vec<LrecId> = woc
        .web
        .records_of(url)
        .iter()
        .filter(|(_, kind)| matches!(kind, AssocKind::ExtractedFrom | AssocKind::Homepage))
        .filter_map(|(r, _)| woc.store.resolve(*r))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Build the co-engagement table from trails: every pair of records engaged
/// within one trail co-occurs.
pub fn co_engagement_from_logs(woc: &WebOfConcepts, log: &UsageLog) -> CoEngagement {
    let mut co = CoEngagement::new();
    for trail in &log.trails {
        let mut engaged: Vec<LrecId> = trail
            .urls
            .iter()
            .flat_map(|u| records_for_url(woc, u))
            .collect();
        engaged.sort_unstable();
        engaged.dedup();
        if engaged.len() >= 2 {
            co.observe_session(&engaged);
        }
    }
    for event in &log.searches {
        let mut engaged: Vec<LrecId> = event
            .clicks
            .iter()
            .flat_map(|u| records_for_url(woc, u))
            .collect();
        engaged.sort_unstable();
        engaged.dedup();
        if engaged.len() >= 2 {
            co.observe_session(&engaged);
        }
    }
    co
}

/// Replay one user's events from the log into a [`UserModel`] (historical +
/// session modeling over real interaction data).
pub fn user_model_from_logs(woc: &WebOfConcepts, log: &UsageLog, user: u32) -> UserModel {
    let mut model = UserModel::new();
    for event in log.searches.iter().filter(|e| e.user == user) {
        model.observe(woc, Interaction::Queried(event.query.clone()));
        for url in &event.clicks {
            for rec in records_for_url(woc, url) {
                model.observe(woc, Interaction::ViewedRecord(rec));
            }
        }
    }
    for trail in log.trails.iter().filter(|t| t.user == user) {
        for url in &trail.urls {
            for rec in records_for_url(woc, url) {
                model.observe(woc, Interaction::ViewedRecord(rec));
            }
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{simulate, UsageConfig};
    use woc_core::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    fn setup() -> (WebOfConcepts, UsageLog) {
        let world = World::generate(WorldConfig::tiny(801));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(71));
        let woc = build(&corpus, &PipelineConfig::default());
        let log = simulate(&world, &corpus, &UsageConfig::small(81));
        (woc, log)
    }

    #[test]
    fn urls_resolve_to_records() {
        let (woc, log) = setup();
        let mut resolved = 0usize;
        let mut total = 0usize;
        for e in log.searches.iter().take(200) {
            for u in &e.clicks {
                total += 1;
                if !records_for_url(&woc, u).is_empty() {
                    resolved += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            resolved * 2 > total,
            "most clicked URLs should resolve to records: {resolved}/{total}"
        );
    }

    #[test]
    fn co_engagement_built_from_trails() {
        let (woc, log) = setup();
        let co = co_engagement_from_logs(&woc, &log);
        assert!(
            !co.is_empty(),
            "multi-record trails (≈10%) must produce co-engagement pairs"
        );
    }

    #[test]
    fn user_model_replay_builds_interest() {
        let (woc, log) = setup();
        // Find a user who clicked something that resolves.
        let user = log
            .searches
            .iter()
            .find(|e| {
                e.clicks
                    .iter()
                    .any(|u| !records_for_url(&woc, u).is_empty())
            })
            .map(|e| e.user)
            .expect("some resolving click");
        let model = user_model_from_logs(&woc, &log, user);
        let interested = model.concept_interest(woc.concepts.restaurant) > 0.0
            || model.concept_interest(woc.concepts.review) > 0.0;
        assert!(interested, "replayed model carries concept interest");
    }
}
