//! Raw log types: search logs and toolbar trails.
//!
//! These stand in for the paper's Yahoo! Search and Yahoo! Toolbar logs
//! (§3). The *analyzers* (see [`crate::analyze`]) only ever see these raw
//! structures — queries, clicked URLs, surf sequences — exactly the
//! information the paper's authors had.

use serde::{Deserialize, Serialize};

/// The synthetic web-search engine's result-page host.
pub const SEARCH_ENGINE_HOST: &str = "websearch.example.com";

/// One search event: a query and the URLs the user clicked on the results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchEvent {
    /// Anonymous user id.
    pub user: u32,
    /// The query string.
    pub query: String,
    /// Clicked result URLs, in click order.
    pub clicks: Vec<String>,
}

/// One toolbar trail: the sequence of URLs a user surfed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trail {
    /// Anonymous user id.
    pub user: u32,
    /// Visited URLs in order. Search-result pages appear as
    /// `http://websearch.example.com/?q=...` entries.
    pub urls: Vec<String>,
}

impl Trail {
    /// True if the URL at `i` is a search-engine result page.
    pub fn is_search_page(&self, i: usize) -> bool {
        self.urls
            .get(i)
            .is_some_and(|u| crate::log::is_search_url(u))
    }
}

/// True if a URL is a search-engine result page.
pub fn is_search_url(url: &str) -> bool {
    url.contains(SEARCH_ENGINE_HOST)
}

/// Build a search-result-page URL for a query.
pub fn search_url(query: &str) -> String {
    format!("http://{SEARCH_ENGINE_HOST}/?q={}", query.replace(' ', "+"))
}

/// A full usage log: searches plus trails.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UsageLog {
    /// Search events.
    pub searches: Vec<SearchEvent>,
    /// Toolbar trails.
    pub trails: Vec<Trail>,
}

impl UsageLog {
    /// Number of search events.
    pub fn num_searches(&self) -> usize {
        self.searches.len()
    }

    /// Number of trails.
    pub fn num_trails(&self) -> usize {
        self.trails.len()
    }

    /// Export the raw log as JSON — "creating shared datasets and
    /// benchmarks" (paper §7.1): the usage studies are re-runnable by anyone
    /// from the exported file.
    pub fn export(&self) -> String {
        serde_json::to_string(self).expect("log types are serializable")
    }

    /// Import a log exported by [`UsageLog::export`].
    pub fn import(json: &str) -> Result<UsageLog, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_url_round_trip() {
        let u = search_url("gochi cupertino");
        assert!(is_search_url(&u));
        assert!(u.contains("gochi+cupertino"));
        assert!(!is_search_url("http://gochi.example.com/"));
    }

    #[test]
    fn log_export_round_trip() {
        let log = UsageLog {
            searches: vec![SearchEvent {
                user: 1,
                query: "gochi cupertino".into(),
                clicks: vec!["http://a/".into()],
            }],
            trails: vec![Trail {
                user: 2,
                urls: vec![search_url("x"), "http://b/".into()],
            }],
        };
        let imported = UsageLog::import(&log.export()).unwrap();
        assert_eq!(imported.searches, log.searches);
        assert_eq!(imported.trails, log.trails);
        assert!(UsageLog::import("garbage").is_err());
    }

    #[test]
    fn trail_search_page_detection() {
        let t = Trail {
            user: 1,
            urls: vec![search_url("x"), "http://a.example.com/".into()],
        };
        assert!(t.is_search_page(0));
        assert!(!t.is_search_page(1));
        assert!(!t.is_search_page(9));
    }
}
