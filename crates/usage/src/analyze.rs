//! The §3 analyses, re-run over raw logs.
//!
//! Each function mirrors one paragraph of the paper's "Usage Studies"
//! section and works only from raw queries/clicks/trails plus the public
//! URL inventory (aggregator URL patterns, the list of restaurant homepage
//! URLs — which the paper's authors also had, "we obtained a list of
//! restaurant homepage URLs from yelp.com").

use std::collections::{HashMap, HashSet};

use woc_textkit::tokenize::tokenize_words;

use crate::log::{SearchEvent, Trail, UsageLog};

/// The aggregator URL taxonomy of §3 "Concepts vs. Search".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregatorUrlKind {
    /// `/biz/…` — one business.
    Biz,
    /// `/search/…` — a result page.
    Search,
    /// `/c/…` — a predefined category.
    Category,
    /// Anything else on the aggregator host.
    Other,
}

/// Classify an aggregator URL by its path shape (the study's method: URL
/// sub-categories of yelp.com).
pub fn classify_aggregator_url(url: &str, host: &str) -> Option<AggregatorUrlKind> {
    if !url.contains(host) {
        return None;
    }
    let path = woc_webgen::page::url_path(url);
    Some(if path.starts_with("/biz/") {
        AggregatorUrlKind::Biz
    } else if path.starts_with("/search/") {
        AggregatorUrlKind::Search
    } else if path.starts_with("/c/") {
        AggregatorUrlKind::Category
    } else {
        AggregatorUrlKind::Other
    })
}

/// E1: shares of clicked aggregator URLs per kind.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClickCategoryStats {
    /// Total clicks on the aggregator.
    pub total: usize,
    /// Share of biz clicks.
    pub biz: f64,
    /// Share of search clicks.
    pub search: f64,
    /// Share of category clicks.
    pub category: f64,
    /// Share of other clicks.
    pub other: f64,
}

/// E1: "we looked at queries resulting in a click on a URL from yelp.com …
/// 59% are biz URLs, 19% are search URLs, 11% are c URLs".
pub fn click_categories(log: &UsageLog, host: &str) -> ClickCategoryStats {
    let mut counts: HashMap<AggregatorUrlKind, usize> = HashMap::new();
    let mut total = 0usize;
    for e in &log.searches {
        for u in &e.clicks {
            if let Some(kind) = classify_aggregator_url(u, host) {
                *counts.entry(kind).or_insert(0) += 1;
                total += 1;
            }
        }
    }
    let share = |k| {
        if total == 0 {
            0.0
        } else {
            counts.get(&k).copied().unwrap_or(0) as f64 / total as f64
        }
    };
    ClickCategoryStats {
        total,
        biz: share(AggregatorUrlKind::Biz),
        search: share(AggregatorUrlKind::Search),
        category: share(AggregatorUrlKind::Category),
        other: share(AggregatorUrlKind::Other),
    }
}

/// E2: attribute-token tally over queries that clicked a restaurant
/// homepage, "after removing the restaurant names and location information
/// from the queries". Returns `(token, fraction of such queries)` sorted by
/// fraction descending.
pub fn attribute_queries(
    log: &UsageLog,
    homepage_urls: &HashSet<String>,
    name_location_tokens: &HashSet<String>,
) -> Vec<(String, f64)> {
    let mut query_count = 0usize;
    let mut token_counts: HashMap<String, usize> = HashMap::new();
    for e in &log.searches {
        if !e.clicks.iter().any(|u| homepage_urls.contains(u)) {
            continue;
        }
        query_count += 1;
        let mut seen: HashSet<String> = HashSet::new();
        for tok in tokenize_words(&e.query) {
            if name_location_tokens.contains(&tok) || woc_textkit::tokenize::is_stopword(&tok) {
                continue;
            }
            if seen.insert(tok.clone()) {
                *token_counts.entry(tok).or_insert(0) += 1;
            }
        }
    }
    let mut out: Vec<(String, f64)> = token_counts
        .into_iter()
        .map(|(t, c)| (t, c as f64 / query_count.max(1) as f64))
        .collect();
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    out
}

/// E3: co-click statistics among queries that clicked a biz URL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoClickStats {
    /// Number of biz-click queries.
    pub total: usize,
    /// Fraction that clicked at least one other URL for the same query.
    pub at_least_one_other: f64,
    /// Fraction that clicked at least two other URLs.
    pub at_least_two_others: f64,
}

/// E3: "more than 59% of the time they also clicked on at least one other
/// URL for the same query, and 35% of the time … at least two".
pub fn co_clicks(log: &UsageLog, host: &str) -> CoClickStats {
    let mut total = 0usize;
    let mut one = 0usize;
    let mut two = 0usize;
    for e in &log.searches {
        let biz_click = e
            .clicks
            .iter()
            .any(|u| classify_aggregator_url(u, host) == Some(AggregatorUrlKind::Biz));
        if !biz_click {
            continue;
        }
        total += 1;
        let others = e.clicks.len().saturating_sub(1);
        if others >= 1 {
            one += 1;
        }
        if others >= 2 {
            two += 1;
        }
    }
    CoClickStats {
        total,
        at_least_one_other: one as f64 / total.max(1) as f64,
        at_least_two_others: two as f64 / total.max(1) as f64,
    }
}

/// E4: trail statistics around restaurant homepages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrailStats {
    /// Homepage visits observed.
    pub homepage_visits: usize,
    /// Fraction immediately preceded by a search-engine page.
    pub search_preceded: f64,
    /// Fraction of next-URLs that are location pages.
    pub next_location: f64,
    /// Fraction of next-URLs that are menu pages.
    pub next_menu: f64,
    /// Fraction of next-URLs that are coupons pages.
    pub next_coupons: f64,
    /// Fraction of trails containing more than one distinct restaurant.
    pub multi_instance_trails: f64,
}

/// Page-role classifiers the trail analysis needs. All derivable from URL
/// inventories (no ground truth).
pub struct TrailClassifier<'a> {
    /// Restaurant homepage URLs.
    pub homepages: &'a HashSet<String>,
    /// Homepage host → restaurant key, to count distinct instances.
    pub host_of: &'a dyn Fn(&str) -> Option<String>,
}

impl std::fmt::Debug for TrailClassifier<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrailClassifier")
            .field("homepages", &self.homepages.len())
            .field("host_of", &"<fn>")
            .finish()
    }
}

/// E4: "about 42% of the homepage visits are immediately preceded by a
/// query to a search engine … 11.5% of [next URLs] are the location/address
/// … 9% menu … 1% coupons … about 10.5% of the user trails contain more
/// than one distinct instance of the restaurant concept."
pub fn trails(log: &UsageLog, cls: &TrailClassifier<'_>) -> TrailStats {
    let mut visits = 0usize;
    let mut preceded = 0usize;
    let mut next_total = 0usize;
    let mut next_loc = 0usize;
    let mut next_menu = 0usize;
    let mut next_coupons = 0usize;
    let mut multi = 0usize;
    for t in &log.trails {
        let mut distinct: HashSet<String> = HashSet::new();
        for (i, url) in t.urls.iter().enumerate() {
            if let Some(host) = (cls.host_of)(url) {
                distinct.insert(host);
            }
            if !cls.homepages.contains(url) {
                continue;
            }
            visits += 1;
            if i > 0 && t.is_search_page(i - 1) {
                preceded += 1;
            }
            if let Some(next) = t.urls.get(i + 1) {
                next_total += 1;
                if next.contains("location") {
                    next_loc += 1;
                } else if next.contains("menu") {
                    next_menu += 1;
                } else if next.contains("coupons") {
                    next_coupons += 1;
                }
            }
        }
        if distinct.len() > 1 {
            multi += 1;
        }
    }
    TrailStats {
        homepage_visits: visits,
        search_preceded: preceded as f64 / visits.max(1) as f64,
        next_location: next_loc as f64 / next_total.max(1) as f64,
        next_menu: next_menu as f64 / next_total.max(1) as f64,
        next_coupons: next_coupons as f64 / next_total.max(1) as f64,
        multi_instance_trails: multi as f64 / log.trails.len().max(1) as f64,
    }
}

/// Helper: the name/location token set for E2, built from the restaurant
/// inventory (names, cities, states) — the "removing the restaurant names
/// and location information" step.
pub fn name_location_tokens(world: &woc_webgen::World) -> HashSet<String> {
    let mut set = HashSet::new();
    for &r in &world.restaurants {
        let rec = world.rec(r);
        for key in ["name", "city", "state"] {
            if let Some(v) = rec.best_string(key) {
                set.extend(tokenize_words(&v));
            }
        }
    }
    set
}

/// Helper: homepage URL set and host mapping for E2/E4.
pub fn homepage_inventory(world: &woc_webgen::World) -> (HashSet<String>, HashMap<String, String>) {
    let mut urls = HashSet::new();
    let mut hosts = HashMap::new();
    for &r in &world.restaurants {
        if let Some(h) = world.rec(r).best_string("homepage") {
            let host = woc_webgen::page::url_host(&h).to_string();
            urls.insert(h.clone());
            hosts.insert(host, h);
        }
    }
    (urls, hosts)
}

/// Convenience: one SearchEvent for tests.
pub fn event(user: u32, query: &str, clicks: &[&str]) -> SearchEvent {
    SearchEvent {
        user,
        query: query.to_string(),
        clicks: clicks.iter().map(|s| s.to_string()).collect(),
    }
}

/// Convenience: one Trail for tests.
pub fn trail(user: u32, urls: &[&str]) -> Trail {
    Trail {
        user,
        // woc-lint: allow(map-iter-order) — `urls` is the slice parameter (shadows
        // a map binding elsewhere in this file); slice order is preserved.
        urls: urls.iter().map(|s| s.to_string()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOST: &str = "localreviews.example.com";

    #[test]
    fn url_classification() {
        assert_eq!(
            classify_aggregator_url("http://localreviews.example.com/biz/gochi", HOST),
            Some(AggregatorUrlKind::Biz)
        );
        assert_eq!(
            classify_aggregator_url("http://localreviews.example.com/search/x", HOST),
            Some(AggregatorUrlKind::Search)
        );
        assert_eq!(
            classify_aggregator_url("http://localreviews.example.com/c/a/b", HOST),
            Some(AggregatorUrlKind::Category)
        );
        assert_eq!(
            classify_aggregator_url("http://localreviews.example.com/", HOST),
            Some(AggregatorUrlKind::Other)
        );
        assert_eq!(
            classify_aggregator_url("http://other.example.com/biz/x", HOST),
            None
        );
    }

    #[test]
    fn click_category_shares() {
        let log = UsageLog {
            searches: vec![
                event(1, "a", &["http://localreviews.example.com/biz/x"]),
                event(2, "b", &["http://localreviews.example.com/biz/y"]),
                event(3, "c", &["http://localreviews.example.com/search/z"]),
                event(4, "d", &["http://localreviews.example.com/c/a/b"]),
                event(5, "e", &["http://elsewhere.example.com/"]),
            ],
            trails: vec![],
        };
        let s = click_categories(&log, HOST);
        assert_eq!(s.total, 4);
        assert!((s.biz - 0.5).abs() < 1e-12);
        assert!((s.search - 0.25).abs() < 1e-12);
        assert!((s.category - 0.25).abs() < 1e-12);
    }

    #[test]
    fn attribute_tally_strips_names() {
        let homepages: HashSet<String> = ["http://gochi.example.com/".to_string()].into();
        let names: HashSet<String> = ["gochi".to_string(), "cupertino".to_string()].into();
        let log = UsageLog {
            searches: vec![
                event(1, "gochi cupertino menu", &["http://gochi.example.com/"]),
                event(2, "gochi cupertino", &["http://gochi.example.com/"]),
                event(3, "gochi menu", &["http://gochi.example.com/"]),
                event(4, "unrelated menu", &["http://other.example.com/"]),
            ],
            trails: vec![],
        };
        let tally = attribute_queries(&log, &homepages, &names);
        assert_eq!(tally[0].0, "menu");
        assert!(
            (tally[0].1 - 2.0 / 3.0).abs() < 1e-12,
            "2 of 3 homepage queries"
        );
    }

    #[test]
    fn co_click_counting() {
        let log = UsageLog {
            searches: vec![
                event(1, "a", &["http://localreviews.example.com/biz/x"]),
                event(
                    2,
                    "b",
                    &[
                        "http://localreviews.example.com/biz/y",
                        "http://y.example.com/",
                    ],
                ),
                event(
                    3,
                    "c",
                    &[
                        "http://localreviews.example.com/biz/z",
                        "http://z1.example.com/",
                        "http://z2.example.com/",
                    ],
                ),
            ],
            trails: vec![],
        };
        let s = co_clicks(&log, HOST);
        assert_eq!(s.total, 3);
        assert!((s.at_least_one_other - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.at_least_two_others - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trail_statistics() {
        let homepages: HashSet<String> = [
            "http://gochi.example.com/".to_string(),
            "http://blue.example.com/".to_string(),
        ]
        .into();
        let host_of = |url: &str| -> Option<String> {
            let host = woc_webgen::page::url_host(url).to_string();
            (host.contains("gochi") || host.contains("blue")).then_some(host)
        };
        let log = UsageLog {
            searches: vec![],
            trails: vec![
                trail(
                    1,
                    &[
                        &crate::log::search_url("gochi"),
                        "http://gochi.example.com/",
                        "http://gochi.example.com/menu.html",
                    ],
                ),
                trail(
                    2,
                    &[
                        "http://blog.example.com/post",
                        "http://gochi.example.com/",
                        "http://gochi.example.com/location.html",
                    ],
                ),
                trail(
                    3,
                    &["http://gochi.example.com/", "http://blue.example.com/"],
                ),
            ],
        };
        let cls = TrailClassifier {
            homepages: &homepages,
            host_of: &host_of,
        };
        let s = trails(&log, &cls);
        assert_eq!(s.homepage_visits, 4);
        assert!((s.search_preceded - 0.25).abs() < 1e-12);
        assert!((s.multi_instance_trails - 1.0 / 3.0).abs() < 1e-12);
        assert!(s.next_menu > 0.0 && s.next_location > 0.0);
    }
}
