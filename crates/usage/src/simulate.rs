//! The user-behavior simulator — the stand-in for Yahoo!'s user population.
//!
//! The paper measured real logs; those are proprietary, so we *simulate* a
//! population whose intent mixture is calibrated to the paper's reported
//! statistics (DESIGN.md §2, experiment ids E1–E4) and re-run the paper's
//! analyses over the raw logs the simulator emits. The analyzers never see
//! the calibration parameters — they recover the statistics from raw
//! queries, clicks and trails, exactly like the original study.

// woc-lint: allow-file(panic-in-lib) — log simulator: unwraps are choose() over
// inventories the caller builds non-empty (guarded at entry).

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use woc_webgen::sites::RestaurantView;
use woc_webgen::{PageKind, WebCorpus, World};

use crate::log::{search_url, SearchEvent, Trail, UsageLog};

/// Calibration of the simulated population. Defaults reproduce §3.
#[derive(Debug, Clone)]
pub struct UsageConfig {
    /// Number of search events targeting the local aggregator (E1/E3).
    pub aggregator_queries: usize,
    /// Number of search events clicking restaurant homepages (E2).
    pub homepage_queries: usize,
    /// Number of toolbar trails through restaurant homepages (E4).
    pub trails: usize,
    /// Aggregator click mix: biz / search / category (remainder: home).
    pub p_biz: f64,
    /// Search-page share.
    pub p_search: f64,
    /// Category-page share.
    pub p_category: f64,
    /// Among biz-click queries: distribution of *additional* same-query
    /// clicks `0,1,2,3` (E3: ≥1 must be ~0.59, ≥2 ~0.35).
    pub co_click_dist: [f64; 4],
    /// Attribute-token rates appended to homepage queries (E2): token, rate.
    pub attribute_rates: Vec<(&'static str, f64)>,
    /// Fraction of homepage visits arriving from a search page (E4: 42%).
    pub p_search_referral: f64,
    /// Next-page mix after the homepage (E4): location/menu/coupons rates.
    pub p_next_location: f64,
    /// Menu as next page.
    pub p_next_menu: f64,
    /// Coupons as next page.
    pub p_next_coupons: f64,
    /// Fraction of trails visiting a second restaurant (E4: 10.5%).
    pub p_multi_instance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UsageConfig {
    fn default() -> Self {
        Self {
            aggregator_queries: 4000,
            homepage_queries: 4000,
            trails: 4000,
            p_biz: 0.59,
            p_search: 0.19,
            p_category: 0.11,
            // P(0)=0.41, P(1)=0.24, P(2)=0.245, P(3)=0.105 ⇒ P(≥1)=0.59, P(≥2)=0.35.
            co_click_dist: [0.41, 0.24, 0.245, 0.105],
            // Appending rates sit above the paper's reported fractions
            // because the E2 denominator also counts the homepage co-clicks
            // of E1/E3 queries (which carry no attribute tokens) — the same
            // dilution the real study would see from navigational queries.
            attribute_rates: vec![
                ("menu", 0.040),
                ("coupons", 0.024),
                ("online", 0.020),
                ("weekly specials", 0.020),
                ("locations", 0.020),
                ("nutrition", 0.005),
                ("to go", 0.005),
                ("delivery", 0.005),
                ("careers", 0.004),
            ],
            // Second-instance homepage visits (the multi-instance trails)
            // are never search-preceded and often trail-final; the raw
            // parameters compensate so the *measured* statistics land on
            // the paper's numbers.
            p_search_referral: 0.465,
            p_next_location: 0.100,
            p_next_menu: 0.078,
            p_next_coupons: 0.018,
            p_multi_instance: 0.105,
            seed: 0x5EED,
        }
    }
}

impl UsageConfig {
    /// Smaller log volume for tests.
    pub fn small(seed: u64) -> Self {
        Self {
            aggregator_queries: 800,
            homepage_queries: 800,
            trails: 800,
            seed,
            ..Self::default()
        }
    }
}

/// A restaurant's own pages: `(home, location, menu, coupons)` URLs
/// (options where the page exists).
type HomepagePages = (String, Option<String>, Option<String>, Option<String>);

/// Everything the simulator needs to know about the corpus: URL inventories
/// per page role.
struct Inventory {
    /// `(biz_url, restaurant_index)` on the primary aggregator.
    biz: Vec<(String, usize)>,
    /// Aggregator search URLs.
    search: Vec<String>,
    /// Aggregator category URLs.
    category: Vec<String>,
    /// Aggregator home URL.
    home: Option<String>,
    /// Per-restaurant other-source URLs (secondary aggregator biz page,
    /// blog mentions) for co-clicks.
    other_sources: Vec<Vec<String>>,
    /// Per-restaurant homepage-site pages.
    homepages: Vec<HomepagePages>,
}

fn inventory(world: &World, corpus: &WebCorpus, views: &[RestaurantView]) -> Inventory {
    const PRIMARY: &str = "localreviews.example.com";
    let mut biz = Vec::new();
    let mut search = Vec::new();
    let mut category = Vec::new();
    let mut home = None;
    let mut other_sources: Vec<Vec<String>> = vec![Vec::new(); views.len()];
    let mut homepages: Vec<HomepagePages> = views
        .iter()
        .map(|v| (v.homepage.clone(), None, None, None))
        .collect();

    let id_to_index: std::collections::HashMap<_, _> = world
        .restaurants
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();

    for page in corpus.pages() {
        match &page.truth.kind {
            PageKind::AggregatorBiz => {
                if let Some(about) = page.truth.about {
                    if let Some(&i) = id_to_index.get(&about) {
                        if page.site == PRIMARY {
                            biz.push((page.url.clone(), i));
                        } else {
                            other_sources[i].push(page.url.clone());
                        }
                    }
                }
            }
            PageKind::AggregatorSearch if page.site == PRIMARY => search.push(page.url.clone()),
            PageKind::AggregatorCategory if page.site == PRIMARY => category.push(page.url.clone()),
            PageKind::AggregatorHome if page.site == PRIMARY => home = Some(page.url.clone()),
            PageKind::Article => {
                for m in &page.truth.mentions {
                    if let Some(&i) = id_to_index.get(m) {
                        other_sources[i].push(page.url.clone());
                    }
                }
            }
            PageKind::RestaurantLocation => {
                if let Some(&i) = page.truth.about.as_ref().and_then(|a| id_to_index.get(a)) {
                    homepages[i].1 = Some(page.url.clone());
                }
            }
            PageKind::RestaurantMenu => {
                if let Some(&i) = page.truth.about.as_ref().and_then(|a| id_to_index.get(a)) {
                    homepages[i].2 = Some(page.url.clone());
                }
            }
            PageKind::RestaurantCoupons => {
                if let Some(&i) = page.truth.about.as_ref().and_then(|a| id_to_index.get(a)) {
                    homepages[i].3 = Some(page.url.clone());
                }
            }
            _ => {}
        }
    }
    Inventory {
        biz,
        search,
        category,
        home,
        other_sources,
        homepages,
    }
}

/// Simulate a full usage log over a world + corpus.
pub fn simulate(world: &World, corpus: &WebCorpus, config: &UsageConfig) -> UsageLog {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let views = RestaurantView::all(world);
    let inv = inventory(world, corpus, &views);
    let mut log = UsageLog::default();
    let mut user = 0u32;

    // --- E1/E3: queries clicking the aggregator --------------------------
    for _ in 0..config.aggregator_queries {
        user += 1;
        let roll: f64 = rng.random();
        if roll < config.p_biz && !inv.biz.is_empty() {
            // Specific-instance search.
            let &(ref biz_url, i) = inv.biz.choose(&mut rng).unwrap();
            let v = &views[i];
            let query = format!("{} {}", v.name.to_lowercase(), v.city.to_lowercase());
            let mut clicks = vec![biz_url.clone()];
            // Co-clicks on other sources for the same query (E3): "the
            // homepage of the business, profile pages from other aggregation
            // sites …, as well as blogs and reviews".
            let extra = sample_index(&mut rng, &config.co_click_dist);
            let mut pool: Vec<String> = vec![v.homepage.clone()];
            pool.extend(inv.other_sources[i].iter().cloned());
            let (_, loc, menu, _) = &inv.homepages[i];
            pool.extend(menu.clone());
            pool.extend(loc.clone());
            for k in 0..extra {
                if let Some(u) = pool.get(k) {
                    clicks.push(u.clone());
                }
            }
            log.searches.push(SearchEvent {
                user,
                query,
                clicks,
            });
        } else if roll < config.p_biz + config.p_search && !inv.search.is_empty() {
            // Set search ("wedding cakes Los Angeles"-style).
            let url = inv.search.choose(&mut rng).unwrap().clone();
            let v = views.choose(&mut rng).unwrap();
            let query = format!("{} {}", v.cuisine.to_lowercase(), v.city.to_lowercase());
            log.searches.push(SearchEvent {
                user,
                query,
                clicks: vec![url],
            });
        } else if roll < config.p_biz + config.p_search + config.p_category
            && !inv.category.is_empty()
        {
            let url = inv.category.choose(&mut rng).unwrap().clone();
            let v = views.choose(&mut rng).unwrap();
            let query = format!(
                "{} {} restaurants",
                v.city.to_lowercase(),
                v.cuisine.to_lowercase()
            );
            log.searches.push(SearchEvent {
                user,
                query,
                clicks: vec![url],
            });
        } else if let Some(h) = &inv.home {
            let query = "restaurant reviews".to_string();
            log.searches.push(SearchEvent {
                user,
                query,
                clicks: vec![h.clone()],
            });
        }
    }

    // --- E2: queries clicking restaurant homepages -----------------------
    for _ in 0..config.homepage_queries {
        user += 1;
        let i = rng.random_range(0..views.len());
        let v = &views[i];
        let mut query = format!("{} {}", v.name.to_lowercase(), v.city.to_lowercase());
        // Append at most one attribute token per the calibrated rates.
        let roll: f64 = rng.random();
        let mut acc = 0.0;
        for (token, rate) in &config.attribute_rates {
            acc += rate;
            if roll < acc {
                query = format!("{query} {token}");
                break;
            }
        }
        log.searches.push(SearchEvent {
            user,
            query,
            clicks: vec![inv.homepages[i].0.clone()],
        });
    }

    // --- E4: toolbar trails through homepages -----------------------------
    for _ in 0..config.trails {
        user += 1;
        let i = rng.random_range(0..views.len());
        let (home, location, menu, coupons) = &inv.homepages[i];
        let mut urls: Vec<String> = Vec::new();
        // Referrer: search page or some other page (blog, aggregator).
        if rng.random_bool(config.p_search_referral) {
            urls.push(search_url(&views[i].name.to_lowercase()));
        } else if let Some(src) = inv.other_sources[i].first() {
            urls.push(src.clone());
        }
        urls.push(home.clone());
        // Next page after the homepage.
        let roll: f64 = rng.random();
        if roll < config.p_next_location {
            if let Some(l) = location {
                urls.push(l.clone());
            }
        } else if roll < config.p_next_location + config.p_next_menu {
            if let Some(m) = menu {
                urls.push(m.clone());
            }
        } else if roll < config.p_next_location + config.p_next_menu + config.p_next_coupons {
            if let Some(c) = coupons {
                urls.push(c.clone());
            }
        } else if let Some(other) = inv.other_sources[i].first() {
            urls.push(other.clone());
        }
        // Multi-instance trails (E4: ~10.5%).
        if rng.random_bool(config.p_multi_instance) {
            let j = rng.random_range(0..views.len());
            if j != i {
                urls.push(inv.homepages[j].0.clone());
            }
        }
        log.trails.push(Trail { user, urls });
    }

    log
}

fn sample_index(rng: &mut StdRng, dist: &[f64; 4]) -> usize {
    let roll: f64 = rng.random();
    let mut acc = 0.0;
    for (i, p) in dist.iter().enumerate() {
        acc += p;
        if roll < acc {
            return i;
        }
    }
    dist.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_webgen::{generate_corpus, CorpusConfig, WorldConfig};

    fn setup() -> (World, WebCorpus) {
        let w = World::generate(WorldConfig::tiny(401));
        let c = generate_corpus(&w, &CorpusConfig::tiny(31));
        (w, c)
    }

    #[test]
    fn simulation_produces_configured_volumes() {
        let (w, c) = setup();
        let log = simulate(&w, &c, &UsageConfig::small(1));
        assert_eq!(log.num_searches(), 800 + 800);
        assert_eq!(log.num_trails(), 800);
    }

    #[test]
    fn clicks_reference_real_pages_or_search() {
        let (w, c) = setup();
        let log = simulate(&w, &c, &UsageConfig::small(2));
        for e in &log.searches {
            assert!(!e.clicks.is_empty());
            for u in &e.clicks {
                assert!(
                    c.get(u).is_some() || crate::log::is_search_url(u),
                    "clicked URL {u} not in corpus"
                );
            }
        }
        for t in &log.trails {
            assert!(!t.urls.is_empty());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (w, c) = setup();
        let a = simulate(&w, &c, &UsageConfig::small(3));
        let b = simulate(&w, &c, &UsageConfig::small(3));
        assert_eq!(a.searches, b.searches);
        assert_eq!(a.trails, b.trails);
    }
}
