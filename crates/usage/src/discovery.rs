//! Behavior-driven concept/attribute discovery (paper §7.4).
//!
//! "How can user behavior in search and browsing be studied in order to
//! extract the concepts and attributes that might be valuable to improving
//! the user experience?" — the attribute-token machinery of E2 already
//! surfaces what users ask restaurants *for* (menu, coupons, delivery…);
//! this module turns those signals into schema evolution: frequently
//! requested attributes missing from a concept's schema are proposed and can
//! be admitted (paper §2.2: "the set of attributes associated with a concept
//! may also evolve").

use std::collections::HashSet;

use woc_core::WebOfConcepts;
use woc_lrec::{AttrKind, AttrSpec, Cardinality, ConceptId};

use crate::analyze::attribute_queries;
use crate::log::UsageLog;

/// A proposed schema addition with its evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeProposal {
    /// The proposed attribute key.
    pub key: String,
    /// Fraction of relevant queries requesting it.
    pub demand: f64,
}

/// Mine attribute proposals for a concept from homepage-click queries:
/// tokens users append to instance queries, minus what the schema already
/// declares, above a demand threshold.
pub fn propose_attributes(
    woc: &WebOfConcepts,
    concept: ConceptId,
    log: &UsageLog,
    homepage_urls: &HashSet<String>,
    name_location_tokens: &HashSet<String>,
    min_demand: f64,
) -> Vec<AttributeProposal> {
    let Some(schema) = woc.registry.schema(concept) else {
        return Vec::new();
    };
    let declared: HashSet<String> = schema.attrs().map(|a| a.key.clone()).collect();
    attribute_queries(log, homepage_urls, name_location_tokens)
        .into_iter()
        .filter(|(_, demand)| *demand >= min_demand)
        .filter(|(token, _)| !declared.contains(token))
        .map(|(key, demand)| AttributeProposal { key, demand })
        .collect()
}

/// Admit proposals into the concept's schema (as loosely-typed `Text`
/// attributes — extraction will type them as it learns more). Returns the
/// admitted keys.
pub fn evolve_schema_from_behavior(
    woc: &mut WebOfConcepts,
    concept: ConceptId,
    proposals: &[AttributeProposal],
) -> Vec<String> {
    let Some(schema) = woc.registry.schema_mut(concept) else {
        return Vec::new();
    };
    let mut admitted = Vec::new();
    for p in proposals {
        if schema.attr(&p.key).is_none() {
            schema.evolve(AttrSpec::new(&p.key, AttrKind::Text, Cardinality::Many));
            admitted.push(p.key.clone());
        }
    }
    admitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{homepage_inventory, name_location_tokens};
    use crate::simulate::{simulate, UsageConfig};
    use woc_core::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    #[test]
    fn user_demand_evolves_the_schema() {
        let world = World::generate(WorldConfig::tiny(811));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(72));
        let mut woc = build(&corpus, &PipelineConfig::default());
        let log = simulate(&world, &corpus, &UsageConfig::default());
        let (homepages, _) = homepage_inventory(&world);
        let names = name_location_tokens(&world);
        let restaurant = woc.concepts.restaurant;

        let proposals = propose_attributes(&woc, restaurant, &log, &homepages, &names, 0.005);
        // Users ask for menus (declared? no — the restaurant schema has no
        // `menu` attribute) and coupons (undeclared).
        let keys: Vec<&str> = proposals.iter().map(|p| p.key.as_str()).collect();
        assert!(keys.contains(&"menu"), "menu demanded: {keys:?}");
        assert!(keys.contains(&"coupons"), "coupons demanded: {keys:?}");
        // Already-declared attributes are not proposed.
        assert!(!keys.contains(&"name"));
        assert!(!keys.contains(&"phone"));
        // Demand ordering: menu tops the list (the paper's 3%).
        assert_eq!(proposals[0].key, "menu");

        let before = woc.registry.schema(restaurant).unwrap().attrs().count();
        let admitted = evolve_schema_from_behavior(&mut woc, restaurant, &proposals);
        assert!(admitted.contains(&"coupons".to_string()));
        let schema = woc.registry.schema(restaurant).unwrap();
        assert_eq!(schema.attrs().count(), before + admitted.len());
        assert!(schema.attr("coupons").is_some());
        // Idempotent.
        let again = evolve_schema_from_behavior(&mut woc, restaurant, &proposals);
        assert!(again.is_empty());
    }

    #[test]
    fn threshold_filters_noise() {
        let world = World::generate(WorldConfig::tiny(812));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(73));
        let mut woc = build(&corpus, &PipelineConfig::default());
        let log = simulate(&world, &corpus, &UsageConfig::default());
        let (homepages, _) = homepage_inventory(&world);
        let names = name_location_tokens(&world);
        let restaurant = woc.concepts.restaurant;
        let strict = propose_attributes(&woc, restaurant, &log, &homepages, &names, 0.5);
        let _ = &mut woc;
        assert!(strict.is_empty());
    }
}
