//! # woc-usage — the §3 usage studies, reproduced
//!
//! The paper motivates the web of concepts with analyses of Yahoo! Search
//! and Yahoo! Toolbar logs. Those logs are proprietary; per DESIGN.md §2 we
//! substitute a calibrated user-behavior simulator and re-run the paper's
//! exact analyses over the raw logs it emits:
//!
//! * [`log`] — raw log types (search events, toolbar trails);
//! * [`mod@simulate`] — the population simulator, calibrated to the paper's
//!   reported statistics;
//! * [`bridge`] — resolve raw log URLs into record-level engagement through
//!   the web of concepts (co-engagement tables, replayed user models, §5.3);
//! * [`discovery`] — behavior-driven schema evolution (§7.4): demanded-but-
//!   undeclared attributes become schema proposals;
//! * [`analyze`] — the four analyses: click-category shares (E1),
//!   attribute-token tallies (E2), same-query co-clicks (E3) and trail
//!   statistics (E4). Analyzers see only raw logs plus public URL
//!   inventories, just like the original study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod bridge;
pub mod discovery;
pub mod log;
pub mod simulate;

pub use analyze::{
    attribute_queries, click_categories, co_clicks, trails, AggregatorUrlKind, ClickCategoryStats,
    CoClickStats, TrailStats,
};
pub use bridge::{co_engagement_from_logs, records_for_url, user_model_from_logs};
pub use discovery::{evolve_schema_from_behavior, propose_attributes, AttributeProposal};
pub use log::{SearchEvent, Trail, UsageLog, SEARCH_ENGINE_HOST};
pub use simulate::{simulate, UsageConfig};

/// The primary aggregator host the usage studies are scoped to (the study's
/// `yelp.com`).
pub const AGGREGATOR_HOST: &str = "localreviews.example.com";

#[cfg(test)]
mod tests {
    use super::*;
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    /// End-to-end: simulate with default calibration, re-run the analyses,
    /// and land within tolerance of the paper's §3 numbers.
    #[test]
    fn paper_statistics_reproduced() {
        let world = World::generate(WorldConfig::tiny(402));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(32));
        let log = simulate(&world, &corpus, &UsageConfig::default());

        // E1: 59% biz / 19% search / 11% category.
        let e1 = click_categories(&log, AGGREGATOR_HOST);
        assert!((e1.biz - 0.59).abs() < 0.04, "biz share {}", e1.biz);
        assert!(
            (e1.search - 0.19).abs() < 0.04,
            "search share {}",
            e1.search
        );
        assert!(
            (e1.category - 0.11).abs() < 0.04,
            "category share {}",
            e1.category
        );

        // E2: menu ~3%, coupons ~1.8%.
        let (homepages, _) = analyze::homepage_inventory(&world);
        let names = analyze::name_location_tokens(&world);
        let tally = attribute_queries(&log, &homepages, &names);
        let rate = |tok: &str| {
            tally
                .iter()
                .find(|(t, _)| t == tok)
                .map(|(_, r)| *r)
                .unwrap_or(0.0)
        };
        assert!((rate("menu") - 0.03).abs() < 0.015, "menu {}", rate("menu"));
        assert!(
            (rate("coupons") - 0.018).abs() < 0.012,
            "coupons {}",
            rate("coupons")
        );

        // E3: ≥1 other click 59%, ≥2 35%.
        let e3 = co_clicks(&log, AGGREGATOR_HOST);
        assert!(
            (e3.at_least_one_other - 0.59).abs() < 0.05,
            "{}",
            e3.at_least_one_other
        );
        assert!(
            (e3.at_least_two_others - 0.35).abs() < 0.05,
            "{}",
            e3.at_least_two_others
        );

        // E4: 42% search-preceded; next = location 11.5% / menu 9% / coupons 1%;
        // 10.5% multi-instance.
        let (homepage_urls, host_map) = analyze::homepage_inventory(&world);
        let host_of = move |url: &str| -> Option<String> {
            let host = woc_webgen::page::url_host(url).to_string();
            host_map.contains_key(&host).then_some(host)
        };
        let cls = analyze::TrailClassifier {
            homepages: &homepage_urls,
            host_of: &host_of,
        };
        let e4 = trails(&log, &cls);
        assert!(
            (e4.search_preceded - 0.42).abs() < 0.05,
            "{}",
            e4.search_preceded
        );
        assert!(
            (e4.next_location - 0.115).abs() < 0.04,
            "{}",
            e4.next_location
        );
        assert!((e4.next_menu - 0.09).abs() < 0.04, "{}", e4.next_menu);
        assert!(e4.next_coupons < 0.05, "{}", e4.next_coupons);
        assert!(
            (e4.multi_instance_trails - 0.105).abs() < 0.04,
            "{}",
            e4.multi_instance_trails
        );
    }
}
