//! Committed-baseline support: CI fails only on *new* findings.
//!
//! The baseline is a plain text file, one entry per line:
//!
//! ```text
//! rule <TAB> file <TAB> symbol <TAB> count
//! ```
//!
//! sorted for stable diffs. Entries are keyed on `(rule, file, symbol)` —
//! deliberately **not** on line numbers, so unrelated edits shifting a file
//! do not invalidate the baseline, while a *new* occurrence of a rule in a
//! function shows up as a count increase. Lines starting with `#` are
//! comments.
//!
//! Matching semantics against a run:
//!
//! * finding count ≤ baselined count → suppressed (pass);
//! * finding count > baselined count (or key absent) → **new** finding, run
//!   fails;
//! * baselined count > finding count → **stale** entry; the run fails with a
//!   refresh hint (`--write-baseline`), keeping the committed file honest.

use std::collections::BTreeMap;

use crate::rules::Finding;

/// A parsed baseline: `(rule, file, symbol) → allowed count`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String, String), usize>,
}

/// Outcome of checking a run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct BaselineDiff {
    /// `(key, found, allowed)` for keys exceeding their baselined count
    /// (allowed = 0 for unbaselined keys).
    pub new: Vec<((String, String, String), usize, usize)>,
    /// `(key, found, allowed)` for baselined keys the run no longer (fully)
    /// produces — fixed findings whose entries should be refreshed away.
    pub stale: Vec<((String, String, String), usize, usize)>,
    /// Findings suppressed by the baseline.
    pub suppressed: usize,
}

impl BaselineDiff {
    /// True when the run is clean against the baseline (nothing new, nothing
    /// stale).
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

impl Baseline {
    /// Parse the baseline text format. Unparseable lines are ignored (they
    /// surface as stale/new churn rather than hard errors).
    pub fn parse(text: &str) -> Baseline {
        let mut entries = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.split('\t').collect();
            if parts.len() != 4 {
                continue;
            }
            let Ok(count) = parts[3].trim().parse::<usize>() else {
                continue;
            };
            entries.insert(
                (
                    parts[0].to_string(),
                    parts[1].to_string(),
                    parts[2].to_string(),
                ),
                count,
            );
        }
        Baseline { entries }
    }

    /// Number of baselined entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render a finding set as baseline text (sorted, deterministic). Only
    /// unallowed deny findings are recorded — warn findings never gate, and
    /// pragma-allowed findings are already justified in the source.
    pub fn render(files: &[(String, Vec<Finding>)]) -> String {
        let counts = gating_counts(files);
        let mut out = String::from(
            "# woc-lint baseline — pre-existing findings tolerated by CI.\n\
             # One entry per line: rule<TAB>file<TAB>symbol<TAB>count.\n\
             # Regenerate with: cargo run -p woc-lint -- --interproc --write-baseline <path>\n",
        );
        for ((rule, file, symbol), count) in &counts {
            out.push_str(&format!("{rule}\t{file}\t{symbol}\t{count}\n"));
        }
        out
    }

    /// Diff a run against this baseline.
    pub fn diff(&self, files: &[(String, Vec<Finding>)]) -> BaselineDiff {
        let counts = gating_counts(files);
        let mut diff = BaselineDiff::default();
        for (key, &found) in &counts {
            let allowed = self.entries.get(key).copied().unwrap_or(0);
            if found > allowed {
                diff.new.push((key.clone(), found, allowed));
            } else {
                diff.suppressed += found;
                if found < allowed {
                    diff.stale.push((key.clone(), found, allowed));
                }
            }
        }
        for (key, &allowed) in &self.entries {
            if !counts.contains_key(key) {
                diff.stale.push((key.clone(), 0, allowed));
            }
        }
        diff.stale.sort();
        diff.new.sort();
        diff
    }
}

/// Count gating findings (unallowed, deny severity) per baseline key.
fn gating_counts(files: &[(String, Vec<Finding>)]) -> BTreeMap<(String, String, String), usize> {
    let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for (path, findings) in files {
        for f in findings {
            if f.allowed || f.severity != crate::rules::Severity::Deny {
                continue;
            }
            *counts
                .entry((f.rule.to_string(), path.clone(), f.symbol.clone()))
                .or_insert(0) += 1;
        }
    }
    counts
}
