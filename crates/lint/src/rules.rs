//! The rule catalog and rule implementations.
//!
//! Each rule is a pure function over a preprocessed [`Source`]; rules are
//! heuristic by design (no type information), so every rule supports
//! suppression via `// woc-lint: allow(rule)` pragmas with a justification.

use crate::scan::{find_words, ident_before, Source};

/// How a finding gates CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run unless allow-listed.
    Deny,
    /// Reported but never fails the run.
    Warn,
}

/// What part of the tree a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/` of a lib crate).
    Lib,
    /// Binary code (`src/bin/`, `src/main.rs`).
    Bin,
    /// Test/bench/example code.
    Test,
}

/// Which files and lines a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Library code outside `#[cfg(test)]` only.
    LibOnly,
    /// Library and binary code outside `#[cfg(test)]`.
    NonTest,
    /// Everything, including tests.
    All,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (catalog key and pragma key).
    pub rule: &'static str,
    /// Gate behavior.
    pub severity: Severity,
    /// 1-based line number.
    pub line: usize,
    /// Human diagnostic.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// True if an allow pragma suppresses this finding.
    pub allowed: bool,
    /// Enclosing function (`Type::name`) for interprocedural findings;
    /// empty for line rules. Part of the baseline key, so findings survive
    /// unrelated line shifts.
    pub symbol: String,
}

/// Catalog entry describing a rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name.
    pub name: &'static str,
    /// Gate behavior.
    pub severity: Severity,
    /// Applicability.
    pub scope: Scope,
    /// One-line summary for `--rules` and the README catalog.
    pub summary: &'static str,
}

/// The rule catalog.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "map-iter-order",
        severity: Severity::Deny,
        scope: Scope::NonTest,
        summary: "HashMap/HashSet iteration flows into order-sensitive output without an adjacent sort or order-insensitive reduction",
    },
    RuleInfo {
        name: "nondet-source",
        severity: Severity::Deny,
        scope: Scope::NonTest,
        summary: "unseeded RNG or wall-clock time (thread_rng, from_entropy, rand::random, SystemTime::now) in deterministic code paths",
    },
    RuleInfo {
        name: "panic-in-lib",
        severity: Severity::Deny,
        scope: Scope::LibOnly,
        summary: "bare unwrap()/panic!/todo!/unimplemented! in library code (expect(\"invariant\") with a message is admitted)",
    },
    RuleInfo {
        name: "slice-index",
        severity: Severity::Warn,
        scope: Scope::LibOnly,
        summary: "direct slice/map indexing in hot-path crates (index, matching, serve, core) — prefer get() on untrusted indices",
    },
    RuleInfo {
        name: "static-mut",
        severity: Severity::Deny,
        scope: Scope::All,
        summary: "static mut items (data races by construction)",
    },
    RuleInfo {
        name: "unsafe-no-safety",
        severity: Severity::Deny,
        scope: Scope::All,
        summary: "unsafe block/fn/impl without a `// SAFETY:` comment on or directly above it",
    },
    RuleInfo {
        name: "nested-locks",
        severity: Severity::Deny,
        scope: Scope::NonTest,
        summary: "lock acquisition while another lock guard binding is still live in the same scope (deadlock-prone; drop the guard first)",
    },
    RuleInfo {
        name: "retry-no-backoff",
        severity: Severity::Deny,
        scope: Scope::NonTest,
        summary: "retry loop (attempt/retry vocabulary plus failure handling) with no backoff, breaker, delay or cooldown consulted — hot-loops the failing operation",
    },
    RuleInfo {
        name: "missing-debug",
        severity: Severity::Deny,
        scope: Scope::LibOnly,
        summary: "public struct/enum without a Debug derive or manual Debug impl",
    },
    RuleInfo {
        name: "error-display",
        severity: Severity::Deny,
        scope: Scope::LibOnly,
        summary: "public *Error enum without a Display impl in its defining file",
    },
];

/// Look up a rule's catalog entry (line rules and interprocedural rules
/// share one namespace).
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES
        .iter()
        .find(|r| r.name == name)
        .or_else(|| crate::interproc::interproc_rule_info(name))
}

fn line_applies(scope: Scope, kind: FileKind, in_test: bool) -> bool {
    match scope {
        Scope::LibOnly => kind == FileKind::Lib && !in_test,
        Scope::NonTest => kind != FileKind::Test && !in_test,
        Scope::All => true,
    }
}

fn finding(rule: &'static str, line_no: usize, raw: &str, message: String) -> Finding {
    let info = rule_info(rule).expect("rule registered in catalog");
    Finding {
        rule,
        severity: info.severity,
        line: line_no + 1,
        message,
        excerpt: raw.trim().to_string(),
        allowed: false,
        symbol: String::new(),
    }
}

/// Run every rule over a preprocessed file.
pub fn run_all(src: &Source, kind: FileKind, path: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    map_iter_order(src, kind, &mut out);
    nondet_source(src, kind, &mut out);
    panic_in_lib(src, kind, &mut out);
    slice_index(src, kind, path, &mut out);
    static_mut(src, &mut out);
    unsafe_no_safety(src, &mut out);
    nested_locks(src, kind, &mut out);
    retry_no_backoff(src, kind, &mut out);
    missing_debug(src, kind, &mut out);
    error_display(src, kind, &mut out);
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

// ---------------------------------------------------------------- determinism

/// Methods whose results surface iteration order.
const ITER_METHODS: &[&str] = &[
    ".keys()",
    ".values()",
    ".values_mut()",
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

/// Markers within the statement window that make surfaced order harmless:
/// an explicit sort, an order-insensitive reduction, or collection back into
/// an unordered/ordered-by-key container.
const ORDER_SAFE: &[&str] = &[
    "sort",
    ".sum()",
    ".sum::<",
    ".count()",
    ".max",
    ".min",
    ".any(",
    ".all(",
    ".fold(",
    ".contains",
    ".len()",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "noisy_or",
];

/// Lines to look ahead for an ORDER_SAFE marker (the rest of the statement
/// plus an immediately following `out.sort…` statement).
const ORDER_WINDOW: usize = 5;

pub(crate) fn collect_map_idents(src: &Source) -> Vec<String> {
    let mut idents: Vec<String> = Vec::new();
    for line in &src.lines {
        let code = &line.code;
        for ty in ["HashMap", "HashSet"] {
            for pos in find_words(code, ty) {
                if let Some(name) = binding_ident(code, pos) {
                    if !idents.iter().any(|i| i == &name) {
                        idents.push(name);
                    }
                }
            }
        }
    }
    idents
}

/// The identifier a `HashMap`/`HashSet` occurrence is bound to, if the
/// occurrence is a declaration site (`name: HashMap<…>`, `let name =
/// HashMap::new()`, `let name = …collect::<HashMap<…>>()`).
fn binding_ident(code: &str, pos: usize) -> Option<String> {
    let before = code[..pos].trim_end();
    // `let name = HashMap::new()` / `name: HashMap<...>` / `name: &mut HashMap<...>`
    let before = before
        .strip_suffix("&mut")
        .or_else(|| before.strip_suffix('&'))
        .unwrap_or(before)
        .trim_end();
    if let Some(prefix) = before
        .strip_suffix(':')
        .or_else(|| before.strip_suffix('='))
    {
        let prefix = prefix.trim_end();
        let name = ident_before(prefix, prefix.len())?;
        if name == "mut" || name == "static" || name == "const" {
            return None;
        }
        return Some(name.to_string());
    }
    // `….collect::<HashMap<…>>()` bound by a `let name =` earlier on the line.
    if before.ends_with("::<") {
        let let_pos = code.find("let ")?;
        let rest = &code[let_pos + 4..];
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let end = rest
            .find(|c: char| !c.is_alphanumeric() && c != '_')
            .unwrap_or(rest.len());
        if end > 0 {
            return Some(rest[..end].to_string());
        }
    }
    None
}

fn map_iter_order(src: &Source, kind: FileKind, out: &mut Vec<Finding>) {
    let idents = collect_map_idents(src);
    if idents.is_empty() {
        return;
    }
    for (i, line) in src.lines.iter().enumerate() {
        if !line_applies(Scope::NonTest, kind, line.in_test) {
            continue;
        }
        let code = &line.code;
        let mut hit: Option<&str> = None;
        for m in ITER_METHODS {
            let mut start = 0;
            while let Some(rel) = code[start..].find(m) {
                let pos = start + rel;
                if let Some(recv) = ident_before(code, pos) {
                    if idents.iter().any(|i| i == recv) {
                        hit = Some(recv);
                    }
                }
                start = pos + m.len();
            }
        }
        // `for x in &map {` / `for x in map {` without an iterator method.
        if hit.is_none() {
            if let Some(in_pos) = code.find(" in ") {
                let rest = code[in_pos + 4..].trim_start();
                let rest = rest
                    .strip_prefix("&mut ")
                    .or_else(|| rest.strip_prefix('&'))
                    .unwrap_or(rest);
                let end = rest
                    .find(|c: char| !c.is_alphanumeric() && c != '_')
                    .unwrap_or(rest.len());
                let name = &rest[..end];
                let after = rest[end..].trim_start();
                if after.is_empty() || after.starts_with('{') {
                    hit = idents.iter().find(|i| *i == name).map(String::as_str);
                }
            }
        }
        let Some(recv) = hit else { continue };
        // The statement may begin above (e.g. `let out: HashMap<…> =` on the
        // previous line): extend the window back over continuation lines —
        // preceding lines that do not terminate a statement or open a block.
        let mut start = i;
        while start > 0 && i - start < 3 {
            let prev = src.lines[start - 1].code.trim_end();
            if prev.is_empty() || prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}')
            {
                break;
            }
            start -= 1;
        }
        let window: String = src.lines[start..(i + ORDER_WINDOW).min(src.lines.len())]
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        if ORDER_SAFE.iter().any(|s| window.contains(s)) {
            continue;
        }
        // A sort on the binding just above the loop (`v.sort(); for x in v`)
        // fixes the order before it is consumed.
        let sorted_above = src.lines[i.saturating_sub(3)..i]
            .iter()
            .any(|l| l.code.contains("sort"));
        if sorted_above {
            continue;
        }
        out.push(finding(
            "map-iter-order",
            i,
            &line.raw,
            format!(
                "iteration over hash container `{recv}` surfaces nondeterministic order \
                 (no sort or order-insensitive reduction nearby); collect and sort, or use a BTreeMap"
            ),
        ));
    }
}

fn nondet_source(src: &Source, kind: FileKind, out: &mut Vec<Finding>) {
    const SOURCES: &[(&str, &str)] = &[
        ("thread_rng", "unseeded RNG"),
        ("from_entropy", "entropy-seeded RNG"),
        ("SystemTime::now", "wall-clock time"),
        ("rand::random", "unseeded RNG"),
    ];
    for (i, line) in src.lines.iter().enumerate() {
        if !line_applies(Scope::NonTest, kind, line.in_test) {
            continue;
        }
        for (tok, what) in SOURCES {
            if !find_words(&line.code, tok).is_empty() {
                out.push(finding(
                    "nondet-source",
                    i,
                    &line.raw,
                    format!(
                        "{what} (`{tok}`) breaks reproducibility; thread a seeded StdRng through instead"
                    ),
                ));
            }
        }
    }
}

fn panic_in_lib(src: &Source, kind: FileKind, out: &mut Vec<Finding>) {
    const PANICS: &[(&str, &str)] = &[
        (".unwrap()", "bare unwrap"),
        ("panic!(", "explicit panic"),
        ("todo!(", "todo"),
        ("unimplemented!(", "unimplemented"),
    ];
    for (i, line) in src.lines.iter().enumerate() {
        if !line_applies(Scope::LibOnly, kind, line.in_test) {
            continue;
        }
        for (tok, what) in PANICS {
            if line.code.contains(tok) {
                out.push(finding(
                    "panic-in-lib",
                    i,
                    &line.raw,
                    format!(
                        "{what} in library code can abort the process on unexpected input; \
                         handle the None/Err, or use expect(\"invariant: …\") to document why it cannot fire"
                    ),
                ));
            }
        }
    }
}

fn slice_index(src: &Source, kind: FileKind, path: &str, out: &mut Vec<Finding>) {
    const HOT: &[&str] = &[
        "crates/index/",
        "crates/matching/",
        "crates/serve/",
        "crates/core/",
    ];
    if !HOT.iter().any(|h| path.contains(h)) {
        return;
    }
    for (i, line) in src.lines.iter().enumerate() {
        if !line_applies(Scope::LibOnly, kind, line.in_test) {
            continue;
        }
        let code = &line.code;
        let mut reported = false;
        for (pos, c) in code.char_indices() {
            if c != '[' || reported {
                continue;
            }
            let Some(recv) = ident_before(code, pos) else {
                continue;
            };
            // `vec![…]`, attribute `#[…]`, and type syntax have no ident or a
            // `!`/`#` before the bracket; closing `]` immediately after is a
            // type like `[u8]`.
            if recv.is_empty() || code[pos..].starts_with("[]") {
                continue;
            }
            out.push(finding(
                "slice-index",
                i,
                &line.raw,
                format!(
                    "direct indexing of `{recv}` in a hot-path crate panics on out-of-range; \
                     prefer get()/get_mut() unless the bound is locally checked"
                ),
            ));
            reported = true;
        }
    }
}

fn static_mut(src: &Source, out: &mut Vec<Finding>) {
    for (i, line) in src.lines.iter().enumerate() {
        if line.code.contains("static mut ") {
            out.push(finding(
                "static-mut",
                i,
                &line.raw,
                "static mut is a data race waiting to happen; use atomics, OnceLock, or Mutex"
                    .to_string(),
            ));
        }
    }
}

fn unsafe_no_safety(src: &Source, out: &mut Vec<Finding>) {
    for (i, line) in src.lines.iter().enumerate() {
        let positions = find_words(&line.code, "unsafe");
        if positions.is_empty() {
            continue;
        }
        let documented =
            (i.saturating_sub(3)..=i).any(|j| src.lines[j].comment.contains("SAFETY:"));
        if !documented {
            out.push(finding(
                "unsafe-no-safety",
                i,
                &line.raw,
                "unsafe without a `// SAFETY:` comment stating the invariant that makes it sound"
                    .to_string(),
            ));
        }
    }
}

fn nested_locks(src: &Source, kind: FileKind, out: &mut Vec<Finding>) {
    const ACQUIRE: &[&str] = &[".lock()", ".read()", ".write()"];
    // (guard ident, depth at binding line): live until depth drops below.
    let mut live: Vec<(String, u32)> = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        live.retain(|(_, d)| line.depth >= *d);
        if !line_applies(Scope::NonTest, kind, line.in_test) {
            continue;
        }
        let code = &line.code;
        // Explicit drop ends a guard's life early.
        for (name, _) in live.clone() {
            if code.contains(&format!("drop({name})")) {
                live.retain(|(n, _)| n != &name);
            }
        }
        let acquires_here = ACQUIRE.iter().any(|a| code.contains(a));
        if acquires_here && !live.is_empty() {
            let holders: Vec<&str> = live.iter().map(|(n, _)| n.as_str()).collect();
            out.push(finding(
                "nested-locks",
                i,
                &line.raw,
                format!(
                    "lock acquired while guard(s) [{}] are still live; drop the guard first \
                     (lock-ordering deadlocks and surprise contention)",
                    holders.join(", ")
                ),
            ));
        }
        // New guard binding: `let [mut] name = ….lock()/.read()/.write()…;`
        if acquires_here {
            let trimmed = code.trim_start();
            if let Some(rest) = trimmed.strip_prefix("let ") {
                let rest = rest.strip_prefix("mut ").unwrap_or(rest);
                let end = rest
                    .find(|c: char| !c.is_alphanumeric() && c != '_')
                    .unwrap_or(rest.len());
                if end > 0 && rest[end..].trim_start().starts_with('=') {
                    live.push((rest[..end].to_string(), line.depth));
                }
            }
        }
    }
}

/// How many body lines of a loop the retry rule examines.
const RETRY_WINDOW: usize = 40;

/// True if the code contains a retry-vocabulary identifier segment
/// (`attempt`, `retry`, …), matching inside snake_case names too
/// (`max_attempts`, `retry_count`).
fn has_retry_vocab(code: &str) -> bool {
    const HINTS: &[&str] = &["attempt", "attempts", "retry", "retries"];
    code.split(|c: char| !c.is_alphanumeric())
        .any(|tok| HINTS.iter().any(|h| tok.eq_ignore_ascii_case(h)))
}

fn retry_no_backoff(src: &Source, kind: FileKind, out: &mut Vec<Finding>) {
    const FALLIBLE: &[&str] = &["Err(", ".is_err()", ".is_none()", "None =>", ".ok()"];
    const CONSULT: &[&str] = &["backoff", "breaker", "delay", "sleep", "cooldown", "jitter"];
    for (i, line) in src.lines.iter().enumerate() {
        if !line_applies(Scope::NonTest, kind, line.in_test) {
            continue;
        }
        let code = &line.code;
        let trimmed = code.trim_start();
        let is_header = trimmed.starts_with("for ")
            || trimmed.starts_with("while ")
            || !find_words(code, "loop").is_empty();
        if !is_header {
            continue;
        }
        // The loop body: lines strictly deeper than the header, capped.
        let mut body_end = i + 1;
        while body_end < src.lines.len()
            && body_end - i <= RETRY_WINDOW
            && src.lines[body_end].depth > line.depth
        {
            body_end += 1;
        }
        if body_end == i + 1 {
            continue;
        }
        let window: String = src.lines[i..body_end]
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        let retries_failures =
            has_retry_vocab(&window) && FALLIBLE.iter().any(|f| window.contains(f));
        if !retries_failures {
            continue;
        }
        let lower = window.to_lowercase();
        if CONSULT.iter().any(|c| lower.contains(c)) {
            continue;
        }
        out.push(finding(
            "retry-no-backoff",
            i,
            &line.raw,
            "loop retries a fallible operation without consulting a backoff schedule, \
             circuit breaker, or delay — a hard failure is hammered at full speed"
                .to_string(),
        ));
    }
}

fn missing_debug(src: &Source, kind: FileKind, out: &mut Vec<Finding>) {
    for (i, line) in src.lines.iter().enumerate() {
        if !line_applies(Scope::LibOnly, kind, line.in_test) {
            continue;
        }
        let trimmed = line.code.trim_start();
        let Some(name) = ["pub struct ", "pub enum "]
            .iter()
            .find_map(|kw| trimmed.strip_prefix(kw))
        else {
            continue;
        };
        // Only top-level-ish declarations (not strings already; depth 0 for
        // items, >0 inside `mod` blocks is fine too — accept any).
        let end = name
            .find(|c: char| !c.is_alphanumeric() && c != '_')
            .unwrap_or(name.len());
        let name = &name[..end];
        if name.is_empty() {
            continue;
        }
        let attrs = attribute_block_above(src, i);
        let has_derive_debug = attrs.contains("derive") && !find_words(&attrs, "Debug").is_empty();
        let has_manual = src
            .lines
            .iter()
            .any(|l| l.code.contains(&format!("Debug for {name}")));
        if !has_derive_debug && !has_manual {
            out.push(finding(
                "missing-debug",
                i,
                &line.raw,
                format!(
                    "public type `{name}` has no Debug derive or impl; callers cannot log or assert on it"
                ),
            ));
        }
    }
}

/// Join the contiguous attribute/doc-comment block directly above line `i`
/// (handles multi-line `#[derive(…)]` lists).
fn attribute_block_above(src: &Source, i: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for j in (i.saturating_sub(14)..i).rev() {
        let code = src.lines[j].code.trim();
        let is_comment_only = code.is_empty();
        let is_attr = code.starts_with("#[") || code.starts_with("#!");
        // Continuation lines inside a multi-line attribute: idents, commas,
        // parens, brackets only.
        let is_continuation = !code.is_empty()
            && code
                .chars()
                .all(|c| c.is_alphanumeric() || "_,()[]<>= \t\"".contains(c));
        if is_comment_only || is_attr || is_continuation {
            parts.push(code);
        } else {
            break;
        }
    }
    parts.reverse();
    parts.join("\n")
}

fn error_display(src: &Source, kind: FileKind, out: &mut Vec<Finding>) {
    for (i, line) in src.lines.iter().enumerate() {
        if !line_applies(Scope::LibOnly, kind, line.in_test) {
            continue;
        }
        let trimmed = line.code.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub enum ") else {
            continue;
        };
        let end = rest
            .find(|c: char| !c.is_alphanumeric() && c != '_')
            .unwrap_or(rest.len());
        let name = &rest[..end];
        if !name.ends_with("Error") {
            continue;
        }
        let has_display = src
            .lines
            .iter()
            .any(|l| l.code.contains(&format!("Display for {name}")));
        if !has_display {
            out.push(finding(
                "error-display",
                i,
                &line.raw,
                format!(
                    "error enum `{name}` has no Display impl; errors must render for operators and logs"
                ),
            ));
        }
    }
}
