//! Interprocedural nondeterminism taint analysis.
//!
//! Taint is seeded at known nondeterminism sources — iteration over hash
//! containers declared in the file, `RandomState`, unseeded RNG, wall-clock
//! time — and propagated through let-bound locals line by line. Function
//! summaries lift the analysis across calls: a function whose return value
//! derives from a source taints its callers' bindings, a function whose
//! parameter can reach a digest/canonical sink turns tainted arguments at the
//! call site into findings. Summaries are iterated to a fixpoint over the
//! call graph, so laundering a nondeterministic order through a helper's
//! return value no longer hides it.
//!
//! An explicit `sort` (or collection into a `BTree*` container) on the value
//! cleanses taint — sorted data has a canonical order regardless of how it
//! was produced.
//!
//! Documented gaps of the no-type-information scanner: struct-field taint
//! (`self.x = tainted`) is not tracked across statements, and arguments are
//! matched to parameters positionally only when the tainted variable appears
//! textually inside the call's parentheses.

use std::collections::{BTreeMap, BTreeSet};

use crate::interproc::{mk_finding, Ctx};
use crate::symbols::{Callee, FnDef};

/// Textual markers that seed taint on a line regardless of bindings.
const SOURCES: &[(&str, &str)] = &[
    ("RandomState", "hasher randomization"),
    ("thread_rng", "unseeded RNG"),
    ("from_entropy", "entropy-seeded RNG"),
    ("rand::random", "unseeded RNG"),
    ("SystemTime::now", "wall-clock time"),
    ("Instant::now", "wall-clock time"),
    ("available_parallelism", "thread-count-dependent value"),
];

/// Call tokens that are digest/canonical sinks: bytes flowing in here must
/// have a deterministic order.
const SINKS: &[&str] = &["canonical_bytes(", "fingerprint(", "digest("];

/// Iteration methods that surface hash-container order (kept in sync with
/// the `map-iter-order` line rule).
const ITER_METHODS: &[&str] = &[
    ".keys()",
    ".values()",
    ".iter()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

/// Markers that cleanse taint on the line's binding.
const CLEANSE: &[&str] = &["sort", "BTreeMap", "BTreeSet"];

/// Per-function summary, iterated to a fixpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Summary {
    /// The return value derives from a source with no parameter involved.
    returns_taint: bool,
    /// Parameter indices whose taint reaches a sink inside the function.
    param_to_sink: BTreeSet<usize>,
    /// Parameter indices whose taint reaches the return value.
    param_to_return: BTreeSet<usize>,
}

/// One sink hit found during a flow: (0-based line, description).
type SinkHit = (usize, String);

/// Result of one per-function flow.
#[derive(Debug, Default)]
struct Flow {
    tainted_return: bool,
    sinks: Vec<SinkHit>,
}

/// Run the pass.
pub fn run(ctx: &mut Ctx<'_>) {
    let table = ctx.table;
    // Hash-container idents per file (declaration sites).
    let map_idents: Vec<Vec<String>> = table
        .files
        .iter()
        .map(|f| crate::rules::collect_map_idents(&f.src))
        .collect();

    let mut summaries: Vec<Summary> = vec![Summary::default(); table.fns.len()];
    loop {
        let mut changed = false;
        for (fi, f) in table.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let mut next = Summary::default();
            let base = flow(
                table,
                fi,
                f,
                &map_idents[f.file],
                &BTreeSet::new(),
                &summaries,
            );
            next.returns_taint = base.tainted_return;
            for (pi, (pname, _)) in f.params.iter().enumerate() {
                let seeded: BTreeSet<String> = [pname.clone()].into_iter().collect();
                let r = flow(table, fi, f, &map_idents[f.file], &seeded, &summaries);
                if r.sinks.len() > base.sinks.len() {
                    next.param_to_sink.insert(pi);
                }
                if r.tainted_return {
                    next.param_to_return.insert(pi);
                }
            }
            if next != summaries[fi] {
                summaries[fi] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Reporting pass: base flow per function, sinks become findings.
    for (fi, f) in table.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let base = flow(
            table,
            fi,
            f,
            &map_idents[f.file],
            &BTreeSet::new(),
            &summaries,
        );
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for (line, desc) in base.sinks {
            if !seen.insert(line) {
                continue;
            }
            ctx.push(
                f.file,
                mk_finding(
                    "nondet-taint",
                    line,
                    &ctx.table.files[f.file].src,
                    format!(
                        "{desc} in `{}`; bytes entering a digest/canonical sink must have a \
                         deterministic order — sort first or use an ordered container",
                        f.qual_name()
                    ),
                    f.qual_name(),
                ),
            );
        }
    }
}

/// Line-by-line taint flow over one function body. `seeded` pre-taints
/// parameter names (for summary computation).
fn flow(
    table: &crate::symbols::SymbolTable,
    fi: usize,
    f: &FnDef,
    map_idents: &[String],
    seeded: &BTreeSet<String>,
    summaries: &[Summary],
) -> Flow {
    let file = &table.files[f.file];
    let lines = &file.src.lines;
    let (b0, b1) = f.body;
    let mut tainted: BTreeSet<String> = seeded.clone();
    let mut out = Flow::default();
    let mut calls_by_line: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &ci in &table.calls_of[fi] {
        calls_by_line
            .entry(table.calls[ci].line)
            .or_default()
            .push(ci);
    }

    let end = b1.min(lines.len().saturating_sub(1));
    for (i, line) in lines.iter().enumerate().take(end + 1).skip(b0) {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        let cleansed = CLEANSE.iter().any(|c| code.contains(c));

        // Taint state feeding this line's right-hand side.
        let mut why: Option<String> = None;
        for (tok, what) in SOURCES {
            if code.contains(tok) {
                why = Some(format!("{what} (`{tok}`)"));
            }
        }
        // Hash-container iteration over a declared map/set ident.
        if why.is_none() {
            for m in ITER_METHODS {
                let mut start = 0;
                while let Some(rel) = code[start..].find(m) {
                    let pos = start + rel;
                    start = pos + m.len();
                    if let Some(recv) = crate::scan::ident_before(code, pos) {
                        if map_idents.iter().any(|x| x == recv) || tainted.contains(recv) {
                            why = Some(format!("hash-container iteration order (`{recv}{m}`)"));
                        }
                    }
                }
            }
        }
        let tainted_here: Vec<&String> = tainted.iter().filter(|v| has_word(code, v)).collect();
        if why.is_none() && !tainted_here.is_empty() {
            why = Some(format!("value derived from tainted `{}`", tainted_here[0]));
        }
        // Calls whose return value is tainted (source-derived, or tainted
        // argument flowing to the return).
        if let Some(cis) = calls_by_line.get(&i) {
            for &ci in cis {
                let call = &table.calls[ci];
                let Callee::Resolved(cands) = &call.callee else {
                    continue;
                };
                let args = call_args(code, &call.name);
                for &t in cands {
                    let s = &summaries[t];
                    let arg_taint = (!s.param_to_return.is_empty() || !s.param_to_sink.is_empty())
                        && tainted.iter().any(|v| has_word(&args, v));
                    if s.returns_taint && why.is_none() {
                        why = Some(format!(
                            "return value of `{}` derives from a nondeterminism source",
                            table.fns[t].qual_name()
                        ));
                    }
                    if !s.param_to_return.is_empty() && arg_taint && why.is_none() {
                        why = Some(format!(
                            "tainted argument flows through `{}`'s return value",
                            table.fns[t].qual_name()
                        ));
                    }
                    if !s.param_to_sink.is_empty() && arg_taint {
                        out.sinks.push((
                            i,
                            format!(
                                "tainted argument reaches a digest/canonical sink inside `{}`",
                                table.fns[t].qual_name()
                            ),
                        ));
                    }
                }
            }
        }

        // Direct sink on this line with taint present.
        if let Some(w) = &why {
            if !cleansed && SINKS.iter().any(|s| code.contains(s)) {
                out.sinks
                    .push((i, format!("{w} flows into a digest/canonical sink")));
            }
        }

        // Binding update.
        let trimmed = code.trim_start();
        if let Some(rest) = trimmed.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let end = rest
                .find(|c: char| !c.is_alphanumeric() && c != '_')
                .unwrap_or(rest.len());
            if end > 0 {
                let name = &rest[..end];
                if why.is_some() && !cleansed {
                    tainted.insert(name.to_string());
                } else {
                    tainted.remove(name);
                }
            }
        } else if cleansed {
            // `x.sort_unstable();` — receiver is cleansed in place.
            for v in tainted.clone() {
                if code.contains(&format!("{v}.sort")) {
                    tainted.remove(&v);
                }
            }
        }
        // `for x in tainted_or_source { … }` taints the loop variable.
        if (trimmed.starts_with("for ") || trimmed.starts_with("while let "))
            && why.is_some()
            && !cleansed
        {
            if let Some(rest) = trimmed.strip_prefix("for ") {
                if let Some(in_pos) = rest.find(" in ") {
                    for tok in rest[..in_pos]
                        .split(|c: char| !c.is_alphanumeric() && c != '_')
                        .filter(|t| !t.is_empty() && *t != "mut")
                    {
                        tainted.insert(tok.to_string());
                    }
                }
            }
        }
        // Return taint: explicit `return expr;` or the body's tail line.
        if why.is_some() && !cleansed {
            let is_return = !crate::scan::find_words(code, "return").is_empty();
            let is_tail = i >= b1.saturating_sub(1) && !trimmed.starts_with("let ");
            if is_return || is_tail {
                out.tainted_return = true;
            }
        }
    }
    out
}

/// True if `var` appears as a whole word in `code`.
fn has_word(code: &str, var: &str) -> bool {
    !crate::scan::find_words(code, var).is_empty()
}

/// Best-effort text of the arguments of the call to `name` on this line
/// (from `name(` to the matching close paren, or end of line).
fn call_args(code: &str, name: &str) -> String {
    let pat = format!("{name}(");
    let Some(pos) = code.find(&pat) else {
        return String::new();
    };
    let start = pos + pat.len();
    let mut level = 1i32;
    for (k, c) in code[start..].char_indices() {
        match c {
            '(' => level += 1,
            ')' => {
                level -= 1;
                if level == 0 {
                    return code[start..start + k].to_string();
                }
            }
            _ => {}
        }
    }
    code[start..].to_string()
}
