//! Source preprocessing: a lexer-lite pass that separates code from comments
//! and string/char literals, tracks brace depth, and marks `#[cfg(test)]`
//! regions, so the rules operate on *code* text only and never fire on
//! examples inside doc comments or string payloads.
//!
//! This is deliberately not a full Rust parser (`syn` would drag a heavy
//! dependency into the one crate that must always build): it is a precise
//! character-level scanner for the token classes the rules care about.

/// One preprocessed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Original text (for diagnostics).
    pub raw: String,
    /// Code with comments removed and string/char literal *contents* blanked
    /// to spaces (delimiters kept, so expression shape survives).
    pub code: String,
    /// Concatenated comment text on this line (pragmas, `SAFETY:` markers).
    pub comment: String,
    /// Brace depth at the start of the line.
    pub depth: u32,
    /// True if the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A preprocessed source file.
#[derive(Debug, Clone)]
pub struct Source {
    /// The lines, 0-indexed (diagnostics add 1).
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl Source {
    /// Preprocess a source text.
    pub fn parse(text: &str) -> Source {
        let mut lines: Vec<Line> = Vec::new();
        let mut mode = Mode::Code;
        let mut depth: u32 = 0;
        // Stack of depths at which a `#[cfg(test)]` item's block opened.
        let mut test_depths: Vec<u32> = Vec::new();
        // A `#[cfg(test)]` attribute was seen; the next opened block is test.
        let mut pending_test = false;

        for raw in text.split('\n') {
            let depth_at_start = depth;
            let in_test_at_start = !test_depths.is_empty();
            let mut code = String::with_capacity(raw.len());
            let mut comment = String::new();
            let chars: Vec<char> = raw.chars().collect();
            let mut i = 0usize;
            // Line comments never span lines.
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            while i < chars.len() {
                let c = chars[i];
                let next = chars.get(i + 1).copied();
                match mode {
                    Mode::Code => match c {
                        '/' if next == Some('/') => {
                            mode = Mode::LineComment;
                            comment.push_str(&raw[byte_at(raw, i)..]);
                            break;
                        }
                        '/' if next == Some('*') => {
                            mode = Mode::BlockComment(1);
                            code.push(' ');
                            code.push(' ');
                            i += 2;
                            continue;
                        }
                        '"' => {
                            mode = Mode::Str;
                            code.push('"');
                        }
                        'r' | 'b' if is_raw_string_start(&chars, i) => {
                            let hashes = count_hashes(&chars, i);
                            mode = Mode::RawStr(hashes);
                            // Skip prefix + hashes + opening quote.
                            let mut skip = 1 + hashes as usize;
                            if c == 'b' && chars.get(i + 1) == Some(&'r') {
                                skip += 1;
                            }
                            for _ in 0..=skip.min(chars.len() - i - 1) {
                                code.push(' ');
                            }
                            i += skip; // the loop's i += 1 consumes the quote
                        }
                        '\'' => {
                            // Char literal vs lifetime: a literal closes with
                            // a quote shortly after; a lifetime does not.
                            if is_char_literal(&chars, i) {
                                mode = Mode::Char;
                                code.push('\'');
                            } else {
                                code.push('\'');
                            }
                        }
                        '{' => {
                            depth += 1;
                            if pending_test {
                                test_depths.push(depth);
                                pending_test = false;
                            }
                            code.push(c);
                        }
                        '}' => {
                            if test_depths.last() == Some(&depth) {
                                test_depths.pop();
                            }
                            depth = depth.saturating_sub(1);
                            code.push(c);
                        }
                        _ => code.push(c),
                    },
                    Mode::LineComment => unreachable!("handled above"),
                    Mode::BlockComment(n) => {
                        if c == '*' && next == Some('/') {
                            mode = if n == 1 {
                                Mode::Code
                            } else {
                                Mode::BlockComment(n - 1)
                            };
                            comment.push_str(" */");
                            code.push(' ');
                            code.push(' ');
                            i += 2;
                            continue;
                        } else if c == '/' && next == Some('*') {
                            mode = Mode::BlockComment(n + 1);
                            code.push(' ');
                            code.push(' ');
                            i += 2;
                            continue;
                        }
                        comment.push(c);
                        code.push(' ');
                    }
                    Mode::Str => match c {
                        '\\' => {
                            code.push(' ');
                            code.push(' ');
                            i += 2;
                            continue;
                        }
                        '"' => {
                            mode = Mode::Code;
                            code.push('"');
                        }
                        _ => code.push(' '),
                    },
                    Mode::RawStr(hashes) => {
                        if c == '"' && closes_raw(&chars, i, hashes) {
                            mode = Mode::Code;
                            for _ in 0..=hashes as usize {
                                code.push(' ');
                            }
                            i += hashes as usize;
                        } else {
                            code.push(' ');
                        }
                    }
                    Mode::Char => match c {
                        '\\' => {
                            code.push(' ');
                            code.push(' ');
                            i += 2;
                            continue;
                        }
                        '\'' => {
                            mode = Mode::Code;
                            code.push('\'');
                        }
                        _ => code.push(' '),
                    },
                }
                i += 1;
            }
            // Unterminated string modes do not survive a newline in valid
            // code unless the string itself spans lines — keep mode as-is
            // (multi-line strings stay blanked).
            if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
                pending_test = true;
            }
            lines.push(Line {
                raw: raw.to_string(),
                code,
                comment,
                depth: depth_at_start,
                in_test: in_test_at_start || !test_depths.is_empty() || pending_test,
            });
        }
        Source { lines }
    }
}

fn byte_at(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

/// `r"`, `r#"`, `br"`, `br#"` … — but not plain identifiers ending in r/b.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // The r/b must not be part of a longer identifier.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    if chars[i] == 'b' {
        if chars.get(j) != Some(&'r') {
            return false;
        }
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], i: usize) -> u32 {
    let mut j = i + 1;
    if chars[i] == 'b' {
        j += 1;
    }
    let mut n = 0;
    while chars.get(j) == Some(&'#') {
        n += 1;
        j += 1;
    }
    n
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguish `'a'` / `'\n'` (char literal) from `'a` (lifetime): a literal
/// has a closing quote within a short window; `'` followed by `\` is always
/// a literal.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// True if `code[pos..]` starts a standalone word match of `word` (previous
/// and following chars are not identifier chars).
pub fn word_at(code: &str, pos: usize, word: &str) -> bool {
    if !code[pos..].starts_with(word) {
        return false;
    }
    let before_ok = pos == 0
        || code[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
    let after = code[pos + word.len()..].chars().next();
    let after_ok = after.is_none_or(|c| !c.is_alphanumeric() && c != '_');
    before_ok && after_ok
}

/// All standalone-word occurrences of `word` in `code`.
pub fn find_words(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(rel) = code[start..].find(word) {
        let pos = start + rel;
        if word_at(code, pos, word) {
            out.push(pos);
        }
        start = pos + word.len();
    }
    out
}

/// The identifier ending immediately before byte `pos` in `code` (for
/// receiver extraction: `self.by_doc.keys()` with pos at `.keys` → `by_doc`).
pub fn ident_before(code: &str, pos: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    if pos == 0 {
        return None;
    }
    let mut start = pos;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_alphanumeric() || c == '_' {
            start -= 1;
        } else {
            break;
        }
    }
    if start == pos {
        return None;
    }
    // Reject numeric literals.
    if (bytes[start] as char).is_ascii_digit() {
        return None;
    }
    Some(&code[start..pos])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_blanked() {
        let src = Source::parse(
            "let x = \"HashMap::new()\"; // thread_rng in comment\nlet y = 1; /* unwrap() */ let z = 2;",
        );
        assert!(!src.lines[0].code.contains("HashMap"));
        assert!(!src.lines[0].code.contains("thread_rng"));
        assert!(src.lines[0].comment.contains("thread_rng"));
        assert!(!src.lines[1].code.contains("unwrap"));
        assert!(src.lines[1].code.contains("let z = 2;"));
    }

    #[test]
    fn raw_strings_blanked() {
        let src = Source::parse("let q = r#\"a \"quoted\" unwrap()\"#; let w = 3;");
        assert!(!src.lines[0].code.contains("unwrap"));
        assert!(src.lines[0].code.contains("let w = 3;"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = Source::parse("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(src.lines[0].code.contains("&'a str"));
        assert!(!src.lines[0].code.contains("'x'") || src.lines[0].code.contains("' '"));
    }

    #[test]
    fn cfg_test_region_tracked() {
        let src = Source::parse(
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n",
        );
        assert!(!src.lines[0].in_test);
        assert!(src.lines[3].in_test);
        assert!(!src.lines[5].in_test, "region must close");
    }

    #[test]
    fn depth_tracked() {
        let src = Source::parse("fn f() {\n    if x {\n        y();\n    }\n}\n");
        assert_eq!(src.lines[0].depth, 0);
        assert_eq!(src.lines[2].depth, 2);
        assert_eq!(src.lines[4].depth, 1);
    }

    #[test]
    fn word_helpers() {
        assert!(word_at("unsafe {", 0, "unsafe"));
        assert!(!word_at("unsafe_code", 0, "unsafe"));
        assert_eq!(
            find_words("a unsafe b unsafe_code unsafe", "unsafe").len(),
            2
        );
        assert_eq!(ident_before("self.by_doc.keys", 11), Some("by_doc"));
        assert_eq!(ident_before(".keys", 0), None);
    }

    #[test]
    fn multiline_string_stays_blanked() {
        let src = Source::parse("let s = \"line one\nunwrap() still string\";\nlet t = 1;");
        assert!(!src.lines[1].code.contains("unwrap"));
        assert!(src.lines[2].code.contains("let t = 1;"));
    }
}
