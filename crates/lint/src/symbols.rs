//! Workspace symbol table and call graph.
//!
//! Built on the same dependency-free line scanner the rules use (no `syn`),
//! so the resolution is **best-effort by design** and documented here:
//!
//! * Function definitions are recognized from `fn name` headers; the body is
//!   the brace-depth-delimited region that follows. Methods pick up their
//!   `Self` type from the enclosing `impl`/`trait` block.
//! * Direct calls (`name(…)`) resolve to workspace free functions of that
//!   name; `Type::name(…)` resolves exactly; `module::name(…)` resolves by
//!   function name among free functions.
//! * Method calls (`.name(…)`) resolve exactly for `self.name(…)` inside the
//!   defining impl. Otherwise they resolve by *name* when the workspace has
//!   at most [`MAX_METHOD_CANDIDATES`] methods of that name and the name is
//!   not in the [`COMMON_METHODS`] blocklist (container vocabulary shared
//!   with std would mis-resolve). Multiple candidates yield edges to every
//!   candidate — an over-approximation, which is the conservative direction
//!   for reachability-style passes.
//! * Macros (`name!(…)`) are never call sites; calls through fn-typed
//!   parameters surface as [`Callee::Callback`]; everything else that fails
//!   the above is [`Callee::Unresolved`] and counted in [`GraphStats`].

use std::collections::BTreeMap;

use crate::rules::FileKind;
use crate::scan::{ident_before, Source};

/// Maximum same-named method candidates a `.name(…)` call may fan out to;
/// beyond this the name is treated as too common and left unresolved.
pub const MAX_METHOD_CANDIDATES: usize = 3;

/// Method names that collide with std container/trait vocabulary; calls to
/// these never resolve by bare name (a `self.` receiver still resolves).
pub const COMMON_METHODS: &[&str] = &[
    "fmt",
    "clone",
    "default",
    "drop",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "from",
    "into",
    "to_string",
    "as_ref",
    "as_str",
    "deref",
    "next",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "contains",
    "iter",
    "keys",
    "values",
    "extend",
    "clear",
    "new",
    "build",
    "run",
];

/// Free-function names from the std prelude / common imports that look like
/// workspace calls but never are.
pub const PRELUDE_FREE: &[&str] = &[
    "drop",
    "catch_unwind",
    "size_of",
    "min",
    "max",
    "take",
    "replace",
    "swap",
    "from_utf8",
    "identity",
    "black_box",
];

/// One scanned file: path label, preprocessed source, classification.
#[derive(Debug)]
pub struct FileEntry {
    /// Path label (`/`-separated, as passed to the engine).
    pub path: String,
    /// Preprocessed source.
    pub src: Source,
    /// Lib / bin / test classification.
    pub kind: FileKind,
}

/// One function (or method) definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index into [`SymbolTable::files`].
    pub file: usize,
    /// `Self` type when defined in an `impl`/`trait` block.
    pub self_ty: Option<String>,
    /// Bare function name.
    pub name: String,
    /// 0-based header line.
    pub header_line: usize,
    /// Inclusive 0-based body line range (header line through closing brace).
    pub body: (usize, usize),
    /// Parameter `(name, type-text)` pairs, `self` receivers excluded.
    pub params: Vec<(String, String)>,
    /// True when the definition sits in test code (file or `#[cfg(test)]`).
    pub in_test: bool,
    /// True when a `// woc-lint: hot-path` pragma marks this fn as a
    /// serving-hot-path root for the panic-reachability pass.
    pub hot_path_pragma: bool,
}

impl FnDef {
    /// `Type::name` for methods, `name` for free functions.
    pub fn qual_name(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// How a call site resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// Candidate definition ids — one for an exact hit, several when a
    /// method name matched more than one definition (conservative fan-out).
    Resolved(Vec<usize>),
    /// A call through an fn-typed parameter of the enclosing function (the
    /// callee body is unknowable — opaque callback).
    Callback(String),
    /// Not resolvable inside the workspace (std, vendored, too-common name).
    Unresolved(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Calling function (index into [`SymbolTable::fns`]).
    pub caller: usize,
    /// 0-based line of the call.
    pub line: usize,
    /// Callee name as written.
    pub name: String,
    /// Resolution outcome.
    pub callee: Callee,
    /// True for `.name(…)` receiver calls.
    pub is_method: bool,
}

/// Aggregate resolution statistics (the EXPERIMENTS coverage numbers).
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    /// Files scanned.
    pub files: usize,
    /// Function definitions found.
    pub functions: usize,
    /// Call sites recorded (macros excluded).
    pub call_sites: usize,
    /// Call sites with at least one workspace candidate.
    pub resolved: usize,
    /// Resolved sites with more than one candidate.
    pub ambiguous: usize,
    /// Calls through fn-typed parameters.
    pub callbacks: usize,
    /// Caller→callee edges (candidate fan-out counted).
    pub edges: usize,
}

/// The workspace symbol table: files, function definitions, call sites, and
/// a per-function call index.
#[derive(Debug)]
pub struct SymbolTable {
    /// Scanned files.
    pub files: Vec<FileEntry>,
    /// Function definitions, in (file, line) order.
    pub fns: Vec<FnDef>,
    /// All call sites.
    pub calls: Vec<CallSite>,
    /// Call-site indices grouped by caller.
    pub calls_of: Vec<Vec<usize>>,
    /// Resolution statistics.
    pub stats: GraphStats,
}

/// Parser context: what kind of block the cursor is inside.
#[derive(Debug, Clone)]
enum Ctx {
    ImplOrTrait(String),
    Fn(usize),
    Other,
}

impl SymbolTable {
    /// Build the table over `(path, text)` pairs.
    pub fn build(inputs: &[(String, String)]) -> SymbolTable {
        let files: Vec<FileEntry> = inputs
            .iter()
            .map(|(path, text)| FileEntry {
                path: path.replace('\\', "/"),
                src: Source::parse(text),
                kind: crate::classify(path),
            })
            .collect();
        let mut fns: Vec<FnDef> = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            collect_defs(fi, file, &mut fns);
        }
        // Name indexes for resolution.
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_ty: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            match &f.self_ty {
                None => free_by_name.entry(&f.name).or_default().push(i),
                Some(t) => {
                    methods_by_name.entry(&f.name).or_default().push(i);
                    methods_by_ty
                        .entry((t.as_str(), f.name.as_str()))
                        .or_default()
                        .push(i);
                }
            }
        }
        let mut calls: Vec<CallSite> = Vec::new();
        let mut stats = GraphStats {
            files: files.len(),
            functions: fns.len(),
            ..GraphStats::default()
        };
        for (ci, f) in fns.iter().enumerate() {
            let file = &files[f.file];
            for line_no in f.body.0..=f.body.1.min(file.src.lines.len().saturating_sub(1)) {
                collect_calls_on_line(
                    ci,
                    f,
                    line_no,
                    &file.src.lines[line_no].code,
                    &free_by_name,
                    &methods_by_name,
                    &methods_by_ty,
                    &mut calls,
                );
            }
        }
        let mut calls_of: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (i, c) in calls.iter().enumerate() {
            calls_of[c.caller].push(i);
            stats.call_sites += 1;
            match &c.callee {
                Callee::Resolved(cands) => {
                    stats.resolved += 1;
                    stats.edges += cands.len();
                    if cands.len() > 1 {
                        stats.ambiguous += 1;
                    }
                }
                Callee::Callback(_) => stats.callbacks += 1,
                Callee::Unresolved(_) => {}
            }
        }
        SymbolTable {
            files,
            fns,
            calls,
            calls_of,
            stats,
        }
    }

    /// Look up a definition by `Type::name` / `name` qualified name.
    pub fn fn_by_qual_name(&self, qual: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.qual_name() == qual)
    }

    /// Resolved candidate callee ids of `fn_id`, ambiguity fanned out.
    pub fn callees_of(&self, fn_id: usize) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for &ci in &self.calls_of[fn_id] {
            if let Callee::Resolved(cands) = &self.calls[ci].callee {
                out.extend(cands.iter().copied());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Render the call graph for `--dump-callgraph` (deterministic order).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for f in &self.fns {
            out.push_str(&format!(
                "fn {} @ {}:{}\n",
                f.qual_name(),
                self.files[f.file].path,
                f.header_line + 1
            ));
        }
        for c in &self.calls {
            let from = self.fns[c.caller].qual_name();
            match &c.callee {
                Callee::Resolved(cands) => {
                    for &t in cands {
                        out.push_str(&format!(
                            "call {from} -> {} [{}]\n",
                            self.fns[t].qual_name(),
                            if cands.len() > 1 {
                                "ambiguous"
                            } else {
                                "exact"
                            }
                        ));
                    }
                }
                Callee::Callback(n) => out.push_str(&format!("call {from} -> <callback {n}>\n")),
                Callee::Unresolved(_) => {}
            }
        }
        let s = &self.stats;
        out.push_str(&format!(
            "stats files={} functions={} call_sites={} resolved={} ambiguous={} callbacks={} edges={}\n",
            s.files, s.functions, s.call_sites, s.resolved, s.ambiguous, s.callbacks, s.edges
        ));
        out
    }
}

/// Scan one file for `impl`/`trait`/`fn` items and record definitions.
fn collect_defs(file_idx: usize, file: &FileEntry, fns: &mut Vec<FnDef>) {
    let lines = &file.src.lines;
    // (depth inside the block, ctx) — popped when depth drops back.
    let mut stack: Vec<(u32, Ctx)> = Vec::new();
    // A header seen but its `{` not yet: (ctx, header text, header line).
    let mut pending: Option<(Ctx, String, usize)> = None;
    let mut depth: u32 = 0;

    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let trimmed = code.trim_start();
        // Recognize a new item header when not already waiting for a brace.
        if pending.is_none() {
            if let Some(name) = fn_header_name(trimmed) {
                let hot = (i.saturating_sub(3)..=i)
                    .any(|j| lines[j].comment.contains("woc-lint: hot-path"));
                let self_ty = stack.iter().rev().find_map(|(_, c)| match c {
                    Ctx::ImplOrTrait(t) => Some(t.clone()),
                    _ => None,
                });
                fns.push(FnDef {
                    file: file_idx,
                    self_ty,
                    name,
                    header_line: i,
                    body: (i, i),
                    params: Vec::new(),
                    in_test: line.in_test || file.kind == FileKind::Test,
                    hot_path_pragma: hot,
                });
                pending = Some((Ctx::Fn(fns.len() - 1), trimmed.to_string(), i));
            } else if let Some(ty) = impl_or_trait_type(trimmed) {
                pending = Some((Ctx::ImplOrTrait(ty), trimmed.to_string(), i));
            }
        } else if let Some((_, header, _)) = pending.as_mut() {
            // Multi-line header: accumulate until `{` or `;` (cap applied by
            // the brace walk below; headers are short in practice).
            if header.len() < 2048 {
                header.push(' ');
                header.push_str(trimmed);
            }
        }
        // Walk braces; attach the pending ctx at its opening brace.
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    match pending.take() {
                        Some((ctx, header, hline)) => {
                            if let Ctx::Fn(id) = &ctx {
                                fns[*id].params = parse_params(&header);
                                fns[*id].header_line = hline;
                            }
                            stack.push((depth, ctx));
                        }
                        None => stack.push((depth, Ctx::Other)),
                    }
                }
                '}' => {
                    if let Some((d, ctx)) = stack.last() {
                        if *d == depth {
                            if let Ctx::Fn(id) = ctx {
                                fns[*id].body.1 = i;
                            }
                            stack.pop();
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' if pending.is_some() => {
                    // Bodiless declaration (trait fn signature): drop it.
                    if let Some((Ctx::Fn(id), _, _)) = pending.take() {
                        if id + 1 == fns.len() {
                            fns.pop();
                        }
                    }
                }
                _ => {}
            }
        }
        // Keep body end current for functions still open at EOF.
        for (_, ctx) in &stack {
            if let Ctx::Fn(id) = ctx {
                fns[*id].body.1 = i;
            }
        }
    }
}

/// `fn name` on an item header line (not a call, not `fn` in a type).
fn fn_header_name(trimmed: &str) -> Option<String> {
    let mut rest = trimmed;
    for kw in [
        "pub(crate) ",
        "pub(super) ",
        "pub ",
        "const ",
        "async ",
        "unsafe ",
        "extern \"C\" ",
    ] {
        if let Some(r) = rest.strip_prefix(kw) {
            rest = r;
        }
    }
    let rest = rest.strip_prefix("fn ")?;
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    Some(rest[..end].to_string())
}

/// The `Self` type of an `impl`/`trait` header: `impl Foo`, `impl<T> Foo<T>`,
/// `impl Trait for Foo`, `pub trait Bar`.
fn impl_or_trait_type(trimmed: &str) -> Option<String> {
    let mut rest = trimmed;
    for kw in ["pub(crate) ", "pub ", "unsafe "] {
        if let Some(r) = rest.strip_prefix(kw) {
            rest = r;
        }
    }
    if let Some(r) = rest.strip_prefix("trait ") {
        let end = r
            .find(|c: char| !c.is_alphanumeric() && c != '_')
            .unwrap_or(r.len());
        return (end > 0).then(|| r[..end].to_string());
    }
    let mut r = rest.strip_prefix("impl")?;
    // Skip generic parameters `<…>` (balanced).
    if let Some(stripped) = r.strip_prefix('<') {
        let mut level = 1usize;
        let mut idx = 0usize;
        for (k, c) in stripped.char_indices() {
            match c {
                '<' => level += 1,
                '>' => {
                    level -= 1;
                    if level == 0 {
                        idx = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        r = &stripped[idx..];
    }
    let r = r.trim_start();
    // `Trait for Type` → the type after `for `; else the first path.
    let subject = match r.find(" for ") {
        Some(p) => &r[p + 5..],
        None => r,
    };
    let subject = subject.trim_start();
    // Last segment of the path, stopping at generics/brace/where.
    let end = subject
        .find(|c: char| !c.is_alphanumeric() && c != '_' && c != ':')
        .unwrap_or(subject.len());
    let path = &subject[..end];
    let seg = path.rsplit("::").next().unwrap_or(path);
    (!seg.is_empty()).then(|| seg.to_string())
}

/// Parse `(name, type)` pairs out of an fn header's parameter list.
fn parse_params(header: &str) -> Vec<(String, String)> {
    let Some(open) = header.find('(') else {
        return Vec::new();
    };
    let bytes: Vec<char> = header[open + 1..].chars().collect();
    let mut level = 1i32;
    let mut angle = 0i32;
    let mut cur = String::new();
    let mut parts: Vec<String> = Vec::new();
    for c in bytes {
        match c {
            '(' | '[' => level += 1,
            ')' | ']' => {
                level -= 1;
                if level == 0 {
                    break;
                }
            }
            '<' => angle += 1,
            '>' => angle -= 1,
            ',' if level == 1 && angle <= 0 => {
                parts.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    let mut out = Vec::new();
    for p in parts {
        let p = p.trim();
        if p.is_empty() || p.ends_with("self") || p == "self" {
            continue;
        }
        let Some(colon) = p.find(':') else { continue };
        let name = p[..colon].trim().trim_start_matches("mut ").trim();
        let ty = p[colon + 1..].trim();
        if name.chars().all(|c| c.is_alphanumeric() || c == '_') && !name.is_empty() {
            out.push((name.to_string(), ty.to_string()));
        }
    }
    out
}

/// Rust keywords that precede `(` without being calls.
const CALL_KEYWORDS: &[&str] = &[
    "if", "for", "while", "match", "return", "fn", "loop", "in", "as", "where", "impl", "move",
    "mut", "ref", "let", "else", "await",
];

#[allow(clippy::too_many_arguments)]
fn collect_calls_on_line(
    caller: usize,
    f: &FnDef,
    line_no: usize,
    code: &str,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
    methods_by_ty: &BTreeMap<(&str, &str), Vec<usize>>,
    calls: &mut Vec<CallSite>,
) {
    for (pos, c) in code.char_indices() {
        if c != '(' {
            continue;
        }
        let Some(name) = ident_before(code, pos) else {
            continue; // macro `!(`, tuple, grouping — not a call
        };
        let start = pos - name.len();
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // Skip the definition's own header parenthesis.
        let before = &code[..start];
        if before.trim_end().ends_with("fn") {
            continue;
        }
        let (is_method, qualifier) = if before.ends_with('.') {
            (true, None)
        } else if before.ends_with("::") {
            let q = ident_before(before, before.len() - 2).map(|s| s.to_string());
            (false, q)
        } else {
            (false, None)
        };
        let callee = resolve(
            f,
            name,
            is_method,
            qualifier.as_deref(),
            before,
            free_by_name,
            methods_by_name,
            methods_by_ty,
        );
        let Some(callee) = callee else { continue };
        calls.push(CallSite {
            caller,
            line: line_no,
            name: name.to_string(),
            callee,
            is_method,
        });
    }
}

/// Resolution policy (see module docs). `None` = not a call worth recording
/// (uppercase constructors, prelude noise filtered separately).
#[allow(clippy::too_many_arguments)]
fn resolve(
    f: &FnDef,
    name: &str,
    is_method: bool,
    qualifier: Option<&str>,
    before: &str,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
    methods_by_ty: &BTreeMap<(&str, &str), Vec<usize>>,
) -> Option<Callee> {
    if is_method {
        // Exact: `self.name(…)` inside the defining impl.
        let recv_is_self = before.trim_end_matches('.').ends_with("self");
        if recv_is_self {
            if let Some(ty) = &f.self_ty {
                if let Some(ids) = methods_by_ty.get(&(ty.as_str(), name)) {
                    return Some(Callee::Resolved(ids.clone()));
                }
            }
        }
        if COMMON_METHODS.contains(&name) {
            return Some(Callee::Unresolved(name.to_string()));
        }
        return match methods_by_name.get(name) {
            Some(ids) if ids.len() <= MAX_METHOD_CANDIDATES => Some(Callee::Resolved(ids.clone())),
            _ => Some(Callee::Unresolved(name.to_string())),
        };
    }
    if let Some(q) = qualifier {
        let type_like = q.chars().next().is_some_and(|c| c.is_uppercase());
        if q == "Self" {
            if let Some(ty) = &f.self_ty {
                if let Some(ids) = methods_by_ty.get(&(ty.as_str(), name)) {
                    return Some(Callee::Resolved(ids.clone()));
                }
            }
            return Some(Callee::Unresolved(name.to_string()));
        }
        if type_like {
            return match methods_by_ty.get(&(q, name)) {
                Some(ids) => Some(Callee::Resolved(ids.clone())),
                None => Some(Callee::Unresolved(format!("{q}::{name}"))),
            };
        }
        // Module-qualified free call: resolve by function name.
        return match free_by_name.get(name) {
            Some(ids) => Some(Callee::Resolved(ids.clone())),
            None => Some(Callee::Unresolved(format!("{q}::{name}"))),
        };
    }
    // Bare identifier call.
    if name.chars().next().is_some_and(|c| c.is_uppercase()) {
        return None; // tuple-struct / enum-variant constructor
    }
    if let Some(ids) = free_by_name.get(name) {
        return Some(Callee::Resolved(ids.clone()));
    }
    if PRELUDE_FREE.contains(&name) {
        return Some(Callee::Unresolved(name.to_string()));
    }
    // Call through an fn-typed parameter is an opaque callback; so is a
    // bare lowercase ident we cannot place (loop variables over callback
    // collections land here too — conservative).
    let param_fn_typed = f
        .params
        .iter()
        .any(|(n, ty)| n == name && (ty.contains("Fn") || ty.contains("fn(")));
    if param_fn_typed {
        return Some(Callee::Callback(name.to_string()));
    }
    Some(Callee::Callback(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> SymbolTable {
        SymbolTable::build(&[("crates/demo/src/lib.rs".to_string(), src.to_string())])
    }

    #[test]
    fn free_fn_and_direct_call() {
        let t = table("fn a() { b(); }\nfn b() {}\n");
        assert_eq!(t.fns.len(), 2);
        let a = t.fn_by_qual_name("a").expect("a defined");
        let b = t.fn_by_qual_name("b").expect("b defined");
        assert_eq!(t.callees_of(a), vec![b]);
    }

    #[test]
    fn impl_methods_and_self_calls() {
        let t = table(
            "pub struct S;\nimpl S {\n    pub fn outer(&self) { self.inner(); }\n    fn inner(&self) {}\n}\n",
        );
        let outer = t.fn_by_qual_name("S::outer").expect("method");
        let inner = t.fn_by_qual_name("S::inner").expect("method");
        assert_eq!(t.callees_of(outer), vec![inner]);
    }

    #[test]
    fn trait_for_impl_type() {
        assert_eq!(
            impl_or_trait_type("impl fmt::Debug for PublishHooks {"),
            Some("PublishHooks".to_string())
        );
        assert_eq!(
            impl_or_trait_type("impl<V> ShardedCache<V> {"),
            Some("ShardedCache".to_string())
        );
    }

    #[test]
    fn common_method_names_stay_unresolved() {
        let t = table(
            "pub struct A;\nimpl A { pub fn get(&self) {} }\nfn user(v: Vec<u32>) { v.get(0); }\n",
        );
        let user = t.fn_by_qual_name("user").expect("fn");
        assert!(t.callees_of(user).is_empty(), "`get` is blocklisted");
    }

    #[test]
    fn params_parsed() {
        let t = table("fn f(a: u32, cb: impl FnOnce(u64), v: Vec<(u8, u8)>) {}\n");
        let f = &t.fns[t.fn_by_qual_name("f").expect("fn")];
        let names: Vec<&str> = f.params.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "cb", "v"]);
    }
}
