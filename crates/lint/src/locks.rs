//! Interprocedural lock-order analysis.
//!
//! Records `Mutex`/`RwLock` guard acquisition sites per function (let-bound
//! guards scoped by brace depth with explicit `drop(…)` tracked; `for`-header
//! guards live for the loop body; bare expression guards live to the end of
//! the statement), propagates acquired-lock sets along the call graph, and
//! reports:
//!
//! * **`lock-order-cycle`** — a cycle in the "lock A held while lock B
//!   acquired" order graph, the classic deadlock shape. Edges come from
//!   direct nesting and from calls made while a guard is live into functions
//!   that (transitively) acquire.
//! * **`lock-across-io`** — a guard held across a call into an I/O-touching
//!   or long-running function, or across an opaque callback (fn-typed
//!   parameter): the canonical way to stall every other thread on the lock.
//!
//! Lock identity is the receiver path: `self.snapshot` inside `impl
//! ConceptServer` becomes `ConceptServer.snapshot`; a local variable guard
//! becomes `fn-name::var`, which cannot be matched across functions — a
//! documented soundness gap of the no-type-information scanner (locks reached
//! through collections or locals are tracked locally, not globally).

use std::collections::{BTreeMap, BTreeSet};

use crate::interproc::{mk_finding, Ctx};
use crate::symbols::{Callee, FnDef};

/// Acquisition suffixes (parking_lot / std – argument-free, which is what
/// distinguishes them from `io::Write::write(buf)`).
const ACQUIRE: &[&str] = &[".lock()", ".read()", ".write()"];

/// Body markers that make a function I/O-touching.
const IO_MARKERS: &[&str] = &[
    "std::fs",
    "File::",
    "read_to_string",
    "read_dir",
    "create_dir",
    "std::io",
    "io::stdout",
    "io::stderr",
    "Command::",
    "TcpStream",
    "UdpSocket",
    "sleep(",
    "println!",
    "eprintln!",
    "write_all",
];

/// Own-body line count past which a function counts as long-running.
const LONG_BODY_LINES: usize = 80;

/// One live guard.
#[derive(Debug, Clone)]
struct Guard {
    lock: String,
    /// The guard dies when a line's depth drops below this.
    min_depth: u32,
    binding: Option<String>,
    /// `Some(line)` = statement-temporary, dead after that line.
    last_line: Option<usize>,
}

/// A lock-order edge: `from` held while `to` acquired, with an exemplar site.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock already held.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// File index of the exemplar site.
    pub file: usize,
    /// 0-based line of the exemplar site.
    pub line: usize,
    /// Human description (`direct` or `via call to f`).
    pub via: String,
}

/// Per-function lock facts.
#[derive(Debug, Default)]
struct FnLocks {
    /// Locks acquired anywhere in the body (own, not transitive).
    own: BTreeSet<String>,
    /// `(held-set, call-site index)` for resolved calls made under guards.
    calls_held: Vec<(Vec<String>, usize)>,
    /// Direct nesting edges inside this function.
    edges: Vec<LockEdge>,
    /// Opaque-callback calls under guards: (held, line, callee name).
    callback_held: Vec<(Vec<String>, usize, String)>,
    io: bool,
    long: bool,
}

/// Run the pass; findings are appended per file through `ctx`.
pub fn run(ctx: &mut Ctx<'_>) {
    let table = ctx.table;
    let mut facts: Vec<FnLocks> = Vec::with_capacity(table.fns.len());
    for (fi, f) in table.fns.iter().enumerate() {
        facts.push(scan_fn(ctx, fi, f));
    }

    // Transitive acquires + io/long propagation to a fixpoint.
    let mut trans: Vec<BTreeSet<String>> = facts.iter().map(|f| f.own.clone()).collect();
    let mut io: Vec<bool> = facts.iter().map(|f| f.io).collect();
    let mut long: Vec<bool> = facts.iter().map(|f| f.long).collect();
    loop {
        let mut changed = false;
        for fi in 0..table.fns.len() {
            for callee in table.callees_of(fi) {
                let add: Vec<String> = trans[callee]
                    .iter()
                    .filter(|l| !trans[fi].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    trans[fi].extend(add);
                    changed = true;
                }
                if io[callee] && !io[fi] {
                    io[fi] = true;
                    changed = true;
                }
                if long[callee] && !long[fi] {
                    long[fi] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Global edge set: direct edges + held-across-call edges.
    let mut edges: Vec<LockEdge> = Vec::new();
    for (fi, fl) in facts.iter().enumerate() {
        edges.extend(fl.edges.iter().cloned());
        for (held, call_idx) in &fl.calls_held {
            let call = &table.calls[*call_idx];
            if let Callee::Resolved(cands) = &call.callee {
                for &t in cands {
                    for h in held {
                        for m in &trans[t] {
                            if h != m {
                                edges.push(LockEdge {
                                    from: h.clone(),
                                    to: m.clone(),
                                    file: table.fns[fi].file,
                                    line: call.line,
                                    via: format!("via call to {}", table.fns[t].qual_name()),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    report_cycles(ctx, &edges);
    report_across(ctx, &facts, &io, &long);
}

/// Cycle detection over the lock-order graph; one finding per distinct cycle.
fn report_cycles(ctx: &mut Ctx<'_>, edges: &[LockEdge]) {
    // Adjacency with one exemplar edge per (from, to).
    let mut adj: BTreeMap<&str, BTreeMap<&str, &LockEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().entry(&e.to).or_insert(e);
    }
    let nodes: Vec<&str> = adj
        .iter()
        .flat_map(|(k, vs)| std::iter::once(*k).chain(vs.keys().copied()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    // For each edge a→b, a cycle exists iff b reaches a. Report each cycle
    // once, keyed by its sorted lock set.
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    for a in &nodes {
        let Some(outs) = adj.get(a) else { continue };
        for (b, edge) in outs {
            if let Some(path) = shortest_path(&adj, b, a) {
                // Cycle: a→b, then path b→…→a.
                let mut locks: Vec<String> = vec![a.to_string()];
                locks.extend(path.iter().map(|s| s.to_string()));
                let mut key = locks.clone();
                key.sort();
                key.dedup();
                if !seen.insert(key) {
                    continue;
                }
                let mut desc = format!("`{a}` -> `{b}` ({})", edge.via);
                let mut prev = *b;
                for step in path.iter().skip(1) {
                    if let Some(e) = adj.get(prev).and_then(|m| m.get(step)) {
                        desc.push_str(&format!(" -> `{step}` ({})", e.via));
                    }
                    prev = step;
                }
                let file = ctx.table.files[edge.file].path.clone();
                ctx.push(
                    edge.file,
                    mk_finding(
                        "lock-order-cycle",
                        edge.line,
                        &ctx.table.files[edge.file].src,
                        format!(
                            "lock-order cycle (potential deadlock): {desc}; every thread must \
                             acquire these locks in one documented total order"
                        ),
                        format!("{file}:{}", edge.line + 1),
                    ),
                );
            }
        }
    }
}

/// BFS over the lock graph; returns the node path from `start` to `goal`
/// inclusive of both when reachable.
fn shortest_path<'a>(
    adj: &BTreeMap<&'a str, BTreeMap<&'a str, &LockEdge>>,
    start: &'a str,
    goal: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<&str> = std::collections::VecDeque::new();
    queue.push_back(start);
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    visited.insert(start);
    while let Some(n) = queue.pop_front() {
        if n == goal {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(p) = prev.get(cur) {
                path.push(*p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        if let Some(outs) = adj.get(n) {
            for next in outs.keys() {
                if visited.insert(next) {
                    prev.insert(next, n);
                    queue.push_back(next);
                }
            }
        }
    }
    None
}

/// `lock-across-io` findings: guards held across io/long calls + callbacks.
fn report_across(ctx: &mut Ctx<'_>, facts: &[FnLocks], io: &[bool], long: &[bool]) {
    for (fi, fl) in facts.iter().enumerate() {
        let file = ctx.table.fns[fi].file;
        for (held, call_idx) in &fl.calls_held {
            let call = &ctx.table.calls[*call_idx];
            let Callee::Resolved(cands) = &call.callee else {
                continue;
            };
            for &t in cands {
                if io[t] || long[t] {
                    let what = if io[t] {
                        "I/O-touching"
                    } else {
                        "long-running"
                    };
                    ctx.push(
                        file,
                        mk_finding(
                            "lock-across-io",
                            call.line,
                            &ctx.table.files[file].src,
                            format!(
                                "guard(s) [{}] held across call into {what} `{}`; every waiter \
                                 on the lock stalls for the call's duration — drop the guard \
                                 first or move the call out",
                                held.join(", "),
                                ctx.table.fns[t].qual_name()
                            ),
                            ctx.table.fns[fi].qual_name(),
                        ),
                    );
                    break;
                }
            }
        }
        for (held, line, name) in &fl.callback_held {
            ctx.push(
                file,
                mk_finding(
                    "lock-across-io",
                    *line,
                    &ctx.table.files[file].src,
                    format!(
                        "guard(s) [{}] held across opaque callback `{name}(…)`; the callee can \
                         acquire arbitrary locks, making the lock order unanalyzable — document \
                         the total order or invoke the callback after dropping the guard",
                        held.join(", ")
                    ),
                    ctx.table.fns[fi].qual_name(),
                ),
            );
        }
    }
}

/// Scan one function body for guards, nesting edges, and calls-under-guard.
fn scan_fn(ctx: &Ctx<'_>, fi: usize, f: &FnDef) -> FnLocks {
    let mut fl = FnLocks::default();
    if f.in_test {
        return fl;
    }
    let file = &ctx.table.files[f.file];
    let lines = &file.src.lines;
    let (b0, b1) = f.body;
    fl.long = b1.saturating_sub(b0) > LONG_BODY_LINES;
    let mut live: Vec<Guard> = Vec::new();
    // Call sites of this fn grouped by line for held-set recording.
    let mut calls_by_line: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &ci in &ctx.table.calls_of[fi] {
        calls_by_line
            .entry(ctx.table.calls[ci].line)
            .or_default()
            .push(ci);
    }

    for i in b0..=b1.min(lines.len().saturating_sub(1)) {
        let line = &lines[i];
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        live.retain(|g| line.depth >= g.min_depth && g.last_line.is_none_or(|l| i <= l));
        // Explicit drops end guards early.
        for g in live.clone() {
            if let Some(b) = &g.binding {
                if code.contains(&format!("drop({b})")) {
                    live.retain(|x| x.binding.as_deref() != Some(b.as_str()));
                }
            }
        }
        if IO_MARKERS.iter().any(|m| code.contains(m)) {
            fl.io = true;
        }

        // Acquisitions on this line.
        let mut acquired_here: Vec<String> = Vec::new();
        for acq in ACQUIRE {
            let mut start = 0;
            while let Some(rel) = code[start..].find(acq) {
                let pos = start + rel;
                start = pos + acq.len();
                let Some(lock) = lock_id(code, pos, f) else {
                    continue;
                };
                fl.own.insert(lock.clone());
                let held: Vec<String> = live
                    .iter()
                    .map(|g| g.lock.clone())
                    .filter(|l| *l != lock)
                    .collect();
                for h in &held {
                    fl.edges.push(LockEdge {
                        from: h.clone(),
                        to: lock.clone(),
                        file: f.file,
                        line: i,
                        via: format!("direct, in {}", f.qual_name()),
                    });
                }
                acquired_here.push(lock);
            }
        }
        // Bind the acquisitions to their guard lifetimes.
        if !acquired_here.is_empty() {
            let trimmed = code.trim_start();
            let let_binding = trimmed.strip_prefix("let ").map(|rest| {
                let rest = rest.strip_prefix("mut ").unwrap_or(rest);
                let end = rest
                    .find(|c: char| !c.is_alphanumeric() && c != '_')
                    .unwrap_or(rest.len());
                rest[..end].to_string()
            });
            let is_for = trimmed.starts_with("for ") || trimmed.starts_with("while ");
            for lock in acquired_here {
                if let Some(b) = &let_binding {
                    if !b.is_empty() {
                        live.push(Guard {
                            lock,
                            min_depth: line.depth,
                            binding: Some(b.clone()),
                            last_line: None,
                        });
                        continue;
                    }
                }
                if is_for {
                    // The temporary in a loop header lives for the body.
                    live.push(Guard {
                        lock,
                        min_depth: line.depth + 1,
                        binding: None,
                        last_line: None,
                    });
                } else {
                    // Statement-temporary: dead past the statement's end.
                    let mut end = i;
                    while end < b1 && end - i < 3 && !lines[end].code.trim_end().ends_with(';') {
                        end += 1;
                    }
                    live.push(Guard {
                        lock,
                        min_depth: line.depth,
                        binding: None,
                        last_line: Some(end),
                    });
                }
            }
        }

        // Calls on this line, with the currently-held set.
        if live.is_empty() {
            continue;
        }
        let held: Vec<String> = live.iter().map(|g| g.lock.clone()).collect();
        if let Some(cis) = calls_by_line.get(&i) {
            for &ci in cis {
                match &ctx.table.calls[ci].callee {
                    Callee::Resolved(_) => fl.calls_held.push((held.clone(), ci)),
                    Callee::Callback(name) => {
                        fl.callback_held.push((held.clone(), i, name.clone()))
                    }
                    Callee::Unresolved(_) => {}
                }
            }
        }
    }
    fl
}

/// Lock identity from the receiver path ending at `pos` (the `.lock()` dot).
/// `self.a.b` → `SelfTy.a`; `Type::X` statics keep their path; a bare local
/// gets a function-scoped identity. Index/call segments are skipped
/// (`self.slots[r].read()` → `SelfTy.slots`).
fn lock_id(code: &str, pos: usize, f: &FnDef) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = pos; // byte index just past the receiver
    let mut segs: Vec<String> = Vec::new();
    loop {
        // Skip a trailing `)` / `]` group (call or index) before the ident.
        while i > 0 && (bytes[i - 1] == b')' || bytes[i - 1] == b']') {
            let close = bytes[i - 1];
            let open = if close == b')' { b'(' } else { b'[' };
            let mut level = 0i32;
            let mut j = i;
            while j > 0 {
                j -= 1;
                if bytes[j] == close {
                    level += 1;
                } else if bytes[j] == open {
                    level -= 1;
                    if level == 0 {
                        break;
                    }
                }
            }
            if j == 0 && level != 0 {
                return None; // group opens on an earlier line — give up
            }
            i = j;
        }
        let Some(seg) = crate::scan::ident_before(code, i) else {
            break;
        };
        segs.push(seg.to_string());
        i -= seg.len();
        if i >= 2 && &code[i - 2..i] == "::" {
            i -= 2;
            continue;
        }
        if i >= 1 && bytes[i - 1] == b'.' {
            i -= 1;
            continue;
        }
        break;
    }
    segs.reverse();
    if segs.is_empty() {
        return None;
    }
    if segs[0] == "self" {
        let ty = f.self_ty.as_deref().unwrap_or("Self");
        // First field after `self` names the lock; deeper segments are
        // projections through it.
        let field = segs.get(1).cloned().unwrap_or_default();
        if field.is_empty() {
            return None;
        }
        return Some(format!("{ty}.{field}"));
    }
    if segs[0].chars().next().is_some_and(|c| c.is_uppercase()) {
        return Some(segs.join("."));
    }
    // Function-local receiver: identity cannot cross functions.
    Some(format!("{}::{}", f.qual_name(), segs[0]))
}
