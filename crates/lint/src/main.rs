//! `woc-lint` — lint the workspace.
//!
//! ```text
//! woc-lint [PATHS…] [--self-check] [--json] [--quiet-warn] [--show-allowed] [--rules]
//!          [--interproc] [--dump-callgraph] [--sarif <path>]
//!          [--baseline <path>] [--write-baseline <path>] [--changed <rev>]
//! ```
//!
//! With no paths, lints the workspace roots (`crates/`, `src/`, `tests/`,
//! `examples/`), skipping `vendor/` (external stand-ins), `target/`, and
//! lint's own `fixtures/` mini-workspace (deliberately seeded violations).
//!
//! `--interproc` runs the interprocedural passes (lock-order, nondet-taint,
//! panic-reachability) instead of the line rules. `--changed <rev>` restricts
//! *reporting* (not analysis) to files changed since a git revision.
//! `--baseline <path>` gates only on findings not in the committed baseline;
//! `--write-baseline <path>` regenerates it. Exit is non-zero iff unallowed
//! deny findings remain (or, with a baseline, iff the run has new or stale
//! entries against it).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use woc_lint::baseline::Baseline;
use woc_lint::{analyze, lint_source, tally, Finding, Severity, Tally, INTERPROC_RULES, RULES};

fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "vendor" || name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn json_escape(s: &str) -> String {
    woc_lint::sarif::json_escape(s)
}

/// Repo-relative paths changed since `rev`, per `git diff --name-only`.
/// `None` when git cannot answer (not a repo, bad rev) — reported, and the
/// filter is then treated as "everything changed" by the caller.
fn changed_files(rev: &str) -> Option<Vec<String>> {
    let out = std::process::Command::new("git")
        .args(["diff", "--name-only", rev])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    Some(
        text.lines()
            .map(|l| l.trim().replace('\\', "/"))
            .filter(|l| !l.is_empty())
            .collect(),
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .filter(|v| !v.starts_with("--"))
            .cloned()
    };
    const VALUE_FLAGS: &[&str] = &["--sarif", "--baseline", "--write-baseline", "--changed"];
    let (self_check, json, quiet_warn, show_allowed) = (
        flag("--self-check"),
        flag("--json"),
        flag("--quiet-warn"),
        flag("--show-allowed"),
    );
    let interproc = flag("--interproc");
    let dump_callgraph = flag("--dump-callgraph");
    let sarif_path = opt("--sarif");
    let baseline_path = opt("--baseline");
    let write_baseline_path = opt("--write-baseline");
    let changed_rev = opt("--changed");
    if flag("--rules") {
        println!("{:<18} {:<5} {:<8} summary", "rule", "sev", "scope");
        for r in RULES.iter().chain(INTERPROC_RULES.iter()) {
            println!(
                "{:<18} {:<5} {:<8} {}",
                r.name,
                match r.severity {
                    Severity::Deny => "deny",
                    Severity::Warn => "warn",
                },
                format!("{:?}", r.scope).to_lowercase(),
                r.summary
            );
        }
        return ExitCode::SUCCESS;
    }

    let roots: Vec<PathBuf> = if self_check {
        vec![PathBuf::from("crates/lint")]
    } else {
        let named: Vec<PathBuf> = args
            .iter()
            .enumerate()
            .filter(|(i, a)| {
                let is_value = *i > 0 && VALUE_FLAGS.contains(&args[i - 1].as_str());
                !a.starts_with("--") && !is_value
            })
            .map(|(_, a)| PathBuf::from(a))
            .collect();
        if named.is_empty() {
            ["crates", "src", "tests", "examples"]
                .iter()
                .map(PathBuf::from)
                .filter(|p| p.exists())
                .collect()
        } else {
            named
        }
    };

    let mut files: Vec<PathBuf> = Vec::new();
    for root in &roots {
        if root.is_file() {
            files.push(root.clone());
        } else {
            collect_rs_files(root, &mut files);
        }
    }

    let mut inputs: Vec<(String, String)> = Vec::new();
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            eprintln!("woc-lint: unreadable file {}", file.display());
            continue;
        };
        let label = file.to_string_lossy().replace('\\', "/");
        inputs.push((label, text));
    }

    // Run the line rules or the interprocedural engine.
    let mut all: Vec<(String, Vec<Finding>)> = Vec::new();
    if interproc || dump_callgraph {
        let analysis = analyze(&inputs);
        if dump_callgraph {
            print!("{}", analysis.table.dump());
            return ExitCode::SUCCESS;
        }
        let s = analysis.stats();
        eprintln!(
            "woc-lint: call graph — {} functions, {} call sites ({} resolved, {} ambiguous, \
             {} callbacks), {} edges",
            s.functions, s.call_sites, s.resolved, s.ambiguous, s.callbacks, s.edges
        );
        for (fi, (label, _)) in inputs.iter().enumerate() {
            let findings = analysis.findings[fi].clone();
            if !findings.is_empty() {
                all.push((label.clone(), findings));
            }
        }
    } else {
        for (label, text) in &inputs {
            let findings = lint_source(label, text);
            if !findings.is_empty() {
                all.push((label.clone(), findings));
            }
        }
    }

    // `--changed <rev>`: restrict reporting (not the analysis above) to
    // findings in files changed since the revision.
    let mut changed_filter_active = false;
    if let Some(rev) = &changed_rev {
        match changed_files(rev) {
            Some(changed) => {
                changed_filter_active = true;
                all.retain(|(path, _)| changed.iter().any(|c| path == c || path.ends_with(c)));
            }
            None => eprintln!("woc-lint: --changed {rev}: git diff failed; reporting all findings"),
        }
    }

    // Baseline handling (gating counts are unallowed deny findings).
    if let Some(path) = &write_baseline_path {
        let rendered = Baseline::render(&all);
        if let Err(e) = std::fs::write(path, rendered) {
            eprintln!("woc-lint: cannot write baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("woc-lint: baseline written to {path}");
    }
    let mut baseline: Option<Baseline> = None;
    if let Some(path) = &baseline_path {
        match std::fs::read_to_string(path) {
            Ok(text) => baseline = Some(Baseline::parse(&text)),
            Err(e) => {
                eprintln!("woc-lint: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let diff = baseline.as_ref().map(|b| b.diff(&all));

    let mut total = Tally::default();
    let mut json_items: Vec<String> = Vec::new();
    for (file, findings) in &all {
        let t = tally(findings);
        total.deny += t.deny;
        total.warn += t.warn;
        total.allowed += t.allowed;
        for f in findings {
            if f.allowed && !show_allowed {
                continue;
            }
            if f.severity == Severity::Warn && quiet_warn && !f.allowed {
                continue;
            }
            let sev = match (f.allowed, f.severity) {
                (true, _) => "allowed",
                (false, Severity::Deny) => "deny",
                (false, Severity::Warn) => "warn",
            };
            if json {
                json_items.push(format!(
                    "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"symbol\":\"{}\",\"message\":\"{}\",\"excerpt\":\"{}\"}}",
                    json_escape(file),
                    f.line,
                    f.rule,
                    sev,
                    json_escape(&f.symbol),
                    json_escape(&f.message),
                    json_escape(&f.excerpt)
                ));
            } else {
                let sym = if f.symbol.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", f.symbol)
                };
                println!("{sev}[{}]: {}:{}{sym}", f.rule, file, f.line);
                println!("    {}", f.message);
                println!("    > {}", f.excerpt);
            }
        }
    }

    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, woc_lint::sarif::render(&all)) {
            eprintln!("woc-lint: cannot write SARIF {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("woc-lint: SARIF written to {path}");
    }

    if json {
        println!(
            "{{\"findings\":[{}],\"deny\":{},\"warn\":{},\"allowed\":{}}}",
            json_items.join(","),
            total.deny,
            total.warn,
            total.allowed
        );
    } else {
        println!(
            "woc-lint: {} files scanned — {} deny, {} warn, {} allowed",
            files.len(),
            total.deny,
            total.warn,
            total.allowed
        );
    }

    // Exit-code policy: with a baseline, new findings gate (stale entries
    // also gate, except under --changed where unreported files would look
    // stale); without one, any unallowed deny finding gates.
    if let Some(d) = diff {
        for (key, found, allowed) in &d.new {
            eprintln!(
                "woc-lint: NEW finding vs baseline: {} {} ({}) — {found} found, {allowed} baselined",
                key.0, key.1, key.2
            );
        }
        if !changed_filter_active {
            for (key, found, allowed) in &d.stale {
                eprintln!(
                    "woc-lint: STALE baseline entry: {} {} ({}) — {found} found, {allowed} \
                     baselined; refresh with --write-baseline",
                    key.0, key.1, key.2
                );
            }
        }
        eprintln!(
            "woc-lint: baseline — {} suppressed, {} new, {} stale",
            d.suppressed,
            d.new.len(),
            d.stale.len()
        );
        let gate = !d.new.is_empty() || (!changed_filter_active && !d.stale.is_empty());
        return if gate {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    if write_baseline_path.is_some() {
        // A write run's job is the write: the findings it recorded are the
        // new tolerated set, so they do not gate this invocation.
        return ExitCode::SUCCESS;
    }
    if total.deny > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
