//! `woc-lint` — lint the workspace.
//!
//! ```text
//! woc-lint [PATHS…] [--self-check] [--json] [--quiet-warn] [--show-allowed] [--rules]
//! ```
//!
//! With no paths, lints the workspace roots (`crates/`, `src/`, `tests/`,
//! `examples/`), skipping `vendor/` (external stand-ins) and `target/`.
//! Exits non-zero iff any unallowed deny-severity finding remains.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use woc_lint::{lint_source, tally, Finding, Severity, Tally, RULES};

fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "vendor" || name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let (self_check, json, quiet_warn, show_allowed) = (
        flag("--self-check"),
        flag("--json"),
        flag("--quiet-warn"),
        flag("--show-allowed"),
    );
    if flag("--rules") {
        println!("{:<18} {:<5} {:<8} summary", "rule", "sev", "scope");
        for r in RULES {
            println!(
                "{:<18} {:<5} {:<8} {}",
                r.name,
                match r.severity {
                    Severity::Deny => "deny",
                    Severity::Warn => "warn",
                },
                format!("{:?}", r.scope).to_lowercase(),
                r.summary
            );
        }
        return ExitCode::SUCCESS;
    }

    let roots: Vec<PathBuf> = if self_check {
        vec![PathBuf::from("crates/lint")]
    } else {
        let named: Vec<PathBuf> = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .map(PathBuf::from)
            .collect();
        if named.is_empty() {
            ["crates", "src", "tests", "examples"]
                .iter()
                .map(PathBuf::from)
                .filter(|p| p.exists())
                .collect()
        } else {
            named
        }
    };

    let mut files: Vec<PathBuf> = Vec::new();
    for root in &roots {
        if root.is_file() {
            files.push(root.clone());
        } else {
            collect_rs_files(root, &mut files);
        }
    }

    let mut all: Vec<(String, Vec<Finding>)> = Vec::new();
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            eprintln!("woc-lint: unreadable file {}", file.display());
            continue;
        };
        let label = file.to_string_lossy().replace('\\', "/");
        let findings = lint_source(&label, &text);
        if !findings.is_empty() {
            all.push((label, findings));
        }
    }

    let mut total = Tally::default();
    let mut json_items: Vec<String> = Vec::new();
    for (file, findings) in &all {
        let t = tally(findings);
        total.deny += t.deny;
        total.warn += t.warn;
        total.allowed += t.allowed;
        for f in findings {
            if f.allowed && !show_allowed {
                continue;
            }
            if f.severity == Severity::Warn && quiet_warn && !f.allowed {
                continue;
            }
            let sev = match (f.allowed, f.severity) {
                (true, _) => "allowed",
                (false, Severity::Deny) => "deny",
                (false, Severity::Warn) => "warn",
            };
            if json {
                json_items.push(format!(
                    "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"excerpt\":\"{}\"}}",
                    json_escape(file),
                    f.line,
                    f.rule,
                    sev,
                    json_escape(&f.message),
                    json_escape(&f.excerpt)
                ));
            } else {
                println!("{sev}[{}]: {}:{}", f.rule, file, f.line);
                println!("    {}", f.message);
                println!("    > {}", f.excerpt);
            }
        }
    }

    if json {
        println!(
            "{{\"findings\":[{}],\"deny\":{},\"warn\":{},\"allowed\":{}}}",
            json_items.join(","),
            total.deny,
            total.warn,
            total.allowed
        );
    } else {
        println!(
            "woc-lint: {} files scanned — {} deny, {} warn, {} allowed",
            files.len(),
            total.deny,
            total.warn,
            total.allowed
        );
    }
    if total.deny > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
