//! The interprocedural engine: shared pass context, the interprocedural rule
//! catalog, and the driver that builds the symbol table, runs every pass, and
//! applies the pragma system to the results.
//!
//! Soundness posture (inherited from the no-`syn` scanner): the call graph is
//! a best-effort over-approximation (ambiguous method names fan out, opaque
//! callbacks are reported as such), lock identity is receiver-path-based, and
//! taint tracks let-bound locals but not struct fields. Every pass documents
//! its own gaps; pragmas with justifications are the escape hatch.

use crate::rules::{Finding, RuleInfo, Scope, Severity};
use crate::scan::Source;
use crate::symbols::{GraphStats, SymbolTable};

/// Catalog of rules produced by the interprocedural passes. These share the
/// pragma namespace with the line rules (`// woc-lint: allow(lock-across-io)`
/// works the same way).
pub const INTERPROC_RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "lock-order-cycle",
        severity: Severity::Deny,
        scope: Scope::NonTest,
        summary: "cycle in the lock-order graph (lock A held while B acquired, and a path back); classic deadlock shape across functions",
    },
    RuleInfo {
        name: "lock-across-io",
        severity: Severity::Deny,
        scope: Scope::NonTest,
        summary: "Mutex/RwLock guard held across a call into an I/O-touching or long-running function, or across an opaque callback",
    },
    RuleInfo {
        name: "nondet-taint",
        severity: Severity::Deny,
        scope: Scope::NonTest,
        summary: "value tainted by a nondeterminism source (hash iteration order, RNG, wall clock) flows into a digest/canonical sink, possibly across functions",
    },
    RuleInfo {
        name: "panic-path",
        severity: Severity::Deny,
        scope: Scope::NonTest,
        summary: "unwrap/panic!/slice-index site reachable from a serving hot-path root via the call graph",
    },
];

/// Look up an interprocedural rule's catalog entry.
pub fn interproc_rule_info(name: &str) -> Option<&'static RuleInfo> {
    INTERPROC_RULES.iter().find(|r| r.name == name)
}

/// Shared pass context: the symbol table plus per-file finding sinks.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// The workspace symbol table and call graph.
    pub table: &'a SymbolTable,
    /// Findings per file (parallel to [`SymbolTable::files`]).
    pub findings: Vec<Vec<Finding>>,
}

impl Ctx<'_> {
    /// Record a finding against a file.
    pub fn push(&mut self, file: usize, finding: Finding) {
        self.findings[file].push(finding);
    }
}

/// Construct an interprocedural finding. `line` is 0-based; `symbol` names
/// the enclosing function (or an exemplar site) for baseline keying.
pub fn mk_finding(
    rule: &'static str,
    line: usize,
    src: &Source,
    message: String,
    symbol: String,
) -> Finding {
    let info = interproc_rule_info(rule).expect("interproc rule registered in catalog");
    let excerpt = src
        .lines
        .get(line)
        .map(|l| l.raw.trim().to_string())
        .unwrap_or_default();
    Finding {
        rule,
        severity: info.severity,
        line: line + 1,
        message,
        excerpt,
        allowed: false,
        symbol,
    }
}

/// The result of a full interprocedural run.
#[derive(Debug)]
pub struct Analysis {
    /// The symbol table the passes ran over (stats feed `--dump-callgraph`
    /// and the EXPERIMENTS coverage table).
    pub table: SymbolTable,
    /// Findings per file, pragma-applied and sorted, parallel to
    /// `table.files`.
    pub findings: Vec<Vec<Finding>>,
}

impl Analysis {
    /// Resolution statistics of the underlying call graph.
    pub fn stats(&self) -> GraphStats {
        self.table.stats
    }
}

/// Build the symbol table over `(path, text)` pairs and run every
/// interprocedural pass.
pub fn analyze(inputs: &[(String, String)]) -> Analysis {
    let table = SymbolTable::build(inputs);
    let mut ctx = Ctx {
        table: &table,
        findings: vec![Vec::new(); table.files.len()],
    };
    crate::locks::run(&mut ctx);
    crate::taint::run(&mut ctx);
    crate::panics::run(&mut ctx);
    let mut findings = ctx.findings;
    for (fi, file) in table.files.iter().enumerate() {
        crate::apply_pragmas(&file.src, &mut findings[fi]);
        findings[fi].sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    }
    Analysis { table, findings }
}
