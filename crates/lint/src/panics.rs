//! Panic-reachability analysis for the serving hot path.
//!
//! Roots are the serving entry points — `*Server` methods in the hot-path
//! vocabulary (`search`, `lookup`, the router scatter-gather), `serve_shard`,
//! and anything marked with a `// woc-lint: hot-path` pragma above the `fn`.
//! A BFS over the call graph marks every function reachable from a root;
//! panic sites inside reachable functions (`.unwrap()`, `panic!`, `todo!`,
//! `unimplemented!`, direct slice indexing) are reported with the shortest
//! call path from the root, because a panic there turns one bad request into
//! an aborted worker.
//!
//! `.expect("…")` is admitted (the message documents the invariant), and
//! `catch_unwind` boundaries are *not* modeled — a panic crossing one is
//! still a served-error path worth knowing about; use a pragma where the
//! catch is the design.

use std::collections::{BTreeMap, VecDeque};

use crate::interproc::{mk_finding, Ctx};

/// Method names that make a `*Server` method (or `serve_shard`) a hot-path
/// root.
const HOT_METHODS: &[&str] = &[
    "search",
    "search_parsed",
    "lookup",
    "doc_search",
    "concept_box",
    "recommend",
    "execute",
    "run_batch",
    "serve",
];

/// Panic-site tokens and their descriptions.
const PANICS: &[(&str, &str)] = &[
    (".unwrap()", "bare unwrap"),
    ("panic!(", "explicit panic"),
    ("todo!(", "todo"),
    ("unimplemented!(", "unimplemented"),
];

/// Run the pass.
pub fn run(ctx: &mut Ctx<'_>) {
    let table = ctx.table;
    // Roots.
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut reached: Vec<bool> = vec![false; table.fns.len()];
    for (fi, f) in table.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let is_server_method = f
            .self_ty
            .as_deref()
            .is_some_and(|t| t.ends_with("Server") || t.ends_with("Router"));
        let is_root = (is_server_method && HOT_METHODS.contains(&f.name.as_str()))
            || f.name == "serve_shard"
            || f.hot_path_pragma;
        if is_root {
            reached[fi] = true;
            queue.push_back(fi);
        }
    }
    while let Some(fi) = queue.pop_front() {
        for callee in table.callees_of(fi) {
            if !reached[callee] && !table.fns[callee].in_test {
                reached[callee] = true;
                parent.insert(callee, fi);
                queue.push_back(callee);
            }
        }
    }

    for (fi, f) in table.fns.iter().enumerate() {
        if !reached[fi] {
            continue;
        }
        let path = root_path(table, &parent, fi);
        let file = &table.files[f.file];
        let (b0, b1) = f.body;
        for i in b0..=b1.min(file.src.lines.len().saturating_sub(1)) {
            let line = &file.src.lines[i];
            if line.in_test {
                continue;
            }
            let code = line.code.as_str();
            for (tok, what) in PANICS {
                if code.contains(tok) {
                    ctx.push(
                        f.file,
                        mk_finding(
                            "panic-path",
                            i,
                            &file.src,
                            format!(
                                "{what} reachable from serving hot path ({path}); a panic here \
                                 aborts the request worker — handle the None/Err or document the \
                                 invariant with expect(\"invariant: …\")",
                            ),
                            f.qual_name(),
                        ),
                    );
                }
            }
            if let Some(recv) = slice_index_site(code) {
                ctx.push(
                    f.file,
                    mk_finding(
                        "panic-path",
                        i,
                        &file.src,
                        format!(
                            "direct indexing of `{recv}` reachable from serving hot path \
                             ({path}); out-of-range panics abort the request worker — prefer \
                             get() unless the bound is locally checked"
                        ),
                        f.qual_name(),
                    ),
                );
            }
        }
    }
}

/// Render the shortest root→fn call path for diagnostics.
fn root_path(
    table: &crate::symbols::SymbolTable,
    parent: &BTreeMap<usize, usize>,
    fi: usize,
) -> String {
    let mut chain = vec![fi];
    let mut cur = fi;
    while let Some(&p) = parent.get(&cur) {
        chain.push(p);
        cur = p;
        if chain.len() > 12 {
            break;
        }
    }
    chain.reverse();
    chain
        .iter()
        .map(|&i| table.fns[i].qual_name())
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// First direct slice-index receiver on the line, if any (`name[…`, not
/// attributes/types/`[]`).
fn slice_index_site(code: &str) -> Option<&str> {
    for (pos, c) in code.char_indices() {
        if c != '[' {
            continue;
        }
        let Some(recv) = crate::scan::ident_before(code, pos) else {
            continue;
        };
        if recv.is_empty() || code[pos..].starts_with("[]") {
            continue;
        }
        return Some(recv);
    }
    None
}
