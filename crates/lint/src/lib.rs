//! # woc-lint — custom static analysis for the web-of-concepts workspace
//!
//! A self-contained, dependency-free Rust source analyzer (own line scanner;
//! no `syn`, so offline/vendored builds stay intact) enforcing the project's
//! determinism, panic-hygiene, concurrency and api-hygiene conventions.
//!
//! The rules are heuristics over token shapes, not a type-checked analysis —
//! that is the right trade for a project-local linter: cheap to run on every
//! CI job, zero external deps, and every rule is suppressible in place:
//!
//! ```text
//! // woc-lint: allow(map-iter-order) — summed into a scalar, order-free
//! for v in counts.values() { total += v; }
//! ```
//!
//! A pragma on its own comment line applies to the next code line; a
//! trailing pragma applies to its own line. `woc-lint: allow-file(rule)`
//! anywhere in a file suppresses the rule file-wide (use sparingly, with a
//! justification).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod interproc;
pub mod locks;
pub mod panics;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod symbols;
pub mod taint;

pub use interproc::{analyze, Analysis, INTERPROC_RULES};
pub use rules::{rule_info, FileKind, Finding, RuleInfo, Severity, RULES};
pub use scan::Source;
pub use symbols::SymbolTable;

/// Classify a file path into [`FileKind`]. Paths use `/` separators.
pub fn classify(path: &str) -> FileKind {
    let p = path.replace('\\', "/");
    if p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.starts_with("tests/")
        || p.starts_with("examples/")
        || p.ends_with("build.rs")
    {
        FileKind::Test
    } else if p.contains("/src/bin/") || p.ends_with("/src/main.rs") || p == "src/main.rs" {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Lint one source text. `path` is used for classification, hot-path crate
/// detection, and diagnostics.
pub fn lint_source(path: &str, text: &str) -> Vec<Finding> {
    let src = Source::parse(text);
    let kind = classify(path);
    let mut findings = rules::run_all(&src, kind, path);
    apply_pragmas(&src, &mut findings);
    findings
}

/// Parse `allow(…)`-style pragma lists out of a comment.
fn pragma_rules(comment: &str, directive: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(directive) {
        let after = &rest[pos + directive.len()..];
        if let Some(close) = after.find(')') {
            for rule in after[..close].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    out.push(rule.to_string());
                }
            }
        }
        rest = &rest[pos + directive.len()..];
    }
    out
}

/// Mark findings suppressed by `woc-lint: allow(...)` pragmas.
pub(crate) fn apply_pragmas(src: &Source, findings: &mut [Finding]) {
    let mut file_allows: Vec<String> = Vec::new();
    // allowed[i] = rules allowed on line i (0-based).
    let mut line_allows: Vec<Vec<String>> = vec![Vec::new(); src.lines.len()];
    for (i, line) in src.lines.iter().enumerate() {
        if !line.comment.contains("woc-lint:") {
            continue;
        }
        file_allows.extend(pragma_rules(&line.comment, "woc-lint: allow-file("));
        let allows = pragma_rules(&line.comment, "woc-lint: allow(");
        if allows.is_empty() {
            continue;
        }
        if line.code.trim().is_empty() {
            // Comment-only pragma line: applies to the next code line.
            if let Some(target) =
                (i + 1..src.lines.len()).find(|&j| !src.lines[j].code.trim().is_empty())
            {
                line_allows[target].extend(allows);
            }
        } else {
            line_allows[i].extend(allows);
        }
    }
    for f in findings.iter_mut() {
        let allowed_here = line_allows
            .get(f.line - 1)
            .is_some_and(|a| a.iter().any(|r| r == f.rule));
        if allowed_here || file_allows.iter().any(|r| r == f.rule) {
            f.allowed = true;
        }
    }
}

/// Summary counts over a finding set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Unallowed deny findings (these gate).
    pub deny: usize,
    /// Unallowed warn findings.
    pub warn: usize,
    /// Findings suppressed by pragmas.
    pub allowed: usize,
}

/// Tally a finding set.
pub fn tally(findings: &[Finding]) -> Tally {
    let mut t = Tally::default();
    for f in findings {
        if f.allowed {
            t.allowed += 1;
        } else {
            match f.severity {
                Severity::Deny => t.deny += 1,
                Severity::Warn => t.warn += 1,
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/graph.rs"), FileKind::Lib);
        assert_eq!(classify("crates/core/tests/determinism.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/src/bin/table1.rs"), FileKind::Bin);
        assert_eq!(classify("crates/bench/benches/index.rs"), FileKind::Test);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
        assert_eq!(classify("tests/integration.rs"), FileKind::Test);
    }

    #[test]
    fn pragma_parsing() {
        assert_eq!(
            pragma_rules(
                "// woc-lint: allow(map-iter-order, panic-in-lib) — reason",
                "woc-lint: allow("
            ),
            vec!["map-iter-order".to_string(), "panic-in-lib".to_string()]
        );
        assert!(pragma_rules("// plain comment", "woc-lint: allow(").is_empty());
    }
}
