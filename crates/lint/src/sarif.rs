//! Minimal SARIF 2.1.0 emission (hand-built JSON, no dependencies).
//!
//! Emits one run with the full rule catalog (line rules + interprocedural
//! rules) and one result per unallowed finding, so CI systems and editors
//! that ingest SARIF can annotate the sources.

use crate::interproc::INTERPROC_RULES;
use crate::rules::{Finding, RuleInfo, Severity, RULES};

/// Escape a string for embedding in JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn sarif_level(sev: Severity) -> &'static str {
    match sev {
        Severity::Deny => "error",
        Severity::Warn => "warning",
    }
}

fn rule_json(r: &RuleInfo) -> String {
    format!(
        "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\"defaultConfiguration\":{{\"level\":\"{}\"}}}}",
        r.name,
        json_escape(r.summary),
        sarif_level(r.severity)
    )
}

/// Render a SARIF 2.1.0 document over `(path, findings)` pairs. Allowed
/// (pragma-suppressed) findings are omitted — SARIF consumers should see
/// what gates, matching the exit-code semantics.
pub fn render(files: &[(String, Vec<Finding>)]) -> String {
    let mut rules_json: Vec<String> = Vec::new();
    for r in RULES.iter().chain(INTERPROC_RULES.iter()) {
        rules_json.push(rule_json(r));
    }
    let mut results: Vec<String> = Vec::new();
    for (path, findings) in files {
        for f in findings {
            if f.allowed {
                continue;
            }
            results.push(format!(
                "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
                 \"region\":{{\"startLine\":{},\"snippet\":{{\"text\":\"{}\"}}}}}},\
                 \"logicalLocations\":[{{\"name\":\"{}\"}}]}}]}}",
                f.rule,
                sarif_level(f.severity),
                json_escape(&f.message),
                json_escape(path),
                f.line,
                json_escape(&f.excerpt),
                json_escape(&f.symbol)
            ));
        }
    }
    format!(
        "{{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"woc-lint\",\
         \"informationUri\":\"https://example.invalid/woc-lint\",\"rules\":[{}]}}}},\"results\":[{}]}}]}}\n",
        rules_json.join(","),
        results.join(",")
    )
}
