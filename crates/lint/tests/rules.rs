//! Fixture tests: every rule has a firing and a non-firing fixture, plus
//! pragma-suppression and false-positive guards (BTreeMap, sorted collects).
//!
//! Fixtures live in string literals; when woc-lint scans *this* file the
//! scanner blanks string contents, so the deliberate violations below never
//! leak into the workspace lint run.

use woc_lint::{lint_source, tally, Finding, Severity};

const LIB: &str = "crates/demo/src/lib.rs";
const HOT: &str = "crates/index/src/demo.rs";
const BIN: &str = "crates/demo/src/bin/tool.rs";
const TEST: &str = "crates/demo/tests/it.rs";

/// Unallowed findings for `rule`.
fn fired(findings: &[Finding], rule: &str) -> usize {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.allowed)
        .count()
}

fn allowed(findings: &[Finding], rule: &str) -> usize {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.allowed)
        .count()
}

// ---------------------------------------------------------------- map-iter-order

#[test]
fn map_iter_order_fires_on_unordered_push() {
    let src = "use std::collections::HashMap;\n\
               fn f(m: &HashMap<String, u32>) -> Vec<String> {\n\
                   let mut out = Vec::new();\n\
                   for k in m.keys() {\n\
                       out.push(k.clone());\n\
                   }\n\
                   out\n\
               }\n";
    let f = lint_source(LIB, src);
    assert_eq!(fired(&f, "map-iter-order"), 1, "{f:#?}");
    assert_eq!(
        f.iter().find(|x| x.rule == "map-iter-order").unwrap().line,
        4
    );
}

#[test]
fn map_iter_order_quiet_when_sorted() {
    let src = "use std::collections::HashMap;\n\
               fn g(m: &HashMap<String, u32>) -> Vec<String> {\n\
                   let mut out: Vec<String> = m.keys().cloned().collect();\n\
                   out.sort();\n\
                   out\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "map-iter-order"), 0);
}

#[test]
fn map_iter_order_quiet_on_btreemap() {
    let src = "use std::collections::BTreeMap;\n\
               fn h(m: &BTreeMap<String, u32>) -> Vec<String> {\n\
                   let mut out = Vec::new();\n\
                   for k in m.keys() { out.push(k.clone()); }\n\
                   out\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "map-iter-order"), 0);
}

#[test]
fn map_iter_order_quiet_on_order_insensitive_reduction() {
    let src = "use std::collections::HashMap;\n\
               fn total(m: &HashMap<String, u32>) -> u32 {\n\
                   m.values().sum()\n\
               }\n\
               fn biggest(m: &HashMap<String, u32>) -> u32 {\n\
                   m.values().copied().max().unwrap_or(0)\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "map-iter-order"), 0);
}

#[test]
fn map_iter_order_quiet_when_recollected_into_map() {
    let src = "use std::collections::HashMap;\n\
               fn inv(m: &HashMap<String, u32>) -> HashMap<u32, String> {\n\
                   let out: HashMap<u32, String> =\n\
                       m.iter().map(|(k, v)| (*v, k.clone())).collect();\n\
                   out\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "map-iter-order"), 0);
}

#[test]
fn map_iter_order_quiet_when_sorted_above_loop() {
    // The index digest pattern: field `terms` is a HashMap, the local `terms`
    // is a Vec sorted right before the loop.
    let src = "pub struct S { terms: HashMap<String, u32> }\n\
               impl S {\n\
                   fn digest(&self) -> Vec<String> {\n\
                       let mut terms: Vec<&String> = self.terms.keys().collect();\n\
                       terms.sort_unstable();\n\
                       let mut out = Vec::new();\n\
                       for t in terms { out.push(t.clone()); }\n\
                       out\n\
                   }\n\
               }\n";
    let f = lint_source(LIB, src);
    assert_eq!(fired(&f, "map-iter-order"), 0, "{f:#?}");
}

#[test]
fn map_iter_order_skips_tests() {
    let src = "use std::collections::HashMap;\n\
               fn mk() -> HashMap<String, u32> { HashMap::new() }\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   #[test]\n\
                   fn t() {\n\
                       let m = super::mk();\n\
                       for k in m.keys() { println(k); }\n\
                   }\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "map-iter-order"), 0);
}

// ---------------------------------------------------------------- nondet-source

#[test]
fn nondet_source_fires_on_thread_rng_and_wall_clock() {
    let src = "fn f() -> u64 {\n\
                   let mut r = thread_rng();\n\
                   let t = SystemTime::now();\n\
                   r.gen()\n\
               }\n";
    let f = lint_source(LIB, src);
    assert_eq!(fired(&f, "nondet-source"), 2, "{f:#?}");
}

#[test]
fn nondet_source_quiet_on_seeded_rng_and_in_tests() {
    let seeded = "fn f(seed: u64) -> StdRng { StdRng::seed_from_u64(seed) }\n";
    assert_eq!(fired(&lint_source(LIB, seeded), "nondet-source"), 0);
    let in_test = "fn t() { let r = thread_rng(); }\n";
    assert_eq!(fired(&lint_source(TEST, in_test), "nondet-source"), 0);
}

// ---------------------------------------------------------------- panic-in-lib

#[test]
fn panic_in_lib_fires_on_bare_unwrap_and_panic() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n\
                   if v.is_empty() { panic!(\"empty\"); }\n\
                   *v.first().unwrap()\n\
               }\n";
    let f = lint_source(LIB, src);
    assert_eq!(fired(&f, "panic-in-lib"), 2, "{f:#?}");
}

#[test]
fn panic_in_lib_admits_expect_with_message() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n\
                   *v.first().expect(\"invariant: caller checked non-empty\")\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "panic-in-lib"), 0);
}

#[test]
fn panic_in_lib_skips_bins_tests_and_cfg_test() {
    let src = "pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n";
    assert_eq!(fired(&lint_source(BIN, src), "panic-in-lib"), 0);
    assert_eq!(fired(&lint_source(TEST, src), "panic-in-lib"), 0);
    let cfg = "pub fn ok() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn t(v: &[u32]) -> u32 { *v.first().unwrap() }\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, cfg), "panic-in-lib"), 0);
}

#[test]
fn panic_in_lib_ignores_strings_and_comments() {
    let src = "pub fn f() -> &'static str {\n\
                   // calling unwrap() here would be wrong\n\
                   \"contains .unwrap() and panic!( text\"\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "panic-in-lib"), 0);
}

// ---------------------------------------------------------------- slice-index

#[test]
fn slice_index_warns_only_in_hot_crates() {
    let src = "pub fn f(v: &[u32], i: usize) -> u32 { v[i] }\n";
    let hot = lint_source(HOT, src);
    assert_eq!(fired(&hot, "slice-index"), 1, "{hot:#?}");
    assert!(hot
        .iter()
        .all(|x| x.rule != "slice-index" || x.severity == Severity::Warn));
    assert_eq!(fired(&lint_source(LIB, src), "slice-index"), 0);
}

#[test]
fn slice_index_quiet_on_macros_attrs_and_types() {
    let src = "#[derive(Clone)]\n\
               pub struct W { buf: Vec<u8> }\n\
               pub fn f() -> Vec<u32> { vec![1, 2, 3] }\n\
               pub fn g(x: &[u8]) -> usize { x.len() }\n";
    let f = lint_source(HOT, src);
    assert_eq!(fired(&f, "slice-index"), 0, "{f:#?}");
}

// ---------------------------------------------------------------- static-mut

#[test]
fn static_mut_fires_everywhere_even_tests() {
    let src = "static mut COUNTER: u32 = 0;\n";
    assert_eq!(fired(&lint_source(LIB, src), "static-mut"), 1);
    assert_eq!(fired(&lint_source(TEST, src), "static-mut"), 1);
    let ok = "static COUNTER: AtomicU32 = AtomicU32::new(0);\n";
    assert_eq!(fired(&lint_source(LIB, ok), "static-mut"), 0);
}

// ---------------------------------------------------------------- unsafe-no-safety

#[test]
fn unsafe_without_safety_comment_fires() {
    let src = "pub fn f(p: *const u32) -> u32 {\n\
                   unsafe { *p }\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "unsafe-no-safety"), 1);
}

#[test]
fn unsafe_with_safety_comment_is_quiet() {
    let src = "pub fn f(p: *const u32) -> u32 {\n\
                   // SAFETY: p is non-null and aligned by the caller contract.\n\
                   unsafe { *p }\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "unsafe-no-safety"), 0);
}

#[test]
fn unsafe_in_identifier_is_not_a_match() {
    let src = "#![forbid(unsafe_code)]\npub fn unsafe_free() {}\n";
    assert_eq!(fired(&lint_source(LIB, src), "unsafe-no-safety"), 0);
}

// ---------------------------------------------------------------- nested-locks

#[test]
fn nested_locks_fires_on_second_acquisition() {
    let src = "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                   let g1 = a.lock();\n\
                   let g2 = b.lock();\n\
               }\n";
    let f = lint_source(LIB, src);
    assert_eq!(fired(&f, "nested-locks"), 1, "{f:#?}");
    assert_eq!(f.iter().find(|x| x.rule == "nested-locks").unwrap().line, 3);
}

#[test]
fn nested_locks_quiet_after_explicit_drop() {
    let src = "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                   let g1 = a.lock();\n\
                   drop(g1);\n\
                   let g2 = b.lock();\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "nested-locks"), 0);
}

#[test]
fn nested_locks_quiet_when_scope_closed() {
    let src = "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                   {\n\
                       let g1 = a.lock();\n\
                   }\n\
                   let g2 = b.lock();\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "nested-locks"), 0);
}

#[test]
fn nested_locks_ignores_closure_style_read() {
    // ConcurrentStore-style `.read(|s| …)` is not a guard acquisition.
    let src = "fn f(store: &ConcurrentStore, m: &Mutex<u32>) -> usize {\n\
                   let g = m.lock();\n\
                   store.read(|s| s.len())\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "nested-locks"), 0);
}

// ---------------------------------------------------------------- missing-debug

#[test]
fn missing_debug_fires_without_derive() {
    let src = "pub struct Point {\n    pub x: u32,\n}\n";
    assert_eq!(fired(&lint_source(LIB, src), "missing-debug"), 1);
}

#[test]
fn missing_debug_quiet_with_derive_or_manual_impl() {
    let derived = "#[derive(Debug, Clone)]\npub struct Point {\n    pub x: u32,\n}\n";
    assert_eq!(fired(&lint_source(LIB, derived), "missing-debug"), 0);
    let manual = "pub struct Point {\n    pub x: u32,\n}\n\
                  impl fmt::Debug for Point {\n\
                      fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result { Ok(()) }\n\
                  }\n";
    assert_eq!(fired(&lint_source(LIB, manual), "missing-debug"), 0);
}

#[test]
fn missing_debug_handles_multiline_derive() {
    let src = "#[derive(\n    Debug,\n    Clone,\n)]\npub struct Point {\n    pub x: u32,\n}\n";
    assert_eq!(fired(&lint_source(LIB, src), "missing-debug"), 0);
}

// ---------------------------------------------------------------- error-display

#[test]
fn error_display_fires_without_display_impl() {
    let src = "#[derive(Debug)]\npub enum ParseError {\n    Bad,\n}\n";
    assert_eq!(fired(&lint_source(LIB, src), "error-display"), 1);
}

#[test]
fn error_display_quiet_with_display_impl() {
    let src = "#[derive(Debug)]\npub enum ParseError {\n    Bad,\n}\n\
               impl fmt::Display for ParseError {\n\
                   fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result { Ok(()) }\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "error-display"), 0);
}

#[test]
fn error_display_only_cares_about_error_enums() {
    let src = "#[derive(Debug)]\npub enum Mode {\n    Fast,\n}\n";
    assert_eq!(fired(&lint_source(LIB, src), "error-display"), 0);
}

// ---------------------------------------------------------------- pragmas

#[test]
fn trailing_pragma_suppresses_own_line() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n\
                   *v.first().unwrap() // woc-lint: allow(panic-in-lib) — len checked by caller\n\
               }\n";
    let f = lint_source(LIB, src);
    assert_eq!(fired(&f, "panic-in-lib"), 0);
    assert_eq!(allowed(&f, "panic-in-lib"), 1);
}

#[test]
fn preceding_line_pragma_suppresses_next_code_line() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n\
                   // woc-lint: allow(panic-in-lib) — len checked by caller\n\
                   *v.first().unwrap()\n\
               }\n";
    let f = lint_source(LIB, src);
    assert_eq!(fired(&f, "panic-in-lib"), 0);
    assert_eq!(allowed(&f, "panic-in-lib"), 1);
}

#[test]
fn allow_file_pragma_suppresses_file_wide() {
    let src = "// woc-lint: allow-file(panic-in-lib) — demo fixture\n\
               pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n\
               pub fn g(v: &[u32]) -> u32 { *v.last().unwrap() }\n";
    let f = lint_source(LIB, src);
    assert_eq!(fired(&f, "panic-in-lib"), 0);
    assert_eq!(allowed(&f, "panic-in-lib"), 2);
}

#[test]
fn pragma_for_other_rule_does_not_suppress() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n\
                   *v.first().unwrap() // woc-lint: allow(map-iter-order) — wrong rule\n\
               }\n";
    let f = lint_source(LIB, src);
    assert_eq!(fired(&f, "panic-in-lib"), 1);
}

#[test]
fn pragma_line_does_not_leak_past_target() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n\
                   // woc-lint: allow(panic-in-lib) — first is checked\n\
                   let a = *v.first().unwrap();\n\
                   let b = *v.last().unwrap();\n\
                   a + b\n\
               }\n";
    let f = lint_source(LIB, src);
    assert_eq!(
        fired(&f, "panic-in-lib"),
        1,
        "second unwrap must still fire"
    );
    assert_eq!(allowed(&f, "panic-in-lib"), 1);
}

// ---------------------------------------------------------------- retry-no-backoff

#[test]
fn retry_no_backoff_fires_on_hot_retry_loop() {
    let src = "pub fn fetch_all(urls: &[String]) {\n\
                   for url in urls {\n\
                       let mut attempt = 0;\n\
                       while attempt < 5 {\n\
                           match fetch(url) {\n\
                               Ok(page) => break,\n\
                               Err(_) => attempt += 1,\n\
                           }\n\
                       }\n\
                   }\n\
               }\n";
    let f = lint_source(LIB, src);
    assert!(fired(&f, "retry-no-backoff") >= 1, "{f:#?}");
}

#[test]
fn retry_no_backoff_quiet_when_backoff_consulted() {
    let src = "pub fn fetch_with_retry(url: &str, backoff: &mut Backoff) {\n\
                   loop {\n\
                       match fetch(url) {\n\
                           Ok(page) => break,\n\
                           Err(_) => match backoff.next_delay() {\n\
                               Some(d) => clock.advance(d),\n\
                               None => break,\n\
                           },\n\
                       }\n\
                   }\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "retry-no-backoff"), 0);
}

#[test]
fn retry_no_backoff_quiet_without_retry_vocabulary() {
    let src = "pub fn drain(items: &[Item]) {\n\
                   for item in items {\n\
                       if process(item).is_err() {\n\
                           log(item);\n\
                       }\n\
                   }\n\
               }\n";
    assert_eq!(fired(&lint_source(LIB, src), "retry-no-backoff"), 0);
}

#[test]
fn retry_no_backoff_quiet_in_tests() {
    let src = "fn t() {\n\
                   let mut attempt = 0;\n\
                   while attempt < 5 {\n\
                       if fetch().is_err() { attempt += 1; }\n\
                   }\n\
               }\n";
    assert_eq!(fired(&lint_source(TEST, src), "retry-no-backoff"), 0);
}

#[test]
fn retry_no_backoff_suppressible_by_pragma() {
    let src = "pub fn f() {\n\
                   let mut retry = 0;\n\
                   // woc-lint: allow(retry-no-backoff) \u{2014} bounded by caller\n\
                   while retry < 2 {\n\
                       if fetch().is_err() { retry += 1; }\n\
                   }\n\
               }\n";
    let f = lint_source(LIB, src);
    assert_eq!(fired(&f, "retry-no-backoff"), 0, "{f:#?}");
    assert_eq!(allowed(&f, "retry-no-backoff"), 1);
}

// ---------------------------------------------------------------- tally

#[test]
fn tally_counts_severities_and_allows() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n\
                   *v.first().unwrap()\n\
               }\n\
               pub fn g(v: &[u32], i: usize) -> u32 {\n\
                   v[i] // woc-lint: allow(slice-index) — i < len by construction\n\
               }\n";
    let f = lint_source(HOT, src);
    let t = tally(&f);
    assert_eq!(t.deny, 1, "{f:#?}");
    assert_eq!(t.allowed, 1);
}
