//! Golden-output test for SARIF emission, plus structural checks.

use woc_lint::{analyze, sarif, Finding};

fn lock_io_run() -> Vec<(String, Vec<Finding>)> {
    let path = format!(
        "{}/tests/fixtures/lock_io/src/lib.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    let label = "crates/lock_io/src/lib.rs".to_string();
    let analysis = analyze(&[(label.clone(), text)]);
    vec![(label, analysis.findings.into_iter().flatten().collect())]
}

#[test]
fn sarif_matches_golden() {
    let rendered = sarif::render(&lock_io_run());
    let golden_path = format!("{}/tests/golden/lock_io.sarif", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR")))
            .expect("golden dir");
        std::fs::write(&golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file committed; regenerate with UPDATE_GOLDEN=1 when emission changes");
    assert_eq!(
        rendered, golden,
        "SARIF emission drifted from tests/golden/lock_io.sarif; if intentional, \
         regenerate with UPDATE_GOLDEN=1 cargo test -p woc-lint --test sarif"
    );
}

#[test]
fn sarif_structure_is_sound() {
    let rendered = sarif::render(&lock_io_run());
    assert!(rendered.starts_with("{\"$schema\""));
    assert!(rendered.contains("\"version\":\"2.1.0\""));
    assert!(rendered.contains("\"name\":\"woc-lint\""));
    // Every rule of both catalogs is described.
    for r in woc_lint::RULES
        .iter()
        .chain(woc_lint::INTERPROC_RULES.iter())
    {
        assert!(
            rendered.contains(&format!("\"id\":\"{}\"", r.name)),
            "rule {} missing from SARIF driver rules",
            r.name
        );
    }
    assert!(rendered.contains("\"ruleId\":\"lock-across-io\""));
    assert!(rendered.contains("\"startLine\":"));
    // Balanced braces — a cheap well-formedness proxy without a JSON parser.
    let open = rendered.matches('{').count();
    let close = rendered.matches('}').count();
    assert_eq!(open, close, "unbalanced JSON braces");
}

#[test]
fn allowed_findings_are_omitted() {
    let mut run = lock_io_run();
    for f in &mut run[0].1 {
        f.allowed = true;
    }
    let rendered = sarif::render(&run);
    assert!(
        rendered.contains("\"results\":[]"),
        "suppressed findings do not reach SARIF results: {rendered}"
    );
}
