//! Liveness proofs for the interprocedural passes: each pass fires on its
//! seeded fixture and stays silent on the corresponding clean variant, and
//! the pragma system suppresses interprocedural findings like line findings.

use woc_lint::{analyze, Finding};

/// Load one fixture mini-crate as engine input. The label is rewritten to a
/// `crates/<name>/src/lib.rs` shape so classification sees library code (the
/// on-disk fixture path contains `/tests/`, which would classify as Test and
/// silence every pass).
fn fixture(name: &str) -> Vec<(String, String)> {
    let path = format!(
        "{}/tests/fixtures/{name}/src/lib.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    vec![(format!("crates/{name}/src/lib.rs"), text)]
}

fn findings(name: &str) -> Vec<Finding> {
    let analysis = analyze(&fixture(name));
    analysis.findings.into_iter().flatten().collect()
}

fn unallowed<'a>(fs: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    fs.iter().filter(|f| f.rule == rule && !f.allowed).collect()
}

#[test]
fn lock_order_cycle_fires_on_seeded_deadlock() {
    let fs = findings("deadlock");
    let hits = unallowed(&fs, "lock-order-cycle");
    assert!(!hits.is_empty(), "AB/BA cycle must be reported: {fs:?}");
    let msg = &hits[0].message;
    assert!(
        msg.contains("Pair.a") && msg.contains("Pair.b"),
        "cycle names both locks: {msg}"
    );
}

#[test]
fn lock_order_silent_on_consistent_order() {
    let fs = findings("deadlock_clean");
    assert!(
        unallowed(&fs, "lock-order-cycle").is_empty(),
        "consistent a→b order has no cycle: {fs:?}"
    );
}

#[test]
fn lock_across_io_fires_on_held_guard() {
    let fs = findings("lock_io");
    let hits = unallowed(&fs, "lock-across-io");
    assert!(
        hits.iter().any(|f| f.message.contains("I/O-touching")),
        "guard held across fs write must fire: {fs:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("opaque callback")),
        "guard held across callback must fire: {fs:?}"
    );
}

#[test]
fn lock_across_io_silent_when_guard_dropped() {
    let fs = findings("lock_io_clean");
    assert!(
        unallowed(&fs, "lock-across-io").is_empty(),
        "dropped guard means nothing held: {fs:?}"
    );
}

#[test]
fn nondet_taint_fires_through_laundering_helper() {
    let fs = findings("taint");
    let hits = unallowed(&fs, "nondet-taint");
    assert!(
        !hits.is_empty(),
        "hash order laundered through a return value must fire: {fs:?}"
    );
    assert!(
        hits.iter().any(|f| f.symbol == "emit"),
        "the sink-side function is named: {hits:?}"
    );
}

#[test]
fn nondet_taint_silent_after_sort() {
    let fs = findings("taint_clean");
    assert!(
        unallowed(&fs, "nondet-taint").is_empty(),
        "sorted keys are canonical: {fs:?}"
    );
}

#[test]
fn panic_path_fires_only_on_reachable_sites() {
    let fs = findings("panics");
    let hits = unallowed(&fs, "panic-path");
    assert!(
        hits.iter().any(|f| f.message.contains("bare unwrap")),
        "unwrap reachable from pragma root must fire: {fs:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("direct indexing")),
        "slice index reachable from pragma root must fire: {fs:?}"
    );
    assert!(
        hits.iter().all(|f| f.symbol != "cold"),
        "unreachable panic is not a hot-path finding: {hits:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("handle -> helper")),
        "message carries the call path: {hits:?}"
    );
}

#[test]
fn panic_path_silent_on_clean_variant() {
    let fs = findings("panics_clean");
    assert!(
        unallowed(&fs, "panic-path").is_empty(),
        "unwrap_or/expect with invariant message are admitted: {fs:?}"
    );
}

#[test]
fn pragma_suppresses_interproc_finding() {
    let bare = "\
use std::sync::Mutex;
pub struct S { d: Mutex<u64> }
impl S {
    pub fn f(&self, cb: impl Fn()) {
        let g = self.d.lock();
        cb();
        drop(g);
    }
}
";
    let pragmad = bare.replace(
        "        cb();",
        "        // woc-lint: allow(lock-across-io) — callback is O(1), documented order\n        cb();",
    );
    let run = |src: &str| -> Vec<Finding> {
        analyze(&[("crates/demo/src/lib.rs".to_string(), src.to_string())])
            .findings
            .into_iter()
            .flatten()
            .collect()
    };
    let bare_fs = run(bare);
    assert!(
        bare_fs
            .iter()
            .any(|f| f.rule == "lock-across-io" && !f.allowed),
        "callback under guard fires without a pragma: {bare_fs:?}"
    );
    let pragmad_fs = run(&pragmad);
    assert!(
        pragmad_fs
            .iter()
            .filter(|f| f.rule == "lock-across-io")
            .all(|f| f.allowed),
        "pragma above the call line suppresses the finding: {pragmad_fs:?}"
    );
}

#[test]
fn fixture_workspace_analyzed_together_keeps_findings_per_file() {
    // Two fixtures in one run: findings stay attached to their own files.
    let mut inputs = fixture("taint");
    inputs.extend(fixture("panics_clean"));
    let analysis = analyze(&inputs);
    assert_eq!(analysis.findings.len(), 2);
    assert!(
        analysis.findings[0]
            .iter()
            .any(|f| f.rule == "nondet-taint"),
        "taint file keeps its finding"
    );
    assert!(
        analysis.findings[1].is_empty(),
        "clean file stays clean: {:?}",
        analysis.findings[1]
    );
}
