//! Call-graph builder tests on the fixture workspace: direct calls, method
//! resolution, ambiguity fan-out, and unresolved-call conservatism.

use woc_lint::symbols::{Callee, SymbolTable};

fn table() -> SymbolTable {
    let path = format!(
        "{}/tests/fixtures/callgraph/src/lib.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    SymbolTable::build(&[("crates/callgraph/src/lib.rs".to_string(), text)])
}

fn id(t: &SymbolTable, qual: &str) -> usize {
    t.fn_by_qual_name(qual)
        .unwrap_or_else(|| panic!("{qual} defined in fixture"))
}

#[test]
fn direct_free_call_resolves() {
    let t = table();
    let callees = t.callees_of(id(&t, "free_helper"));
    assert_eq!(callees, vec![id(&t, "shared_name_target")]);
}

#[test]
fn self_and_type_qualified_methods_resolve_exactly() {
    let t = table();
    let callees = t.callees_of(id(&t, "Alpha::entry"));
    assert!(callees.contains(&id(&t, "Alpha::step")), "self.step()");
    assert!(callees.contains(&id(&t, "free_helper")), "bare free call");
    assert!(callees.contains(&id(&t, "Beta::kick")), "Beta::kick(…)");
    assert!(
        !callees.contains(&id(&t, "Beta::settle")),
        "no spurious edges: {callees:?}"
    );
}

#[test]
fn ambiguous_method_fans_out_to_all_candidates() {
    let t = table();
    let callees = t.callees_of(id(&t, "ambiguous_caller"));
    assert!(
        callees.contains(&id(&t, "Alpha::settle")) && callees.contains(&id(&t, "Beta::settle")),
        "`.settle()` fans out to both impls (conservative): {callees:?}"
    );
    let ambiguous = t
        .calls
        .iter()
        .filter(|c| c.name == "settle")
        .all(|c| matches!(&c.callee, Callee::Resolved(v) if v.len() == 2));
    assert!(ambiguous, "both settle sites carry both candidates");
}

#[test]
fn common_method_names_stay_unresolved() {
    let t = table();
    assert!(
        t.callees_of(id(&t, "uses_common")).is_empty(),
        "`.len()` is blocklisted container vocabulary"
    );
    assert!(
        t.calls
            .iter()
            .any(|c| c.name == "len" && matches!(c.callee, Callee::Unresolved(_))),
        "the unresolved site is still recorded for stats"
    );
}

#[test]
fn stats_count_resolution_outcomes() {
    let t = table();
    let s = t.stats;
    assert_eq!(s.files, 1);
    assert!(s.functions >= 8, "fixture defines its functions: {s:?}");
    assert!(s.resolved >= 6, "most sites resolve: {s:?}");
    assert!(
        s.ambiguous >= 2,
        "the two settle sites are ambiguous: {s:?}"
    );
    assert!(s.edges > s.resolved, "ambiguity fans out edges: {s:?}");
}

#[test]
fn dump_is_deterministic_and_lists_edges() {
    let t = table();
    let d1 = t.dump();
    let d2 = table().dump();
    assert_eq!(d1, d2, "dump output is stable");
    assert!(d1.contains("call Alpha::entry -> Alpha::step [exact]"));
    assert!(d1.contains("ambiguous"));
    assert!(d1.contains("stats files=1"));
}
