//! Baseline diffing semantics: a new finding fails, a baselined finding
//! passes, and a fixed finding prompts a refresh (stale entry).

use woc_lint::analyze;
use woc_lint::baseline::Baseline;
use woc_lint::Finding;

fn fixture_run(name: &str) -> Vec<(String, Vec<Finding>)> {
    let path = format!(
        "{}/tests/fixtures/{name}/src/lib.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    let label = format!("crates/{name}/src/lib.rs");
    let analysis = analyze(&[(label.clone(), text)]);
    vec![(label, analysis.findings.into_iter().flatten().collect())]
}

#[test]
fn roundtrip_is_clean() {
    let run = fixture_run("taint");
    let baseline = Baseline::parse(&Baseline::render(&run));
    assert!(!baseline.is_empty(), "seeded fixture produces entries");
    let diff = baseline.diff(&run);
    assert!(
        diff.is_clean(),
        "run against its own baseline is clean: {diff:?}"
    );
    assert!(
        diff.suppressed > 0,
        "the findings were suppressed, not lost"
    );
}

#[test]
fn new_finding_fails_against_empty_baseline() {
    let run = fixture_run("taint");
    let diff = Baseline::default().diff(&run);
    assert!(!diff.is_clean());
    assert!(
        !diff.new.is_empty(),
        "unbaselined findings are new: {diff:?}"
    );
    assert!(diff.stale.is_empty());
}

#[test]
fn new_finding_fails_against_smaller_baseline() {
    // Baseline knows only the taint fixture; a combined run adds lock_io
    // findings, which must surface as new.
    let taint = fixture_run("taint");
    let baseline = Baseline::parse(&Baseline::render(&taint));
    let mut combined = taint;
    combined.extend(fixture_run("lock_io"));
    let diff = baseline.diff(&combined);
    assert!(
        diff.new.iter().any(|(k, _, _)| k.0 == "lock-across-io"),
        "the added findings are new: {diff:?}"
    );
    assert!(diff.stale.is_empty(), "nothing was fixed: {diff:?}");
}

#[test]
fn fixed_finding_prompts_refresh() {
    // Baseline covers the seeded fixture; the clean variant (same file label)
    // no longer produces the findings — stale entries must gate.
    let seeded = fixture_run("taint");
    let baseline = Baseline::parse(&Baseline::render(&seeded));
    let clean: Vec<(String, Vec<Finding>)> = vec![(seeded[0].0.clone(), Vec::new())];
    let diff = baseline.diff(&clean);
    assert!(!diff.is_clean());
    assert!(diff.new.is_empty());
    assert!(
        !diff.stale.is_empty(),
        "fixed findings leave stale entries: {diff:?}"
    );
}

#[test]
fn comments_and_blank_lines_ignored() {
    let b = Baseline::parse("# comment\n\nnondet-taint\tcrates/x/src/lib.rs\temit\t1\nbadline\n");
    assert_eq!(b.len(), 1);
}

#[test]
fn warn_findings_never_enter_the_baseline() {
    // slice-index is warn severity in the line rules; craft a run with only
    // a warn finding and check the rendered baseline has no entries.
    let src = "pub fn f(v: &[u32]) -> u32 { v[0] }\n";
    let findings = woc_lint::lint_source("crates/serve/src/demo.rs", src);
    assert!(
        findings.iter().any(|f| f.rule == "slice-index"),
        "warn finding produced: {findings:?}"
    );
    let run = vec![("crates/serve/src/demo.rs".to_string(), findings)];
    let rendered = Baseline::render(&run);
    assert!(
        Baseline::parse(&rendered).is_empty(),
        "warn findings are not baselined: {rendered}"
    );
}
