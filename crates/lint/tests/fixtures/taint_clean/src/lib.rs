//! Clean variant: the laundered keys are sorted before reaching the sink —
//! sorted data has a canonical order regardless of how it was produced.

use std::collections::HashMap;

fn launder(m: &HashMap<String, u32>) -> Vec<String> {
    let ks: Vec<String> = m.keys().cloned().collect();
    ks
}

pub fn emit(m: &HashMap<String, u32>) -> Vec<u8> {
    let mut ks = launder(m);
    ks.sort();
    canonical_bytes(&ks)
}

fn canonical_bytes(parts: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in parts {
        out.extend_from_slice(p.as_bytes());
        out.push(0);
    }
    out
}
