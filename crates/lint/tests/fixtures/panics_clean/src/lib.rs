//! Clean variant: the hot path handles the None and documents its one
//! invariant with expect; the panicking function is unreachable from the
//! root, so the pass stays silent.

// woc-lint: hot-path
pub fn handle(v: &[u32]) -> u32 {
    helper(v)
}

fn helper(v: &[u32]) -> u32 {
    let first = v.first().copied().unwrap_or(0);
    let second = v.get(1).copied().expect("invariant: callers pass len >= 2");
    first + second
}

pub fn cold() {
    panic!("never served");
}
