//! Seeded nondeterminism taint: `launder` surfaces hash-iteration order
//! through its return value, and `emit` feeds that into the canonical sink —
//! the flow a per-line rule cannot see.

use std::collections::HashMap;

fn launder(m: &HashMap<String, u32>) -> Vec<String> {
    let ks: Vec<String> = m.keys().cloned().collect();
    ks
}

pub fn emit(m: &HashMap<String, u32>) -> Vec<u8> {
    let ks = launder(m);
    canonical_bytes(&ks)
}

fn canonical_bytes(parts: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in parts {
        out.extend_from_slice(p.as_bytes());
        out.push(0);
    }
    out
}
