//! Call-graph builder fixture: free-function calls, exact `self.`/`Type::`
//! method resolution, by-name ambiguity fan-out, and the common-method
//! blocklist keeping container vocabulary unresolved.

pub struct Alpha;
pub struct Beta;

impl Alpha {
    pub fn entry(&self) {
        self.step();
        free_helper();
        Beta::kick(&Beta);
    }

    fn step(&self) {
        shared_name_target();
    }

    pub fn settle(&self) {}
}

impl Beta {
    pub fn kick(&self) {
        self.settle_like();
    }

    fn settle_like(&self) {}

    pub fn settle(&self) {}
}

pub fn free_helper() {
    shared_name_target();
}

fn shared_name_target() {}

pub fn uses_common(v: &[u32]) -> usize {
    v.len()
}

pub fn ambiguous_caller(a: &Alpha, b: &Beta) {
    a.settle();
    b.settle();
}
