//! Seeded lock-across-io: `flush` holds the data lock across a filesystem
//! write, and `with_callback` holds it across an opaque callback.

use std::sync::Mutex;

pub struct Store {
    data: Mutex<Vec<u8>>,
}

impl Store {
    pub fn flush(&self) {
        let g = self.data.lock();
        write_disk(&g);
    }

    pub fn with_callback(&self, f: impl Fn(&[u8])) {
        let g = self.data.lock();
        f(&g);
    }
}

fn write_disk(b: &[u8]) {
    std::fs::write("out.bin", b).ok();
}
