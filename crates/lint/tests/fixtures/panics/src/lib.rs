//! Seeded hot-path panic: the pragma-marked root reaches `helper`'s bare
//! unwrap and slice index through the call graph. `cold` panics too but is
//! unreachable from any root, so only `helper`'s sites may be reported.

// woc-lint: hot-path
pub fn handle(v: &[u32]) -> u32 {
    helper(v)
}

fn helper(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    first + v[1]
}

pub fn cold() {
    panic!("never served");
}
