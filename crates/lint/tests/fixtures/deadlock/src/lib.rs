//! Seeded lock-order cycle: `ab` takes `a` then reaches `b` through a call,
//! while `ba` takes `b` then `a` directly — a classic AB/BA deadlock.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn ab(&self) -> u64 {
        let g = self.a.lock();
        let x = self.take_b();
        x + *g
    }

    fn take_b(&self) -> u64 {
        let g = self.b.lock();
        *g
    }

    pub fn ba(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga + *gb
    }
}
