//! Clean variant: the guard is explicitly dropped before the I/O call and
//! before the callback runs — nothing is held across either.

use std::sync::Mutex;

pub struct Store {
    data: Mutex<Vec<u8>>,
}

impl Store {
    pub fn flush(&self) {
        let g = self.data.lock();
        let copy = g.clone();
        drop(g);
        write_disk(&copy);
    }

    pub fn with_callback(&self, f: impl Fn(&[u8])) {
        let g = self.data.lock();
        let copy = g.clone();
        drop(g);
        f(&copy);
    }
}

fn write_disk(b: &[u8]) {
    std::fs::write("out.bin", b).ok();
}
