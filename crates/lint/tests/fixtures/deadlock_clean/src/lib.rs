//! Clean variant: both paths acquire in the same `a` then `b` order, so the
//! lock-order graph has edges a→b only — no cycle, no finding.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn ab(&self) -> u64 {
        let g = self.a.lock();
        let x = self.take_b();
        x + *g
    }

    fn take_b(&self) -> u64 {
        let g = self.b.lock();
        *g
    }

    pub fn also_ab(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }
}
