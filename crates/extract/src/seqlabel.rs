//! Linear-chain sequence labeling with an averaged structured perceptron.
//!
//! Paper §4.1: "Conditional Random Fields have been used effectively to
//! parse postal addresses and lists of publications." This module provides
//! the same capability — feature-based linear-chain models with exact
//! Viterbi decoding — trained by the averaged structured perceptron
//! (Collins 2002), which optimizes the same decoding objective as a CRF
//! without external ML dependencies.
//!
//! Features include token identity, word shape, gazetteer membership
//! (names, venues, months — the domain knowledge), and neighbor words;
//! first-order transitions are learned jointly.

use std::collections::HashMap;

use woc_textkit::gazetteer;
use woc_textkit::tokenize::{tokenize, Token, TokenKind};

/// A training/evaluation example: tokens with gold labels.
#[derive(Debug, Clone)]
pub struct Example {
    /// Token strings.
    pub tokens: Vec<String>,
    /// One gold label per token.
    pub labels: Vec<String>,
}

/// Build an example from raw text and ordered `(field, substring)` segments:
/// tokens inside a segment get the field label, everything else gets `O`.
///
/// Segments are located left-to-right, each search starting where the
/// previous segment ended, so repeated substrings resolve in order.
pub fn example_from_segments(text: &str, segments: &[(String, String)]) -> Example {
    let toks = tokenize(text);
    let mut labels = vec!["O".to_string(); toks.len()];
    let mut cursor = 0usize;
    for (field, sub) in segments {
        if sub.is_empty() {
            continue;
        }
        let Some(found) = text[cursor..].find(sub.as_str()) else {
            continue;
        };
        let start = cursor + found;
        let end = start + sub.len();
        for (i, t) in toks.iter().enumerate() {
            if t.start >= start && t.end <= end {
                labels[i] = field.clone();
            }
        }
        cursor = end;
    }
    Example {
        tokens: toks.iter().map(|t| t.text.clone()).collect(),
        labels,
    }
}

fn word_shape(t: &str) -> String {
    let mut shape = String::new();
    let mut last = ' ';
    for c in t.chars() {
        let s = if c.is_uppercase() {
            'X'
        } else if c.is_lowercase() {
            'x'
        } else if c.is_ascii_digit() {
            'd'
        } else {
            '.'
        };
        if s != last {
            shape.push(s);
            last = s;
        }
    }
    shape
}

/// Emission features of token `i` in a sentence.
fn features(tokens: &[String], i: usize) -> Vec<String> {
    let t = &tokens[i];
    let lower = t.to_lowercase();
    let mut f = vec![
        format!("w={lower}"),
        format!("shape={}", word_shape(t)),
        format!("len={}", t.len().min(8)),
    ];
    if gazetteer::first_name_set().contains(t.as_str()) {
        f.push("gaz:first".into());
    }
    if gazetteer::last_name_set().contains(t.as_str()) {
        f.push("gaz:last".into());
    }
    if gazetteer::venue_set().contains(t.as_str()) {
        f.push("gaz:venue".into());
    }
    if gazetteer::month_set().contains(t.as_str()) {
        f.push("gaz:month".into());
    }
    if gazetteer::city_set().contains(t.as_str()) {
        f.push("gaz:city".into());
    }
    if t.len() == 4 && t.chars().all(|c| c.is_ascii_digit()) {
        f.push("year-like".into());
    }
    if i == 0 {
        f.push("begin".into());
    }
    if i + 1 == tokens.len() {
        f.push("end".into());
    }
    if i > 0 {
        f.push(format!("prev={}", tokens[i - 1].to_lowercase()));
    }
    if i + 1 < tokens.len() {
        f.push(format!("next={}", tokens[i + 1].to_lowercase()));
    }
    f
}

/// An averaged-perceptron linear-chain labeler.
#[derive(Debug, Clone, Default)]
pub struct Labeler {
    labels: Vec<String>,
    /// feature → per-label weights.
    emit: HashMap<String, Vec<f64>>,
    /// `trans[prev][cur]`, with index `labels.len()` as the start state.
    trans: Vec<Vec<f64>>,
}

impl Labeler {
    fn label_id(&mut self, l: &str) -> usize {
        match self.labels.iter().position(|x| x == l) {
            Some(i) => i,
            None => {
                self.labels.push(l.to_string());
                self.labels.len() - 1
            }
        }
    }

    /// Train on examples for `epochs` passes with weight averaging.
    pub fn train(examples: &[Example], epochs: usize) -> Labeler {
        Labeler::default().train_more(examples, epochs)
    }

    /// Continue training from this model's weights — the transfer-learning
    /// mechanism §7.2 asks for ("even if the extractor cannot be directly
    /// applied … we should not require the full efforts to develop a new
    /// extractor"): adapt a source-format model to a new format with a
    /// handful of target examples instead of training from scratch.
    pub fn adapt(&self, examples: &[Example], epochs: usize) -> Labeler {
        self.clone().train_more(examples, epochs)
    }

    fn train_more(mut self, examples: &[Example], epochs: usize) -> Labeler {
        let mut model = std::mem::take(&mut self);
        for ex in examples {
            for l in &ex.labels {
                model.label_id(l);
            }
        }
        let n_labels = model.labels.len();
        // Grow existing weight vectors to the (possibly larger) label set.
        for w in model.emit.values_mut() {
            w.resize(n_labels, 0.0);
        }
        let old_rows = model.trans.len();
        for row in &mut model.trans {
            row.resize(n_labels, 0.0);
        }
        if old_rows < n_labels + 1 {
            model.trans.resize(n_labels + 1, vec![0.0; n_labels]);
        } else if old_rows > n_labels + 1 {
            // Start row must stay last: move it.
            let start_row = model.trans.remove(old_rows - 1);
            model.trans.truncate(n_labels);
            model.trans.push(start_row);
        }

        // Averaging accumulators with lazy timestamps.
        let mut emit_acc: HashMap<String, Vec<f64>> = HashMap::new();
        let mut emit_last: HashMap<String, u64> = HashMap::new();
        let mut trans_acc = vec![vec![0.0; n_labels]; n_labels + 1];
        let mut trans_last = vec![vec![0u64; n_labels]; n_labels + 1];
        let mut step: u64 = 0;

        for _ in 0..epochs {
            for ex in examples {
                step += 1;
                let gold: Vec<usize> = ex
                    .labels
                    .iter()
                    .map(|l| {
                        model
                            .labels
                            .iter()
                            .position(|x| x == l)
                            .expect("invariant: training labels come from the model label set")
                    })
                    .collect();
                let pred = model.viterbi_ids(&ex.tokens);
                if pred == gold {
                    continue;
                }
                // Perceptron update: +gold, -pred.
                for i in 0..ex.tokens.len() {
                    if pred[i] == gold[i] {
                        continue;
                    }
                    for f in features(&ex.tokens, i) {
                        let w = model
                            .emit
                            .entry(f.clone())
                            .or_insert_with(|| vec![0.0; n_labels]);
                        // Flush averaging for this feature.
                        let acc = emit_acc
                            .entry(f.clone())
                            .or_insert_with(|| vec![0.0; n_labels]);
                        let last = emit_last.entry(f).or_insert(0);
                        let dt = (step - *last) as f64;
                        for (a, ww) in acc.iter_mut().zip(w.iter()) {
                            *a += ww * dt;
                        }
                        *last = step;
                        w[gold[i]] += 1.0;
                        w[pred[i]] -= 1.0;
                    }
                }
                for i in 0..ex.tokens.len() {
                    let gprev = if i == 0 { n_labels } else { gold[i - 1] };
                    let pprev = if i == 0 { n_labels } else { pred[i - 1] };
                    if gprev == pprev && gold[i] == pred[i] {
                        continue;
                    }
                    for (prev, cur, delta) in [(gprev, gold[i], 1.0f64), (pprev, pred[i], -1.0)] {
                        let dt = (step - trans_last[prev][cur]) as f64;
                        trans_acc[prev][cur] += model.trans[prev][cur] * dt;
                        trans_last[prev][cur] = step;
                        model.trans[prev][cur] += delta;
                    }
                }
            }
        }
        // Final averaging flush.
        for (f, w) in &model.emit {
            let acc = emit_acc
                .entry(f.clone())
                .or_insert_with(|| vec![0.0; n_labels]);
            let last = emit_last.get(f).copied().unwrap_or(0);
            let dt = (step - last) as f64;
            for (a, ww) in acc.iter_mut().zip(w.iter()) {
                *a += ww * dt;
            }
        }
        for prev in 0..=n_labels {
            for cur in 0..n_labels {
                let dt = (step - trans_last[prev][cur]) as f64;
                trans_acc[prev][cur] += model.trans[prev][cur] * dt;
            }
        }
        let denom = (step.max(1)) as f64;
        model.emit = emit_acc
            .into_iter()
            .map(|(f, v)| (f, v.into_iter().map(|x| x / denom).collect()))
            .collect();
        model.trans = trans_acc
            .into_iter()
            .map(|row| row.into_iter().map(|x| x / denom).collect())
            .collect();
        model
    }

    fn emit_scores(&self, tokens: &[String], i: usize) -> Vec<f64> {
        let mut scores = vec![0.0; self.labels.len()];
        for f in features(tokens, i) {
            if let Some(w) = self.emit.get(&f) {
                for (s, ww) in scores.iter_mut().zip(w) {
                    *s += ww;
                }
            }
        }
        scores
    }

    fn viterbi_ids(&self, tokens: &[String]) -> Vec<usize> {
        let n = tokens.len();
        let l = self.labels.len();
        if n == 0 || l == 0 {
            return Vec::new();
        }
        let start = l; // start-state row in trans
        let mut dp = vec![vec![f64::NEG_INFINITY; l]; n];
        let mut back = vec![vec![0usize; l]; n];
        let e0 = self.emit_scores(tokens, 0);
        for (y, item) in dp[0].iter_mut().enumerate() {
            *item = e0[y] + self.trans.get(start).map_or(0.0, |row| row[y]);
        }
        for i in 1..n {
            let ei = self.emit_scores(tokens, i);
            for y in 0..l {
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0;
                for (prev, &dp_prev) in dp[i - 1].iter().enumerate() {
                    let s = dp_prev + self.trans[prev][y];
                    if s > best {
                        best = s;
                        arg = prev;
                    }
                }
                dp[i][y] = best + ei[y];
                back[i][y] = arg;
            }
        }
        let mut last = (0..l)
            .max_by(|&a, &b| {
                dp[n - 1][a]
                    .partial_cmp(&dp[n - 1][b])
                    .expect("invariant: viterbi scores are finite, never NaN")
            })
            .expect("invariant: the label set is non-empty");
        let mut out = vec![0usize; n];
        out[n - 1] = last;
        for i in (1..n).rev() {
            last = back[i][last];
            out[i - 1] = last;
        }
        out
    }

    /// Exhaustive decode for tiny instances — used by property tests to
    /// verify Viterbi optimality. Panics if `labels^tokens` exceeds 1e6.
    pub fn brute_force(&self, tokens: &[String]) -> Vec<String> {
        let l = self.labels.len();
        let n = tokens.len();
        assert!((l as f64).powi(n as i32) <= 1e6, "instance too large");
        let emits: Vec<Vec<f64>> = (0..n).map(|i| self.emit_scores(tokens, i)).collect();
        let mut best_score = f64::NEG_INFINITY;
        let mut best: Vec<usize> = Vec::new();
        let mut assignment = vec![0usize; n];
        loop {
            let mut score = 0.0;
            for i in 0..n {
                let prev = if i == 0 { l } else { assignment[i - 1] };
                score += emits[i][assignment[i]] + self.trans[prev][assignment[i]];
            }
            if score > best_score {
                best_score = score;
                best = assignment.clone();
            }
            // Next assignment (odometer).
            let mut i = 0;
            loop {
                if i == n {
                    return best.iter().map(|&y| self.labels[y].clone()).collect();
                }
                assignment[i] += 1;
                if assignment[i] < l {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }

    /// Score of a label sequence under the model (for tests).
    pub fn sequence_score(&self, tokens: &[String], labels: &[String]) -> f64 {
        let l = self.labels.len();
        let mut score = 0.0;
        for i in 0..tokens.len() {
            let y = self
                .labels
                .iter()
                .position(|x| x == &labels[i])
                .expect("invariant: scored labels come from the model label set");
            let prev = if i == 0 {
                l
            } else {
                self.labels
                    .iter()
                    .position(|x| x == &labels[i - 1])
                    .expect("invariant: scored labels come from the model label set")
            };
            score += self.emit_scores(tokens, i)[y] + self.trans[prev][y];
        }
        score
    }

    /// Predict labels for a token sequence.
    pub fn predict(&self, tokens: &[String]) -> Vec<String> {
        self.viterbi_ids(tokens)
            .into_iter()
            .map(|y| self.labels[y].clone())
            .collect()
    }

    /// Label raw text; returns `(field, substring)` segments of maximal
    /// same-label runs (excluding `O`).
    pub fn segment(&self, text: &str) -> Vec<(String, String)> {
        let toks: Vec<Token> = tokenize(text);
        let tokens: Vec<String> = toks.iter().map(|t| t.text.clone()).collect();
        let labels = self.predict(&tokens);
        let mut out: Vec<(String, String)> = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            if labels[i] == "O" {
                i += 1;
                continue;
            }
            let mut j = i;
            // Extend the run, allowing punctuation tokens labeled the same.
            while j + 1 < toks.len() && labels[j + 1] == labels[i] {
                j += 1;
            }
            // Trim trailing punctuation from the segment.
            let mut end = j;
            while end > i && toks[end].kind == TokenKind::Punct {
                end -= 1;
            }
            out.push((
                labels[i].clone(),
                text[toks[i].start..toks[end].end].to_string(),
            ));
            i = j + 1;
        }
        out
    }

    /// The known label set.
    pub fn label_set(&self) -> &[String] {
        &self.labels
    }

    /// Token accuracy on held-out examples.
    pub fn token_accuracy(&self, examples: &[Example]) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for ex in examples {
            let pred = self.predict(&ex.tokens);
            for (p, g) in pred.iter().zip(&ex.labels) {
                total += 1;
                if p == g {
                    correct += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_webgen::sites::academic::render_citation;
    use woc_webgen::{World, WorldConfig};

    fn citation_examples(world: &World, fmt_mask: &[usize]) -> Vec<Example> {
        world
            .publications
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let cit = render_citation(world, p, fmt_mask[i % fmt_mask.len()]);
                example_from_segments(&cit.text, &cit.segments)
            })
            .collect()
    }

    #[test]
    fn example_from_segments_aligns() {
        let ex = example_from_segments(
            "Ada Lovelace. On Engines. In PODS, 2009.",
            &[
                ("authors".into(), "Ada Lovelace".into()),
                ("title".into(), "On Engines".into()),
                ("venue".into(), "PODS".into()),
                ("year".into(), "2009".into()),
            ],
        );
        assert_eq!(ex.tokens.len(), ex.labels.len());
        let pairs: Vec<(&str, &str)> = ex
            .tokens
            .iter()
            .map(String::as_str)
            .zip(ex.labels.iter().map(String::as_str))
            .collect();
        assert!(pairs.contains(&("Ada", "authors")));
        assert!(pairs.contains(&("Engines", "title")));
        assert!(pairs.contains(&("PODS", "venue")));
        assert!(pairs.contains(&("2009", "year")));
        assert!(pairs.contains(&(".", "O")));
    }

    #[test]
    fn learns_citation_segmentation() {
        let w = World::generate(WorldConfig {
            publications: 40,
            ..WorldConfig::tiny(111)
        });
        let examples = citation_examples(&w, &[0, 1, 2]);
        let (train, test) = examples.split_at(30);
        let model = Labeler::train(train, 8);
        let acc = model.token_accuracy(test);
        assert!(acc > 0.85, "citation token accuracy too low: {acc}");
    }

    #[test]
    fn transfer_gap_across_formats() {
        // Trained on one citation format, tested on another: accuracy drops —
        // the sensitivity to training data the paper calls out ("a model
        // learnt to extract Computer Science publications may perform poorly
        // on Physics publications").
        let w = World::generate(WorldConfig {
            publications: 40,
            ..WorldConfig::tiny(112)
        });
        let same = citation_examples(&w, &[0]);
        let other = citation_examples(&w, &[2]);
        let model = Labeler::train(&same[..30], 8);
        let in_format = model.token_accuracy(&same[30..]);
        let out_format = model.token_accuracy(&other[30..]);
        assert!(
            in_format > out_format,
            "in-format {in_format} should beat out-of-format {out_format}"
        );
    }

    #[test]
    fn adaptation_beats_cold_start_with_few_examples() {
        // Transfer (§7.2): a model trained on citation format 0, adapted with
        // 4 examples of format 2, beats a model trained on those 4 examples
        // alone — the source model's lexical/gazetteer knowledge transfers.
        let w = World::generate(WorldConfig {
            publications: 40,
            ..WorldConfig::tiny(124)
        });
        let source = citation_examples(&w, &[0]);
        let target = citation_examples(&w, &[2]);
        let base = Labeler::train(&source[..30], 8);
        let no_adapt_acc = base.token_accuracy(&target[10..]);
        let adapted = base.adapt(&target[..2], 4);
        let adapted_acc = adapted.token_accuracy(&target[10..]);
        assert!(
            adapted_acc > no_adapt_acc,
            "two target examples must beat zero: {adapted_acc:.3} vs {no_adapt_acc:.3}"
        );
        assert!(
            adapted_acc > 0.9,
            "adapted accuracy too low: {adapted_acc:.3}"
        );
    }

    #[test]
    fn adapt_admits_new_labels() {
        // Adaptation data includes one rehearsal example of the old label —
        // standard practice against catastrophic forgetting in warm-started
        // perceptrons.
        let ex1 = vec![Example {
            tokens: vec!["PODS".into()],
            labels: vec!["venue".into()],
        }];
        let ex2 = vec![
            Example {
                tokens: vec!["Cupertino".into()],
                labels: vec!["city".into()],
            },
            ex1[0].clone(),
        ];
        let m = Labeler::train(&ex1, 3).adapt(&ex2, 3);
        assert!(m.label_set().contains(&"venue".to_string()));
        assert!(m.label_set().contains(&"city".to_string()));
        assert_eq!(m.predict(&["PODS".to_string()]), vec!["venue".to_string()]);
        assert_eq!(
            m.predict(&["Cupertino".to_string()]),
            vec!["city".to_string()]
        );
    }

    #[test]
    fn segment_reconstructs_fields() {
        let w = World::generate(WorldConfig {
            publications: 40,
            ..WorldConfig::tiny(113)
        });
        let examples = citation_examples(&w, &[0]);
        let model = Labeler::train(&examples[..30], 8);
        let cit = render_citation(&w, w.publications[35], 0);
        let segs = model.segment(&cit.text);
        let get = |f: &str| segs.iter().find(|(k, _)| k == f).map(|(_, v)| v.as_str());
        let truth_venue = cit
            .segments
            .iter()
            .find(|(k, _)| k == "venue")
            .unwrap()
            .1
            .clone();
        assert_eq!(get("venue"), Some(truth_venue.as_str()));
        assert!(get("year").is_some());
    }

    #[test]
    fn learns_address_segmentation() {
        // The paper's other CRF use case: "parse postal addresses". Generate
        // address strings from the world and segment street/city/state/zip.
        let w = World::generate(WorldConfig {
            restaurants: 30,
            ..WorldConfig::tiny(115)
        });
        let examples: Vec<Example> = w
            .restaurants
            .iter()
            .map(|&r| {
                let rec = w.rec(r);
                let street = rec.best_string("street").unwrap();
                let city = rec.best_string("city").unwrap();
                let state = rec.best_string("state").unwrap();
                let zip = rec.best_string("zip").unwrap();
                let text = format!("{street}, {city}, {state} {zip}");
                example_from_segments(
                    &text,
                    &[
                        ("street".into(), street),
                        ("city".into(), city),
                        ("state".into(), state),
                        ("zip".into(), zip),
                    ],
                )
            })
            .collect();
        let (train, test) = examples.split_at(20);
        let model = Labeler::train(train, 8);
        let acc = model.token_accuracy(test);
        assert!(acc > 0.9, "address token accuracy {acc}");
        // Segment an unseen synthetic address.
        let segs = model.segment("4321 Winchester Blvd, Cupertino, CA 95014");
        let has = |f: &str, v: &str| segs.iter().any(|(k, val)| k == f && val == v);
        assert!(has("zip", "95014"), "zip segment: {segs:?}");
        assert!(has("city", "Cupertino"), "city segment: {segs:?}");
    }

    #[test]
    fn viterbi_matches_brute_force_small() {
        let examples = vec![
            Example {
                tokens: vec!["PODS".into(), "2009".into()],
                labels: vec!["venue".into(), "year".into()],
            },
            Example {
                tokens: vec!["Ada".into(), "Lovelace".into()],
                labels: vec!["authors".into(), "authors".into()],
            },
        ];
        let model = Labeler::train(&examples, 4);
        for toks in [
            vec!["PODS".to_string(), "2009".to_string()],
            vec!["Ada".to_string(), "PODS".to_string(), "2009".to_string()],
        ] {
            assert_eq!(model.predict(&toks), model.brute_force(&toks));
        }
    }

    #[test]
    fn empty_input() {
        let model = Labeler::default();
        assert!(model.predict(&[]).is_empty());
        assert!(model.segment("").is_empty());
    }
}
