//! Unsupervised citation-field refinement.
//!
//! List extraction types citation rows coarsely (venue gazetteer + year).
//! This module splits the remaining text into *title* and *authors* using
//! structure + domain knowledge only: punctuation-delimited runs, person-name
//! gazetteers, and the venue/year anchors — no labeled data, in the spirit of
//! §4.2's unsupervised domain-centric extraction. (The supervised
//! alternative is the sequence labeler in [`crate::seqlabel`].)

use woc_textkit::gazetteer;
use woc_textkit::tokenize::{tokenize, Token, TokenKind};

/// Fields recovered from a citation string.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CitationFields {
    /// Paper title.
    pub title: Option<String>,
    /// Author list, as rendered.
    pub authors: Option<String>,
    /// Venue.
    pub venue: Option<String>,
    /// Publication year.
    pub year: Option<String>,
}

fn is_name_token(t: &Token) -> bool {
    gazetteer::first_name_set().contains(t.text.as_str())
        || gazetteer::last_name_set().contains(t.text.as_str())
}

/// Split a citation into fields. Returns what it could find; fields the
/// heuristic is unsure about stay `None`.
pub fn parse_citation(text: &str) -> CitationFields {
    let toks = tokenize(text);
    let mut out = CitationFields::default();

    // Anchors: venue gazetteer word, 4-digit year.
    for t in &toks {
        if t.kind == TokenKind::Word && gazetteer::venue_set().contains(t.text.as_str()) {
            out.venue.get_or_insert_with(|| t.text.clone());
        }
        if t.kind == TokenKind::Number
            && t.text.len() == 4
            && (t.text.starts_with("19") || t.text.starts_with("20"))
        {
            out.year.get_or_insert_with(|| t.text.clone());
        }
    }

    // Runs of word tokens delimited by punctuation (excluding the anchors),
    // remembering the separator that *followed* each run so colon-joined
    // title halves ("Towards X: a Framework for Y") can be re-merged.
    let mut runs: Vec<(Vec<&Token>, char)> = Vec::new();
    let mut cur: Vec<&Token> = Vec::new();
    for t in &toks {
        let is_anchor = out.venue.as_deref() == Some(t.text.as_str())
            || out.year.as_deref() == Some(t.text.as_str());
        if t.kind == TokenKind::Punct || is_anchor {
            if !cur.is_empty() {
                let sep = t.text.chars().next().unwrap_or(' ');
                runs.push((std::mem::take(&mut cur), if is_anchor { ' ' } else { sep }));
            }
        } else {
            cur.push(t);
        }
    }
    if !cur.is_empty() {
        runs.push((cur, ' '));
    }

    // Classify runs: name-dominated → authors; everything else is title
    // material. Connectives ("In", "with") are ignored.
    #[derive(PartialEq, Clone, Copy)]
    enum RunKind {
        Author,
        Other,
        Skip,
    }
    let classify = |run: &[&Token]| -> RunKind {
        let meaningful: Vec<&&Token> = run
            .iter()
            .filter(|t| t.kind == TokenKind::Word)
            .filter(|t| {
                !matches!(
                    t.lower().as_str(),
                    "in" | "with" | "and" | "eds" | "et" | "al"
                )
            })
            .collect();
        if meaningful.is_empty() {
            return RunKind::Skip;
        }
        let name_frac =
            meaningful.iter().filter(|t| is_name_token(t)).count() as f64 / meaningful.len() as f64;
        if name_frac >= 0.5 {
            RunKind::Author
        } else if meaningful.len() >= 2 {
            RunKind::Other
        } else {
            RunKind::Skip
        }
    };
    let kinds: Vec<RunKind> = runs.iter().map(|(r, _)| classify(r)).collect();
    let author_runs: Vec<&[&Token]> = runs
        .iter()
        .zip(&kinds)
        .filter(|(_, k)| **k == RunKind::Author)
        .map(|((r, _), _)| r.as_slice())
        .collect();
    // Title = the longest chain of consecutive Other runs joined by ':'.
    let mut title_run: Option<(usize, usize, usize)> = None; // (start_idx, end_idx, token_count)
    let mut i = 0;
    while i < runs.len() {
        if kinds[i] != RunKind::Other {
            i += 1;
            continue;
        }
        let mut j = i;
        let mut count = runs[i].0.len();
        while j + 1 < runs.len() && runs[j].1 == ':' && kinds[j + 1] == RunKind::Other {
            j += 1;
            count += runs[j].0.len();
        }
        if title_run.is_none_or(|(_, _, best)| count > best) {
            title_run = Some((i, j, count));
        }
        i = j + 1;
    }
    let title_run: Option<Vec<&Token>> = title_run.map(|(a, b, _)| {
        runs[a..=b]
            .iter()
            .flat_map(|(r, _)| r.iter().copied())
            .collect()
    });

    let render = |run: &[&Token]| -> String {
        let start = run.first().map(|t| t.start).unwrap_or(0);
        let end = run.last().map(|t| t.end).unwrap_or(0);
        let slice = &text[start..end];
        slice
            .trim()
            .trim_start_matches(|c: char| !c.is_alphanumeric())
            .to_string()
    };
    if let Some(run) = &title_run {
        // Strip leading connectives the tokenizer kept ("with ...").
        let mut title = render(run);
        for lead in ["In ", "with "] {
            if let Some(rest) = title.strip_prefix(lead) {
                title = rest.to_string();
            }
        }
        out.title = Some(title);
    }
    if !author_runs.is_empty() {
        let joined = author_runs
            .iter()
            .map(|r| render(r))
            .collect::<Vec<_>>()
            .join(", ");
        out.authors = Some(joined);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_format_author_first() {
        let f = parse_citation(
            "Ada Lovelace, Grace Hopper. Towards Query Optimization: a Framework for record linkage. In PODS, 2009.",
        );
        assert_eq!(f.venue.as_deref(), Some("PODS"));
        assert_eq!(f.year.as_deref(), Some("2009"));
        assert!(f.authors.as_deref().unwrap().contains("Ada Lovelace"));
        assert!(f.title.as_deref().unwrap().contains("Query Optimization"));
    }

    #[test]
    fn parses_format_title_first() {
        let f = parse_citation("Scalable Entity Matching (VLDB 2004), with Donald Knuth.");
        assert_eq!(f.venue.as_deref(), Some("VLDB"));
        assert_eq!(f.year.as_deref(), Some("2004"));
        assert!(f
            .title
            .as_deref()
            .unwrap()
            .contains("Scalable Entity Matching"));
        assert!(f.authors.as_deref().unwrap().contains("Knuth"));
    }

    #[test]
    fn parses_format_year_first() {
        let f = parse_citation(
            "[2007] Barbara Liskov: Robust Wrapper Induction for view maintenance. SIGMOD.",
        );
        assert_eq!(f.venue.as_deref(), Some("SIGMOD"));
        assert_eq!(f.year.as_deref(), Some("2007"));
        assert!(f.authors.as_deref().unwrap().contains("Liskov"));
        assert!(f
            .title
            .as_deref()
            .unwrap()
            .contains("Robust Wrapper Induction"));
    }

    #[test]
    fn graceful_on_non_citations() {
        let f = parse_citation("just some words");
        assert!(f.venue.is_none());
        assert!(f.year.is_none());
        assert!(f.authors.is_none());
        let f = parse_citation("");
        assert_eq!(f, CitationFields::default());
    }

    #[test]
    fn world_citations_round_trip() {
        use woc_webgen::sites::academic::render_citation;
        use woc_webgen::{World, WorldConfig};
        let w = World::generate(WorldConfig::tiny(141));
        let mut title_ok = 0usize;
        let mut total = 0usize;
        for &p in &w.publications {
            for fmt in 0..3 {
                let cit = render_citation(&w, p, fmt);
                let parsed = parse_citation(&cit.text);
                total += 1;
                let truth_title = cit
                    .segments
                    .iter()
                    .find(|(k, _)| k == "title")
                    .map(|(_, v)| v.clone())
                    .unwrap();
                if parsed
                    .title
                    .as_deref()
                    .is_some_and(|t| truth_title.contains(t) || t.contains(truth_title.as_str()))
                {
                    title_ok += 1;
                }
                assert!(parsed.venue.is_some(), "venue found in {:?}", cit.text);
                assert!(parsed.year.is_some());
            }
        }
        let acc = title_ok as f64 / total as f64;
        assert!(acc > 0.7, "title recovery too low: {acc}");
    }
}
