//! Aggregator mining by bootstrapping (paper §4.2).
//!
//! "The main idea is to use already extracted records to automatically
//! generate labeled data and use it to extract more records. … if we can map
//! a few of the menu items to our database, then we can infer that the list
//! represents an Italian restaurant menu and can extract additional menu
//! items from the list to add to the database. Thus, we can start from a
//! small set of seed records and bootstrap to extract more records from
//! sources that overlap with the current set."
//!
//! The loop: for every repeating region on every page, count rows whose name
//! matches a known record of some concept; if at least `min_overlap` rows
//! match, the whole list is claimed for that concept and the non-matching
//! rows become *new* records for the next round. Iterate to fixpoint.

use std::collections::HashSet;

use woc_textkit::tokenize::normalize;
use woc_webgen::Page;

use crate::lists::{repeating_regions, type_row};
use crate::wrapper::ExtractedRecord;

/// Configuration of the bootstrapping loop.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Minimum number of rows of a list that must match known records for
    /// the list to be claimed.
    pub min_overlap: usize,
    /// Maximum rounds (a fixpoint usually arrives much earlier).
    pub max_rounds: usize,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            min_overlap: 2,
            max_rounds: 10,
        }
    }
}

/// Outcome of a bootstrapping run.
#[derive(Debug, Clone)]
pub struct BootstrapResult {
    /// All known records at the end (seeds + harvested), with the round they
    /// were acquired in (round 0 = seeds).
    pub records: Vec<(ExtractedRecord, usize)>,
    /// Number of rounds actually executed.
    pub rounds: usize,
}

impl BootstrapResult {
    /// Records harvested (excluding seeds).
    pub fn harvested(&self) -> Vec<&ExtractedRecord> {
        self.records
            .iter()
            .filter(|(_, round)| *round > 0)
            .map(|(r, _)| r)
            .collect()
    }

    /// Records known per round (cumulative counts) — the growth curve of
    /// experiment S4.
    pub fn growth_curve(&self) -> Vec<usize> {
        let max_round = self.records.iter().map(|(_, r)| *r).max().unwrap_or(0);
        (0..=max_round)
            .map(|r| self.records.iter().filter(|(_, rr)| *rr <= r).count())
            .collect()
    }
}

fn name_key(fields: &[(String, String)]) -> Option<String> {
    fields
        .iter()
        .find(|(k, _)| k == "name")
        .map(|(_, v)| normalize(v))
        .filter(|v| !v.is_empty())
}

/// Run the bootstrapping loop over `pages`, starting from `seeds` — records
/// of one concept (e.g. menu items) whose `name` fields are the keys used to
/// recognize overlapping lists.
pub fn bootstrap(
    pages: &[&Page],
    concept: &str,
    seeds: &[ExtractedRecord],
    config: &BootstrapConfig,
) -> BootstrapResult {
    let mut known: HashSet<String> = seeds.iter().filter_map(|r| name_key(&r.fields)).collect();
    let mut records: Vec<(ExtractedRecord, usize)> =
        seeds.iter().map(|r| (r.clone(), 0usize)).collect();

    // Pre-compute typed rows per region per page once.
    let typed_pages: Vec<Vec<Vec<crate::lists::RowFields>>> = pages
        .iter()
        .map(|p| {
            repeating_regions(&p.dom, 3)
                .into_iter()
                .map(|reg| reg.rows.iter().map(|r| type_row(r)).collect())
                .collect()
        })
        .collect();

    let mut rounds = 0;
    for round in 1..=config.max_rounds {
        let mut grew = false;
        for (pi, regions) in typed_pages.iter().enumerate() {
            for rows in regions {
                let keys: Vec<Option<String>> = rows.iter().map(|r| name_key(&r.fields)).collect();
                let overlap = keys
                    .iter()
                    .filter(|k| k.as_ref().is_some_and(|k| known.contains(k)))
                    .count();
                if overlap < config.min_overlap {
                    continue;
                }
                // Claim the list: every named row becomes a record.
                for (row, key) in rows.iter().zip(&keys) {
                    let Some(key) = key else { continue };
                    if known.contains(key) {
                        continue;
                    }
                    known.insert(key.clone());
                    grew = true;
                    records.push((
                        ExtractedRecord {
                            concept: Some(concept.to_string()),
                            fields: row.fields.clone(),
                            confidence: 0.6 + 0.1 * (overlap.min(4) as f64),
                            source_url: pages[pi].url.clone(),
                        },
                        round,
                    ));
                }
            }
        }
        rounds = round;
        if !grew {
            break;
        }
    }

    BootstrapResult { records, rounds }
}

/// Build seed records from `(name)` strings.
pub fn seeds_from_names(concept: &str, names: &[&str]) -> Vec<ExtractedRecord> {
    names
        .iter()
        .map(|n| ExtractedRecord {
            concept: Some(concept.to_string()),
            fields: vec![("name".to_string(), (*n).to_string())],
            confidence: 1.0,
            source_url: "seed".to_string(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_webgen::sites::{generate_corpus, CorpusConfig};
    use woc_webgen::{PageKind, World, WorldConfig};

    #[test]
    fn bootstrap_recovers_menu_items_from_seeds() {
        let w = World::generate(WorldConfig {
            restaurants: 25,
            max_menu_items: 12,
            ..WorldConfig::tiny(131)
        });
        let c = generate_corpus(&w, &CorpusConfig::tiny(7));
        let menu_pages: Vec<&Page> = c
            .pages()
            .iter()
            .filter(|p| p.truth.kind == PageKind::RestaurantMenu)
            .collect();
        // Seeds: dishes of the first restaurant only.
        let seed_names: Vec<String> = menu_pages[0]
            .truth
            .records
            .iter()
            .take(3)
            .map(|t| t.field("name").unwrap().to_string())
            .collect();
        let seed_refs: Vec<&str> = seed_names.iter().map(String::as_str).collect();
        let seeds = seeds_from_names("menu_item", &seed_refs);
        let result = bootstrap(
            &menu_pages,
            "menu_item",
            &seeds,
            &BootstrapConfig::default(),
        );

        // The world draws dishes from a shared pool, so menus overlap and
        // bootstrapping should spread well beyond the seed page.
        let harvested = result.harvested().len();
        assert!(harvested > 10, "harvested too few: {harvested}");
        let curve = result.growth_curve();
        assert!(curve.len() >= 2);
        assert!(curve.windows(2).all(|w| w[0] <= w[1]), "growth is monotone");

        // Precision: every harvested name is a real dish somewhere.
        let all_truth: HashSet<String> = menu_pages
            .iter()
            .flat_map(|p| p.truth.records.iter())
            .filter_map(|t| t.field("name").map(normalize))
            .collect();
        let mut correct = 0usize;
        for r in result.harvested() {
            if name_key(&r.fields).is_some_and(|k| all_truth.contains(&k)) {
                correct += 1;
            }
        }
        let precision = correct as f64 / harvested.max(1) as f64;
        assert!(precision > 0.9, "bootstrap precision too low: {precision}");
    }

    #[test]
    fn no_seeds_no_growth() {
        let w = World::generate(WorldConfig::tiny(132));
        let c = generate_corpus(&w, &CorpusConfig::tiny(8));
        let pages: Vec<&Page> = c.pages().iter().collect();
        let result = bootstrap(&pages, "menu_item", &[], &BootstrapConfig::default());
        assert!(result.harvested().is_empty());
    }

    #[test]
    fn overlap_threshold_blocks_spurious_lists() {
        let w = World::generate(WorldConfig::tiny(133));
        let c = generate_corpus(&w, &CorpusConfig::tiny(9));
        let pages: Vec<&Page> = c.pages().iter().collect();
        // A single junk seed that matches nothing.
        let seeds = seeds_from_names("menu_item", &["Zorblax Prime Dish"]);
        let strict = BootstrapConfig {
            min_overlap: 2,
            max_rounds: 5,
        };
        let result = bootstrap(&pages, "menu_item", &seeds, &strict);
        assert!(
            result.harvested().is_empty(),
            "nothing should be claimed from a non-matching seed"
        );
    }

    #[test]
    fn seed_helper() {
        let s = seeds_from_names("menu_item", &["Pad Thai", "Pho"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].fields[0].1, "Pad Thai");
    }
}
