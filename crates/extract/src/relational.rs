//! Relational classification (paper §4.2).
//!
//! "Developing a global events classifier is easier, but it tends to be
//! noisy given the vastly different content in the large collection of
//! sites. Fortunately, the link and directory relationships in a site
//! contain valuable signals … After bootstrapping the pages of a site with
//! the classification labels given by an inaccurate classifier, the
//! relational structure present in that site can be used to revise them and
//! get highly accurate classification." (The graph-based method of \[60\].)
//!
//! * [`NaiveBayes`] — the noisy global text classifier, trained once across
//!   sites;
//! * [`refine_site`] — per-site label propagation over the page graph whose
//!   edges are same-directory membership and hyperlinks.

use std::collections::{BTreeMap, HashMap};

use woc_textkit::tokenize::tokenize_words;
use woc_webgen::Page;

/// A binary naive-Bayes text classifier with Laplace smoothing.
#[derive(Debug, Clone, Default)]
pub struct NaiveBayes {
    pos_counts: HashMap<String, u64>,
    neg_counts: HashMap<String, u64>,
    pos_total: u64,
    neg_total: u64,
    pos_docs: u64,
    neg_docs: u64,
}

impl NaiveBayes {
    /// Empty classifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe a labeled document.
    pub fn observe(&mut self, text: &str, positive: bool) {
        let toks = tokenize_words(text);
        let (counts, total, docs) = if positive {
            (
                &mut self.pos_counts,
                &mut self.pos_total,
                &mut self.pos_docs,
            )
        } else {
            (
                &mut self.neg_counts,
                &mut self.neg_total,
                &mut self.neg_docs,
            )
        };
        *total += toks.len() as u64;
        *docs += 1;
        for t in toks {
            *counts.entry(t).or_insert(0) += 1;
        }
    }

    /// P(positive | text) under naive Bayes.
    pub fn predict_proba(&self, text: &str) -> f64 {
        if self.pos_docs == 0 || self.neg_docs == 0 {
            return 0.5;
        }
        let vocab = (self.pos_counts.len() + self.neg_counts.len()).max(1) as f64;
        let mut log_pos = (self.pos_docs as f64 / (self.pos_docs + self.neg_docs) as f64).ln();
        let mut log_neg = (self.neg_docs as f64 / (self.pos_docs + self.neg_docs) as f64).ln();
        for t in tokenize_words(text) {
            let pc = self.pos_counts.get(&t).copied().unwrap_or(0) as f64;
            let nc = self.neg_counts.get(&t).copied().unwrap_or(0) as f64;
            log_pos += ((pc + 1.0) / (self.pos_total as f64 + vocab)).ln();
            log_neg += ((nc + 1.0) / (self.neg_total as f64 + vocab)).ln();
        }
        // Stable sigmoid of the log-odds.
        let d = log_pos - log_neg;
        1.0 / (1.0 + (-d).exp())
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, text: &str) -> bool {
        self.predict_proba(text) >= 0.5
    }
}

/// Result of per-site refinement.
#[derive(Debug, Clone)]
pub struct SiteLabels {
    /// Page URLs in the order given.
    pub urls: Vec<String>,
    /// Scores after propagation (probability-like, in `\[0, 1\]`).
    pub scores: Vec<f64>,
}

impl SiteLabels {
    /// Hard label for page `i`.
    pub fn label(&self, i: usize) -> bool {
        self.scores[i] >= 0.5
    }
}

/// Refine global-classifier scores on one site's pages by iterative label
/// propagation over the site graph. `alpha` is the weight kept on the
/// classifier's own opinion; the remainder comes from graph neighbors
/// (same-directory pages and hyperlinked pages).
pub fn refine_site(pages: &[&Page], global: &NaiveBayes, alpha: f64, iters: usize) -> SiteLabels {
    let n = pages.len();
    let mut scores: Vec<f64> = pages
        .iter()
        .map(|p| global.predict_proba(&p.text()))
        .collect();
    let priors = scores.clone();

    // Build the neighborhood lists once.
    let url_index: HashMap<&str, usize> = pages
        .iter()
        .enumerate()
        .map(|(i, p)| (p.url.as_str(), i))
        .collect();
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Same-directory edges.
    // BTreeMap, not HashMap: member lists feed `neighbors` in iteration
    // order, which must not depend on hash seeding.
    let mut by_dir: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, p) in pages.iter().enumerate() {
        by_dir.entry(p.directory()).or_default().push(i);
    }
    for members in by_dir.values() {
        for &i in members {
            for &j in members {
                if i != j {
                    neighbors[i].push(j);
                }
            }
        }
    }
    // Hyperlink edges (within the site).
    for (i, p) in pages.iter().enumerate() {
        for link in p.links() {
            if let Some(&j) = url_index.get(link.as_str()) {
                if i != j {
                    neighbors[i].push(j);
                    neighbors[j].push(i);
                }
            }
        }
    }

    for _ in 0..iters {
        let mut next = vec![0.0; n];
        for i in 0..n {
            let neigh = &neighbors[i];
            if neigh.is_empty() {
                next[i] = priors[i];
                continue;
            }
            let mean: f64 = neigh.iter().map(|&j| scores[j]).sum::<f64>() / neigh.len() as f64;
            next[i] = alpha * priors[i] + (1.0 - alpha) * mean;
        }
        scores = next;
    }

    SiteLabels {
        urls: pages.iter().map(|p| p.url.clone()).collect(),
        scores,
    }
}

/// Accuracy of boolean predictions against gold labels.
pub fn accuracy(pred: &[bool], gold: &[bool]) -> f64 {
    assert_eq!(pred.len(), gold.len());
    if pred.is_empty() {
        return 1.0;
    }
    pred.iter().zip(gold).filter(|(p, g)| p == g).count() as f64 / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_webgen::sites::city::city_guide_pages;
    use woc_webgen::{PageKind, World, WorldConfig};

    fn events_gold(p: &Page) -> bool {
        p.truth.kind == PageKind::CityEvents
    }

    /// Train a global classifier on half the city sites, evaluate global vs
    /// relationally-refined accuracy on the other half.
    fn run_relational(seed: u64) -> (f64, f64) {
        let w = World::generate(WorldConfig {
            events: 24,
            restaurants: 16,
            ..WorldConfig::tiny(seed)
        });
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let pages = city_guide_pages(&w, &mut rng);
        let mut sites: Vec<&str> = pages.iter().map(|p| p.site.as_str()).collect();
        sites.sort();
        sites.dedup();
        let (train_sites, test_sites) = sites.split_at(sites.len() / 2);

        let mut nb = NaiveBayes::new();
        for p in pages
            .iter()
            .filter(|p| train_sites.contains(&p.site.as_str()))
        {
            nb.observe(&p.text(), events_gold(p));
        }

        let mut global_correct = 0usize;
        let mut refined_correct = 0usize;
        let mut total = 0usize;
        for site in test_sites {
            let site_pages: Vec<&Page> = pages.iter().filter(|p| p.site == *site).collect();
            if site_pages.is_empty() {
                continue;
            }
            let labels = refine_site(&site_pages, &nb, 0.35, 10);
            for (i, p) in site_pages.iter().enumerate() {
                total += 1;
                if nb.predict(&p.text()) == events_gold(p) {
                    global_correct += 1;
                }
                if labels.label(i) == events_gold(p) {
                    refined_correct += 1;
                }
            }
        }
        assert!(total > 0);
        (
            global_correct as f64 / total as f64,
            refined_correct as f64 / total as f64,
        )
    }

    #[test]
    fn naive_bayes_separates_obvious_classes() {
        let mut nb = NaiveBayes::new();
        nb.observe("tickets doors open admission rsvp lineup", true);
        nb.observe("tickets venue schedule performance", true);
        nb.observe("rooms suites check in lobby concierge", false);
        nb.observe("brunch patio wine list tasting menu", false);
        assert!(nb.predict_proba("tickets and lineup tonight") > 0.5);
        assert!(nb.predict_proba("book rooms and suites") < 0.5);
    }

    #[test]
    fn untrained_classifier_is_uninformative() {
        let nb = NaiveBayes::new();
        assert_eq!(nb.predict_proba("anything"), 0.5);
    }

    #[test]
    fn refinement_beats_or_matches_global() {
        let (global, refined) = run_relational(121);
        assert!(
            refined >= global,
            "relational refinement must not hurt: global={global:.3} refined={refined:.3}"
        );
        assert!(refined > 0.8, "refined accuracy too low: {refined:.3}");
    }

    #[test]
    fn propagation_fixes_isolated_misclassification() {
        // Three same-directory pages; the middle one gets a wrong prior, and
        // its clean neighbors outvote it.
        let mut nb = NaiveBayes::new();
        nb.observe("tickets admission lineup", true);
        nb.observe("lobby rooms suites", false);
        let mk = |url: &str, text: &str| woc_webgen::Page {
            url: url.to_string(),
            site: "s.example.com".into(),
            title: String::new(),
            dom: woc_webgen::Node::elem("html")
                .child(woc_webgen::Node::elem("body").text_child(text)),
            truth: woc_webgen::PageTruth {
                kind: PageKind::CityEvents,
                about: None,
                records: vec![],
                mentions: vec![],
            },
        };
        let pages = [
            mk(
                "http://s.example.com/calendar/a.html",
                "tickets admission lineup tonight",
            ),
            // Reads like hotel copy, but lives with event siblings.
            mk(
                "http://s.example.com/calendar/b.html",
                "lobby rooms suites available",
            ),
            mk(
                "http://s.example.com/calendar/c.html",
                "tickets lineup admission friday",
            ),
        ];
        let refs: Vec<&Page> = pages.iter().collect();
        assert!(!nb.predict(&pages[1].text()), "global classifier is fooled");
        let labels = refine_site(&refs, &nb, 0.3, 10);
        assert!(labels.label(1), "neighbors rescue the misclassified page");
    }

    #[test]
    fn accuracy_helper() {
        assert_eq!(accuracy(&[true, false], &[true, true]), 0.5);
        assert_eq!(accuracy(&[], &[]), 1.0);
    }
}
