//! Site-centric wrapper induction (paper §4.1) and its robust variant.
//!
//! A *wrapper* is a learned extraction rule for one attribute on one site.
//! "With relatively few labeled examples, extraction rules, called wrappers,
//! can be learnt to extract information from a specific website. The main
//! drawback with wrappers is that they rely on the existence of a structure."
//!
//! Two rule families are implemented:
//!
//! * [`BrittleRule`] — an absolute DOM path (the classic wrapper hypothesis
//!   space). Fast and precise, but any template change that shifts the path
//!   (an inserted wrapper `<div>`, an injected ad) silently breaks it.
//! * [`RobustRule`] — an ensemble of *local* anchors that survive tree edits
//!   in the spirit of the probabilistic tree-edit work \[22\]: a preceding
//!   label text ("Phone:"), a class-token anchor tolerant to suffix renames,
//!   and a path-suffix anchor. Candidates are scored by anchor votes.
//!
//! Training labels come from page ground truth, simulating the "relatively
//! few labeled examples" a human annotator would provide per site.

use std::collections::HashMap;

use woc_textkit::tokenize::normalize;
use woc_webgen::dom::{Node, NodePath};
use woc_webgen::Page;

/// An extraction made by any extractor in this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedRecord {
    /// Concept name guess, when the extractor knows it.
    pub concept: Option<String>,
    /// `(field, value)` pairs.
    pub fields: Vec<(String, String)>,
    /// Extractor confidence in `\[0, 1\]`.
    pub confidence: f64,
    /// URL of the source page.
    pub source_url: String,
}

/// One labeled training example: a page plus the expected value of the
/// target attribute on it.
#[derive(Debug, Clone)]
pub struct LabeledPage<'a> {
    /// The page.
    pub page: &'a Page,
    /// The expected attribute value as rendered on the page.
    pub value: String,
}

/// Find every element whose *own* text (concatenation of direct text
/// children) normalizes to the target value.
fn matching_nodes<'a>(dom: &'a Node, value: &str) -> Vec<(NodePath, &'a Node)> {
    let target = normalize(value);
    dom.walk()
        .into_iter()
        .filter(|(_, n)| n.tag().is_some())
        .filter(|(_, n)| {
            let own: String = n
                .child_nodes()
                .iter()
                .filter_map(|c| match c {
                    Node::Text(t) => Some(t.as_str()),
                    _ => None,
                })
                .collect::<Vec<_>>()
                .join(" ");
            normalize(&own) == target && !target.is_empty()
        })
        .collect()
}

/// The classic wrapper: an absolute structural path.
#[derive(Debug, Clone, PartialEq)]
pub struct BrittleRule {
    /// Path from the document root to the value node.
    pub path: NodePath,
}

impl BrittleRule {
    /// Learn the path supported by the most labeled pages (majority vote —
    /// real templates shift paths when optional fields vary, so demanding
    /// unanimity would reject perfectly good sites). Requires support on at
    /// least half the examples.
    pub fn learn(examples: &[LabeledPage<'_>]) -> Option<BrittleRule> {
        let mut support: std::collections::HashMap<NodePath, usize> =
            std::collections::HashMap::new();
        for ex in examples {
            for (path, _) in matching_nodes(&ex.page.dom, &ex.value) {
                *support.entry(path).or_insert(0) += 1;
            }
        }
        let need = examples.len().div_ceil(2);
        support
            .into_iter()
            .filter(|(_, n)| *n >= need)
            .max_by_key(|(p, n)| (*n, p.depth()))
            .map(|(path, _)| BrittleRule { path })
    }

    /// Apply to a page: the text at the learned path.
    pub fn apply(&self, page: &Page) -> Option<String> {
        page.dom
            .resolve(&self.path)
            .map(Node::text_content)
            .filter(|t| !t.is_empty())
    }
}

/// Anchors a robust rule votes with.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustRule {
    /// Label text immediately preceding the value (e.g. `Phone:`), if the
    /// site labels its fields.
    pub label: Option<String>,
    /// Class *token prefix* of the value node's closest classed ancestor —
    /// tolerant to rename-by-suffix redesigns.
    pub class_prefix: Option<String>,
    /// Trailing steps of the value path (local structure), tolerant to
    /// insertions above.
    pub path_suffix: Vec<String>,
}

impl RobustRule {
    /// Learn anchors consistent across the labeled pages.
    pub fn learn(examples: &[LabeledPage<'_>]) -> Option<RobustRule> {
        let mut labels: Vec<Option<String>> = Vec::new();
        let mut classes: Vec<Option<String>> = Vec::new();
        let mut suffixes: Vec<Vec<String>> = Vec::new();
        for ex in examples {
            let nodes = matching_nodes(&ex.page.dom, &ex.value);
            if nodes.is_empty() {
                return None;
            }
            // Use the first match to derive anchors (site templates are
            // regular, so any match works; consistency filtering happens
            // across pages below).
            let (path, _node) = &nodes[0];
            labels.push(label_before(&ex.page.dom, path));
            classes.push(class_of(&ex.page.dom, path));
            suffixes.push(
                path.steps
                    .iter()
                    .rev()
                    .take(2)
                    .map(|s| s.tag.clone())
                    .collect(),
            );
        }
        let label = consistent(&labels);
        let class_prefix = consistent(&classes).map(|c| class_token_prefix(&c));
        let path_suffix = if suffixes.windows(2).all(|w| w[0] == w[1]) {
            suffixes.pop().unwrap_or_default()
        } else {
            Vec::new()
        };
        if label.is_none() && class_prefix.is_none() && path_suffix.is_empty() {
            return None;
        }
        Some(RobustRule {
            label,
            class_prefix,
            path_suffix,
        })
    }

    /// Apply to a page: score every element by anchor votes and return the
    /// best-scoring node's text (requiring at least one vote, and at least
    /// two when several anchors are known).
    pub fn apply(&self, page: &Page) -> Option<String> {
        let known = usize::from(self.label.is_some())
            + usize::from(self.class_prefix.is_some())
            + usize::from(!self.path_suffix.is_empty());
        let need = if known >= 2 { 2 } else { 1 };
        let mut best: Option<(usize, usize, String)> = None; // (votes, -depth proxy, text)
        for (path, node) in page.dom.walk() {
            if node.tag().is_none() {
                continue;
            }
            let own: String = node
                .child_nodes()
                .iter()
                .map(|c| match c {
                    Node::Text(t) => t.trim().to_string(),
                    Node::Element { .. } => node_text_shallow(c),
                })
                .collect::<Vec<_>>()
                .join(" ")
                .trim()
                .to_string();
            if own.is_empty() || own.len() > 200 {
                continue;
            }
            let mut votes = 0usize;
            if let Some(lbl) = &self.label {
                if label_before(&page.dom, &path).as_deref() == Some(lbl.as_str()) {
                    votes += 1;
                }
            }
            if let Some(prefix) = &self.class_prefix {
                if class_of(&page.dom, &path).is_some_and(|c| class_token_prefix(&c) == *prefix) {
                    votes += 1;
                }
            }
            if !self.path_suffix.is_empty() {
                let tail: Vec<String> = path
                    .steps
                    .iter()
                    .rev()
                    .take(self.path_suffix.len())
                    .map(|s| s.tag.clone())
                    .collect();
                if tail == self.path_suffix {
                    votes += 1;
                }
            }
            if votes >= need {
                let depth = path.depth();
                if best
                    .as_ref()
                    .is_none_or(|(bv, bd, _)| votes > *bv || (votes == *bv && depth > *bd))
                {
                    best = Some((votes, depth, own));
                }
            }
        }
        best.map(|(_, _, t)| t)
    }
}

fn node_text_shallow(n: &Node) -> String {
    n.text_content()
}

/// The text of the element immediately preceding `path`'s node among its
/// siblings, if it looks like a label (ends with `:`).
fn label_before(dom: &Node, path: &NodePath) -> Option<String> {
    if path.steps.is_empty() {
        return None;
    }
    let parent_path = NodePath {
        steps: path.steps[..path.steps.len() - 1].to_vec(),
    };
    let parent = dom.resolve(&parent_path)?;
    let me = dom.resolve(path)?;
    let kids = parent.child_nodes();
    let my_pos = kids.iter().position(|c| std::ptr::eq(c, me))?;
    if my_pos == 0 {
        return None;
    }
    let prev = &kids[my_pos - 1];
    let text = prev.text_content();
    text.ends_with(':').then_some(text)
}

/// The combined `parent-class/own-class` anchor of a node. Using the parent
/// too matters: many templates give every value span the same class
/// (`xx-v`) and distinguish fields on the enclosing container.
fn class_of(dom: &Node, path: &NodePath) -> Option<String> {
    let own = dom
        .resolve(path)
        .and_then(|n| n.get_attr("class"))
        .map(str::to_string);
    let parent = (!path.steps.is_empty())
        .then(|| {
            let pp = NodePath {
                steps: path.steps[..path.steps.len() - 1].to_vec(),
            };
            dom.resolve(&pp)
                .and_then(|n| n.get_attr("class"))
                .map(str::to_string)
        })
        .flatten();
    match (parent, own) {
        (Some(p), Some(o)) => Some(format!("{p}/{o}")),
        (Some(p), None) => Some(p),
        (None, Some(o)) => Some(o),
        (None, None) => None,
    }
}

/// Strip a trailing `-r<digit>`-style rename suffix and any trailing digits
/// from each `/`-separated component, yielding the stable prefix of a class
/// anchor.
fn class_token_prefix(class: &str) -> String {
    class
        .split('/')
        .map(|part| {
            let first = part.split(' ').next().unwrap_or("");
            let trimmed = first.trim_end_matches(|c: char| c.is_ascii_digit());
            trimmed.strip_suffix("-r").unwrap_or(trimmed).to_string()
        })
        .collect::<Vec<_>>()
        .join("/")
}

fn consistent(values: &[Option<String>]) -> Option<String> {
    let first = values.first()?.clone()?;
    values
        .iter()
        .all(|v| v.as_deref() == Some(first.as_str()))
        .then_some(first)
}

/// A full site wrapper: one rule per attribute, in both variants.
#[derive(Debug, Clone, Default)]
pub struct SiteWrapper {
    /// Attribute → brittle rule.
    pub brittle: HashMap<String, BrittleRule>,
    /// Attribute → robust rule.
    pub robust: HashMap<String, RobustRule>,
}

impl SiteWrapper {
    /// Learn rules for the given attributes from `k` labeled pages of a
    /// site. `label_of(page, attr)` supplies the training label (in
    /// experiments, read from page truth — simulating a human annotator).
    pub fn learn(
        pages: &[&Page],
        attrs: &[&str],
        label_of: impl Fn(&Page, &str) -> Option<String>,
    ) -> SiteWrapper {
        let mut w = SiteWrapper::default();
        for &attr in attrs {
            let examples: Vec<LabeledPage<'_>> = pages
                .iter()
                .filter_map(|p| label_of(p, attr).map(|value| LabeledPage { page: p, value }))
                .collect();
            if examples.is_empty() {
                continue;
            }
            if let Some(rule) = BrittleRule::learn(&examples) {
                w.brittle.insert(attr.to_string(), rule);
            }
            if let Some(rule) = RobustRule::learn(&examples) {
                w.robust.insert(attr.to_string(), rule);
            }
        }
        w
    }

    /// Extract a record from a page using the brittle rules.
    pub fn extract_brittle(&self, page: &Page) -> ExtractedRecord {
        let mut fields = Vec::new();
        for (attr, rule) in &self.brittle {
            if let Some(v) = rule.apply(page) {
                fields.push((attr.clone(), v));
            }
        }
        fields.sort();
        ExtractedRecord {
            concept: None,
            fields,
            confidence: 0.9,
            source_url: page.url.clone(),
        }
    }

    /// Extract a record from a page using the robust rules.
    pub fn extract_robust(&self, page: &Page) -> ExtractedRecord {
        let mut fields = Vec::new();
        for (attr, rule) in &self.robust {
            if let Some(v) = rule.apply(page) {
                fields.push((attr.clone(), v));
            }
        }
        fields.sort();
        ExtractedRecord {
            concept: None,
            fields,
            confidence: 0.85,
            source_url: page.url.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_webgen::sites::{AggregatorSpec, SiteStyle};
    use woc_webgen::{DriftConfig, PageKind, World, WorldConfig};

    fn biz_pages() -> Vec<Page> {
        let w = World::generate(WorldConfig::tiny(91));
        // Restrict coverage to single-phone restaurants: multi-valued fields
        // repeat their element, so a mixed site has two legitimate layouts
        // and no absolute path can cover both. The brittle-wrapper accuracy
        // claim is about one regular template; drift tests cover breakage.
        let coverage: Vec<usize> = woc_webgen::sites::local::RestaurantView::all(&w)
            .iter()
            .enumerate()
            .filter(|(_, v)| v.phones.len() == 1)
            .map(|(i, _)| i)
            .collect();
        let spec = AggregatorSpec {
            host: "agg.example.com".into(),
            coverage,
            review_ratio: 0.5,
            name_noise: 0.0,
        };
        let mut rng = rand::SeedableRng::seed_from_u64(1);
        let style = SiteStyle::sample(&mut rng);
        woc_webgen::sites::local::aggregator_pages(&w, &spec, &style, &mut rng)
            .into_iter()
            .filter(|p| p.truth.kind == PageKind::AggregatorBiz)
            .collect()
    }

    fn truth_label(page: &Page, attr: &str) -> Option<String> {
        page.truth.records.first()?.field(attr).map(str::to_string)
    }

    #[test]
    fn brittle_wrapper_learns_from_two_pages() {
        let pages = biz_pages();
        let train: Vec<&Page> = pages.iter().take(2).collect();
        let w = SiteWrapper::learn(&train, &["name", "hours", "cuisine"], truth_label);
        assert!(w.brittle.contains_key("name"), "name rule learned");
        assert!(w.brittle.contains_key("hours"), "hours rule learned");
        // Apply on unseen pages of the same site.
        let mut correct = 0;
        let mut total = 0;
        for p in pages.iter().skip(2) {
            let rec = w.extract_brittle(p);
            let truth = &p.truth.records[0];
            for (k, v) in &rec.fields {
                if k == "hours" {
                    total += 1;
                    if truth.field("hours") == Some(v.as_str()) {
                        correct += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            correct as f64 / total as f64 >= 0.8,
            "brittle wrapper accurate on-site: {correct}/{total}"
        );
    }

    #[test]
    fn robust_wrapper_survives_drift() {
        let pages = biz_pages();
        let train: Vec<&Page> = pages.iter().take(3).collect();
        let w = SiteWrapper::learn(&train, &["hours"], truth_label);
        assert!(w.robust.contains_key("hours"));
        let (drifted, plan) = woc_webgen::drift_site(&pages, &DriftConfig::heavy(), 13);
        assert!(!plan.is_noop());
        let mut brittle_ok = 0;
        let mut robust_ok = 0;
        let mut n = 0;
        for p in drifted.iter().skip(3) {
            let truth_hours = p.truth.records[0].field("hours").unwrap().to_string();
            n += 1;
            if w.extract_brittle(p)
                .fields
                .iter()
                .any(|(k, v)| k == "hours" && *v == truth_hours)
            {
                brittle_ok += 1;
            }
            if w.extract_robust(p)
                .fields
                .iter()
                .any(|(k, v)| k == "hours" && v.contains(&truth_hours))
            {
                robust_ok += 1;
            }
        }
        assert!(n > 0);
        assert!(
            robust_ok > brittle_ok,
            "robust ({robust_ok}/{n}) must beat brittle ({brittle_ok}/{n}) under drift"
        );
        assert!(
            robust_ok as f64 / n as f64 > 0.7,
            "robust survives: {robust_ok}/{n}"
        );
    }

    #[test]
    fn learn_fails_gracefully_without_signal() {
        let pages = biz_pages();
        let train: Vec<&Page> = pages.iter().take(2).collect();
        // A label that never appears on the pages yields no rules.
        let w = SiteWrapper::learn(&train, &["bogus"], |_, _| Some("zzz not on page".into()));
        assert!(w.brittle.is_empty());
        assert!(w.robust.is_empty());
    }

    #[test]
    fn class_prefix_strips_rename() {
        assert_eq!(class_token_prefix("yx12-hours-r3"), "yx12-hours");
        assert_eq!(class_token_prefix("yx12-hours"), "yx12-hours");
        assert_eq!(class_token_prefix("a b"), "a");
        assert_eq!(
            class_token_prefix("yx12-hours-r3/yx12-v-r3"),
            "yx12-hours/yx12-v"
        );
    }
}
