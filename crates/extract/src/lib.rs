//! # woc-extract — the domain-centric extraction stack (paper §4)
//!
//! Implements every extraction technique the paper describes:
//!
//! * [`wrapper`] — site-centric wrapper induction (§4.1) with both classic
//!   (brittle, absolute-path) and robust (tree-edit tolerant) rules;
//! * [`lists`] — **domain-centric list extraction** (§4.2): unsupervised,
//!   site-independent extraction of record lists by combining repeating-
//!   structure detection with domain knowledge (field recognizers and the
//!   schema's statistical cardinality constraints);
//! * [`seqlabel`] — a linear-chain sequence labeler (structured perceptron +
//!   Viterbi), the stand-in for the CRFs used to "parse postal addresses and
//!   lists of publications" (§4.1);
//! * [`relational`] — relational classification (§4.2): a noisy global page
//!   classifier refined per site by label propagation over the site's link
//!   and directory structure;
//! * [`bootstrap`] — aggregator mining (§4.2): bootstrapping from seed
//!   records to label overlapping lists and harvest new records;
//! * [`citations`] — unsupervised citation-field refinement (title/authors
//!   via punctuation structure + name gazetteers);
//! * [`eval`] — precision/recall scoring of extractions against page truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod citations;
pub mod eval;
pub mod lists;
pub mod relational;
pub mod seqlabel;
pub mod wrapper;

pub use eval::Prf;
pub use wrapper::{BrittleRule, ExtractedRecord, LabeledPage, RobustRule, SiteWrapper};
