//! Domain-centric list extraction (paper §4.2).
//!
//! "A list can often be identified on a webpage by a repeating pattern of
//! HTML structure. However, webpages often contain several lists, and we
//! need to identify the lists that we are interested in; this typically
//! requires us to combine domain knowledge with structural cues."
//!
//! The extractor is **unsupervised and site-independent**:
//!
//! 1. [`repeating_regions`] finds maximal runs of ≥3 structurally identical
//!    siblings (the structural cue);
//! 2. each row's text is typed with the `woc-textkit` field recognizers and
//!    gazetteers (the domain knowledge: "rules to identify zips/phones");
//! 3. a [`ConceptProfile`] scores the list against the concept's required
//!    fields and statistical constraints ("each restaurant is associated
//!    with a single zip code and has one or two phone numbers") and the
//!    best-scoring profile above threshold claims the list.

use std::collections::BTreeMap;

use woc_textkit::gazetteer;
use woc_textkit::recognize::{self, FieldKind};
use woc_webgen::dom::{Node, NodePath};
use woc_webgen::Page;

use crate::wrapper::ExtractedRecord;

/// A detected repeating region: the parent path and the row nodes.
#[derive(Debug)]
pub struct RepeatingRegion<'a> {
    /// Path of the parent element.
    pub parent: NodePath,
    /// The row nodes (structurally identical siblings).
    pub rows: Vec<&'a Node>,
}

/// A structural signature of a subtree, depth-limited so minor deep
/// differences don't break row alignment.
fn shape(node: &Node, depth: usize) -> String {
    match node {
        Node::Text(_) => "#".to_string(),
        Node::Element { tag, children, .. } => {
            if depth == 0 {
                tag.clone()
            } else {
                let inner: Vec<String> = children.iter().map(|c| shape(c, depth - 1)).collect();
                format!("{tag}({})", inner.join(","))
            }
        }
    }
}

/// Find all maximal runs of ≥`min_rows` consecutive same-shape element
/// siblings anywhere in the DOM.
pub fn repeating_regions(dom: &Node, min_rows: usize) -> Vec<RepeatingRegion<'_>> {
    let mut out = Vec::new();
    for (path, node) in dom.walk() {
        if node.tag().is_none() {
            continue;
        }
        let kids = node.child_nodes();
        let mut i = 0;
        while i < kids.len() {
            if kids[i].tag().is_none() {
                i += 1;
                continue;
            }
            let sig = shape(&kids[i], 2);
            let mut j = i + 1;
            while j < kids.len() && kids[j].tag().is_some() && shape(&kids[j], 2) == sig {
                j += 1;
            }
            if j - i >= min_rows {
                out.push(RepeatingRegion {
                    parent: path.clone(),
                    rows: kids[i..j].iter().collect(),
                });
            }
            i = j.max(i + 1);
        }
    }
    out
}

/// Fields recognized in one row.
#[derive(Debug, Clone, Default)]
pub struct RowFields {
    /// `(field, value)` pairs found by the recognizers.
    pub fields: Vec<(String, String)>,
}

/// Type a row's text using recognizers and gazetteers.
pub fn type_row(row: &Node) -> RowFields {
    let text = row.text_content();
    let spans = recognize::recognize_all(&text);
    let mut fields: Vec<(String, String)> = Vec::new();

    let mut first_span_start = text.len();
    for s in &spans {
        first_span_start = first_span_start.min(s.start);
        let field = match s.kind {
            FieldKind::Phone => "phone",
            FieldKind::Zip => "zip",
            FieldKind::Price => "price",
            FieldKind::Date => "date",
            FieldKind::Time => "time",
            FieldKind::StreetAddress => "street",
            FieldKind::City => "city",
            FieldKind::Cuisine => "cuisine",
            FieldKind::Email => "email",
            FieldKind::Url => "url",
        };
        fields.push((field.to_string(), s.text.clone()));
    }

    // Name heuristic: prefer the first anchor's text; else the text before
    // the first recognized span.
    let name = row
        .find_tag("a")
        .first()
        .map(|a| a.text_content())
        .filter(|t| !t.is_empty())
        .or_else(|| {
            let lead = text[..first_span_start]
                .trim()
                .trim_end_matches([',', '-', ':']);
            let lead = lead.trim();
            (!lead.is_empty() && lead.len() < 80).then(|| lead.to_string())
        });
    if let Some(n) = name {
        fields.insert(0, ("name".to_string(), n));
    }

    // Star ratings ("4 stars") and long review-like text.
    let toks = woc_textkit::tokenize::tokenize(&text);
    for w in toks.windows(2) {
        if w[0].kind == woc_textkit::tokenize::TokenKind::Number
            && w[0].text.len() == 1
            && w[1].lower() == "stars"
        {
            fields.push(("rating".to_string(), w[0].text.clone()));
        }
    }
    if text.len() > 80 {
        fields.push(("text".to_string(), text.clone()));
    }

    // Venue + year for citations (academic domain knowledge).
    for v in gazetteer::VENUES {
        if text.contains(v) {
            fields.push(("venue".to_string(), (*v).to_string()));
        }
    }
    for tok in &toks {
        if tok.kind == woc_textkit::tokenize::TokenKind::Number
            && tok.text.len() == 4
            && (tok.text.starts_with("19") || tok.text.starts_with("20"))
            && !spans
                .iter()
                .any(|s| tok.start >= s.start && tok.end <= s.end)
        {
            fields.push(("year".to_string(), tok.text.clone()));
        }
    }

    RowFields { fields }
}

/// Domain knowledge for recognizing lists of one concept.
#[derive(Debug, Clone)]
pub struct ConceptProfile {
    /// Concept name this profile emits.
    pub concept: String,
    /// Fields that must be present in a conforming row.
    pub required: Vec<&'static str>,
    /// Of these fields, at least `min_any` must be present (beyond required).
    pub any_of: Vec<&'static str>,
    /// How many of `any_of` are needed.
    pub min_any: usize,
    /// Statistical constraints: max occurrences of a field per row.
    pub max_per_row: Vec<(&'static str, usize)>,
    /// Fraction of conforming rows required to claim a list.
    pub accept_threshold: f64,
}

impl ConceptProfile {
    /// The restaurant-listing profile from the paper's running example.
    pub fn restaurant() -> Self {
        Self {
            concept: "restaurant".into(),
            required: vec!["name"],
            any_of: vec!["street", "zip", "phone", "city"],
            min_any: 2,
            // "a single zip code … one or two phone numbers"
            max_per_row: vec![("zip", 1), ("phone", 2), ("street", 1)],
            accept_threshold: 0.6,
        }
    }

    /// Menu items: a dish name and a price.
    pub fn menu_item() -> Self {
        Self {
            concept: "menu_item".into(),
            required: vec!["name", "price"],
            any_of: vec![],
            min_any: 0,
            max_per_row: vec![("price", 1), ("phone", 0), ("zip", 0)],
            accept_threshold: 0.7,
        }
    }

    /// Publications: venue + year (titles are refined by the sequence labeler).
    pub fn publication() -> Self {
        Self {
            concept: "publication".into(),
            required: vec!["venue", "year"],
            any_of: vec![],
            min_any: 0,
            max_per_row: vec![("phone", 0), ("price", 0)],
            accept_threshold: 0.7,
        }
    }

    /// Reviews: a star rating plus a long text body.
    pub fn review() -> Self {
        Self {
            concept: "review".into(),
            required: vec!["rating", "text"],
            any_of: vec![],
            min_any: 0,
            max_per_row: vec![("rating", 1), ("price", 0)],
            accept_threshold: 0.7,
        }
    }

    /// Events: a name and a date.
    pub fn event() -> Self {
        Self {
            concept: "event".into(),
            required: vec!["name", "date"],
            any_of: vec![],
            min_any: 0,
            max_per_row: vec![("date", 1), ("price", 1)],
            accept_threshold: 0.7,
        }
    }

    /// All built-in profiles.
    pub fn standard() -> Vec<ConceptProfile> {
        vec![
            Self::menu_item(),
            Self::publication(),
            Self::event(),
            Self::review(),
            Self::restaurant(),
        ]
    }

    /// Does a typed row conform to this profile?
    pub fn row_conforms(&self, row: &RowFields) -> bool {
        let count = |f: &str| row.fields.iter().filter(|(k, _)| k == f).count();
        if self.required.iter().any(|f| count(f) == 0) {
            return false;
        }
        let any = self.any_of.iter().filter(|f| count(f) > 0).count();
        if any < self.min_any {
            return false;
        }
        self.max_per_row.iter().all(|(f, max)| count(f) <= *max)
    }

    /// Fraction of rows conforming.
    pub fn score(&self, rows: &[RowFields]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().filter(|r| self.row_conforms(r)).count() as f64 / rows.len() as f64
    }

    /// Fields this profile keeps in emitted records.
    fn keep(&self) -> Vec<&'static str> {
        let mut k: Vec<&'static str> = self.required.clone();
        k.extend(self.any_of.iter().copied());
        match self.concept.as_str() {
            "publication" => k.extend(["name", "text"]),
            "event" => k.extend(["price", "city"]),
            "restaurant" => k.extend(["cuisine"]),
            "review" => k.extend(["name"]),
            _ => {}
        }
        k
    }
}

/// Concepts whose profile claims any repeating region of at least
/// `min_rows` rows on the page. Used both for extraction and (with a lower
/// row minimum) to *suppress* detail extraction on listing pages.
pub fn claimed_concepts(page: &Page, profiles: &[ConceptProfile], min_rows: usize) -> Vec<String> {
    let mut out = Vec::new();
    for region in repeating_regions(&page.dom, min_rows) {
        let typed: Vec<RowFields> = region.rows.iter().map(|r| type_row(r)).collect();
        for p in profiles {
            if p.score(&typed) >= p.accept_threshold && !out.contains(&p.concept) {
                out.push(p.concept.clone());
            }
        }
    }
    out
}

/// Extract all concept lists from a page, completely unsupervised.
///
/// Every repeating region is typed and scored against every profile; the
/// best profile above its threshold claims the region. Emits one record per
/// conforming row.
pub fn extract_lists(page: &Page, profiles: &[ConceptProfile]) -> Vec<ExtractedRecord> {
    let mut out = Vec::new();
    for region in repeating_regions(&page.dom, 3) {
        let typed: Vec<RowFields> = region.rows.iter().map(|r| type_row(r)).collect();
        let best = profiles
            .iter()
            .map(|p| (p, p.score(&typed)))
            .filter(|(p, s)| *s >= p.accept_threshold)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let Some((profile, score)) = best else {
            continue;
        };
        let keep = profile.keep();
        for row in typed.iter().filter(|r| profile.row_conforms(r)) {
            let mut fields: Vec<(String, String)> = Vec::new();
            let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
            for (k, v) in &row.fields {
                if !keep.contains(&k.as_str()) {
                    continue;
                }
                let limit = profile
                    .max_per_row
                    .iter()
                    .find(|(f, _)| f == k)
                    .map(|(_, m)| *m)
                    .unwrap_or(1);
                let c = counts.entry(k.as_str()).or_insert(0);
                if *c < limit.max(1) {
                    fields.push((k.clone(), v.clone()));
                    *c += 1;
                }
            }
            out.push(ExtractedRecord {
                concept: Some(profile.concept.clone()),
                fields,
                confidence: 0.55 + 0.4 * score,
                source_url: page.url.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_webgen::sites::{generate_corpus, CorpusConfig};
    use woc_webgen::{PageKind, World, WorldConfig};

    fn corpus() -> (World, woc_webgen::WebCorpus) {
        // Dense enough that category pages carry multi-row listings.
        let w = World::generate(WorldConfig {
            restaurants: 30,
            cities: 3,
            cuisines: 3,
            ..WorldConfig::tiny(101)
        });
        let c = generate_corpus(&w, &CorpusConfig::tiny(5));
        (w, c)
    }

    #[test]
    fn repeating_region_detection() {
        let dom = Node::elem("div").children([
            Node::elem("p").text_child("intro"),
            Node::elem("ul").children([
                Node::elem("li").child(Node::elem("span").text_child("a")),
                Node::elem("li").child(Node::elem("span").text_child("b")),
                Node::elem("li").child(Node::elem("span").text_child("c")),
            ]),
        ]);
        let regions = repeating_regions(&dom, 3);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].rows.len(), 3);
    }

    #[test]
    fn short_runs_ignored() {
        let dom = Node::elem("ul").children([
            Node::elem("li").text_child("a"),
            Node::elem("li").text_child("b"),
        ]);
        assert!(repeating_regions(&dom, 3).is_empty());
    }

    #[test]
    fn type_row_restaurant_like() {
        let row = Node::elem("li")
            .child(
                Node::elem("a")
                    .attr("href", "x")
                    .text_child("Gochi Fusion Tapas"),
            )
            .child(Node::text("19980 Homestead Rd, Cupertino 95014"))
            .child(Node::text("(408) 555-0134"));
        let typed = type_row(&row);
        let get = |f: &str| {
            typed
                .fields
                .iter()
                .find(|(k, _)| k == f)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(get("name"), Some("Gochi Fusion Tapas"));
        assert_eq!(get("street"), Some("19980 Homestead Rd"));
        assert_eq!(get("zip"), Some("95014"));
        assert!(get("phone").is_some());
        assert_eq!(get("city"), Some("Cupertino"));
    }

    #[test]
    fn menu_lists_extracted_from_unseen_sites() {
        let (w, c) = corpus();
        let profiles = ConceptProfile::standard();
        let mut tp = 0usize;
        let mut total_truth = 0usize;
        for page in c
            .pages()
            .iter()
            .filter(|p| p.truth.kind == PageKind::RestaurantMenu)
        {
            let recs = extract_lists(page, &profiles);
            let menu_recs: Vec<&ExtractedRecord> = recs
                .iter()
                .filter(|r| r.concept.as_deref() == Some("menu_item"))
                .collect();
            total_truth += page.truth.records.len();
            for tr in &page.truth.records {
                let name = tr.field("name").unwrap();
                if menu_recs.iter().any(|r| {
                    r.fields
                        .iter()
                        .any(|(k, v)| k == "name" && v.contains(name))
                }) {
                    tp += 1;
                }
            }
        }
        assert!(total_truth > 0);
        let recall = tp as f64 / total_truth as f64;
        assert!(
            recall > 0.7,
            "menu recall too low: {recall} ({tp}/{total_truth})"
        );
        let _ = w;
    }

    #[test]
    fn category_listings_extracted_as_restaurants() {
        let (_, c) = corpus();
        let profiles = ConceptProfile::standard();
        let mut found_any = false;
        for page in c
            .pages()
            .iter()
            .filter(|p| p.truth.kind == PageKind::AggregatorCategory)
        {
            let recs = extract_lists(page, &profiles);
            let rest: Vec<_> = recs
                .iter()
                .filter(|r| r.concept.as_deref() == Some("restaurant"))
                .collect();
            if page.truth.records.len() >= 3 {
                assert!(
                    !rest.is_empty(),
                    "restaurant list missed on {} ({} truth rows)",
                    page.url,
                    page.truth.records.len()
                );
                found_any = true;
                for r in rest {
                    let zips = r.fields.iter().filter(|(k, _)| k == "zip").count();
                    assert!(zips <= 1, "statistical constraint: at most one zip");
                }
            }
        }
        assert!(found_any, "no category page had >=3 rows");
    }

    #[test]
    fn no_lists_claimed_on_plain_articles() {
        let (_, c) = corpus();
        let profiles = ConceptProfile::standard();
        for page in c
            .pages()
            .iter()
            .filter(|p| p.truth.kind == PageKind::Article)
        {
            let recs = extract_lists(page, &profiles);
            assert!(
                recs.len() <= 1,
                "article {} should not yield record lists, got {}",
                page.url,
                recs.len()
            );
        }
    }

    #[test]
    fn profile_constraints_reject_overfull_rows() {
        let p = ConceptProfile::restaurant();
        let mut row = RowFields::default();
        row.fields.push(("name".into(), "X".into()));
        row.fields.push(("zip".into(), "95014".into()));
        row.fields.push(("phone".into(), "408-555-0000".into()));
        assert!(p.row_conforms(&row));
        row.fields.push(("zip".into(), "95015".into()));
        assert!(
            !p.row_conforms(&row),
            "two zips violate the paper's constraint"
        );
    }
}
