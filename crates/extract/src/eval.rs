//! Extraction-quality evaluation against page ground truth.

use std::collections::HashSet;

use woc_textkit::tokenize::normalize;
use woc_webgen::{Page, TruthRecord};

use crate::ExtractedRecord;

/// Precision / recall / F1 over counted true positives.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Prf {
    /// True positives.
    pub tp: usize,
    /// False positives (extracted but wrong).
    pub fp: usize,
    /// False negatives (missed).
    pub fn_: usize,
}

impl Prf {
    /// Precision (1.0 when nothing was extracted).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (1.0 when there was nothing to find).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 (harmonic mean; 0 if both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accumulate another count.
    pub fn merge(&mut self, other: Prf) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

impl std::fmt::Display for Prf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F1={:.3} (tp={} fp={} fn={})",
            self.precision(),
            self.recall(),
            self.f1(),
            self.tp,
            self.fp,
            self.fn_
        )
    }
}

/// Score extracted `(field, value)` pairs against one page's truth records,
/// matching values up to [`normalize`]. Each truth pair may be claimed once.
pub fn score_fields(extracted: &[ExtractedRecord], truth: &[TruthRecord]) -> Prf {
    let mut truth_pairs: Vec<(String, String)> = truth
        .iter()
        .flat_map(|t| t.fields.iter().map(|(k, v)| (k.clone(), normalize(v))))
        .collect();
    let mut prf = Prf::default();
    for rec in extracted {
        for (k, v) in &rec.fields {
            let nv = normalize(v);
            if let Some(pos) = truth_pairs.iter().position(|(tk, tv)| tk == k && *tv == nv) {
                truth_pairs.swap_remove(pos);
                prf.tp += 1;
            } else {
                prf.fp += 1;
            }
        }
    }
    prf.fn_ = truth_pairs.len();
    prf
}

/// Score one specific field only.
pub fn score_field(extracted: &[ExtractedRecord], truth: &[TruthRecord], field: &str) -> Prf {
    let filtered_ex: Vec<ExtractedRecord> = extracted
        .iter()
        .map(|r| ExtractedRecord {
            fields: r
                .fields
                .iter()
                .filter(|(k, _)| k == field)
                .cloned()
                .collect(),
            ..r.clone()
        })
        .collect();
    let filtered_truth: Vec<TruthRecord> = truth
        .iter()
        .map(|t| TruthRecord {
            concept: t.concept,
            entity: t.entity,
            fields: t
                .fields
                .iter()
                .filter(|(k, _)| k == field)
                .cloned()
                .collect(),
        })
        .collect();
    score_fields(&filtered_ex, &filtered_truth)
}

/// Score whole records: an extracted record counts as correct if its
/// normalized field multiset is a (non-empty) subset of some truth record's
/// fields covering at least `min_fields` of them.
pub fn score_records(
    extracted: &[ExtractedRecord],
    truth: &[TruthRecord],
    min_fields: usize,
) -> Prf {
    let mut used: HashSet<usize> = HashSet::new();
    let mut prf = Prf::default();
    for rec in extracted {
        let mut matched = None;
        for (ti, t) in truth.iter().enumerate() {
            if used.contains(&ti) {
                continue;
            }
            let hits = rec
                .fields
                .iter()
                .filter(|(k, v)| {
                    t.fields
                        .iter()
                        .any(|(tk, tv)| tk == k && normalize(tv) == normalize(v))
                })
                .count();
            if hits >= min_fields.min(t.fields.len()).max(1) {
                matched = Some(ti);
                break;
            }
        }
        match matched {
            Some(ti) => {
                used.insert(ti);
                prf.tp += 1;
            }
            None => prf.fp += 1,
        }
    }
    prf.fn_ = truth.len() - used.len();
    prf
}

/// Collect the truth records of a given concept from a page.
pub fn truth_of_concept(page: &Page, concept: woc_lrec::ConceptId) -> Vec<&TruthRecord> {
    page.truth
        .records
        .iter()
        .filter(|t| t.concept == concept)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_lrec::{ConceptId, LrecId};

    fn ex(fields: &[(&str, &str)]) -> ExtractedRecord {
        ExtractedRecord {
            concept: None,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            confidence: 1.0,
            source_url: String::new(),
        }
    }

    fn tr(fields: &[(&str, &str)]) -> TruthRecord {
        TruthRecord {
            concept: ConceptId(0),
            entity: LrecId(0),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    #[test]
    fn prf_edge_cases() {
        let p = Prf::default();
        assert_eq!(p.precision(), 1.0);
        assert_eq!(p.recall(), 1.0);
        assert_eq!(p.f1(), 1.0, "vacuous truth: perfect P and R");
        let p = Prf {
            tp: 2,
            fp: 2,
            fn_: 2,
        };
        assert_eq!(p.precision(), 0.5);
        assert_eq!(p.recall(), 0.5);
        assert!((p.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn field_scoring_normalizes() {
        let prf = score_fields(
            &[ex(&[("phone", "(408) 555-0134"), ("zip", "99999")])],
            &[tr(&[("phone", "(408) 555-0134"), ("zip", "95014")])],
        );
        assert_eq!(prf.tp, 1);
        assert_eq!(prf.fp, 1);
        assert_eq!(prf.fn_, 1);
    }

    #[test]
    fn truth_pairs_claimed_once() {
        let prf = score_fields(
            &[ex(&[("zip", "95014"), ("zip", "95014")])],
            &[tr(&[("zip", "95014")])],
        );
        assert_eq!(prf.tp, 1);
        assert_eq!(prf.fp, 1);
    }

    #[test]
    fn record_scoring() {
        let prf = score_records(
            &[
                ex(&[("name", "Gochi"), ("zip", "95014")]),
                ex(&[("name", "Nonexistent"), ("zip", "00000")]),
            ],
            &[
                tr(&[("name", "Gochi"), ("zip", "95014"), ("phone", "x")]),
                tr(&[("name", "Other"), ("zip", "12345")]),
            ],
            2,
        );
        assert_eq!(prf.tp, 1);
        assert_eq!(prf.fp, 1);
        assert_eq!(prf.fn_, 1);
    }

    #[test]
    fn prf_merge() {
        let mut a = Prf {
            tp: 1,
            fp: 2,
            fn_: 3,
        };
        a.merge(Prf {
            tp: 4,
            fp: 5,
            fn_: 6,
        });
        assert_eq!(
            a,
            Prf {
                tp: 5,
                fp: 7,
                fn_: 9
            }
        );
    }
}
