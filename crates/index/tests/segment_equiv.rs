//! Differential scoring-equivalence harness: the segmented index vs a flat
//! rebuild, across churn levels, merge schedules, and thread counts.
//!
//! The contract under test (the whole point of `woc_index::segment`): at any
//! moment, [`SegmentedLrecIndex::search`] returns **bitwise-identical** hits
//! — ids, concepts, and score bits — to a flat [`LrecIndex`] freshly rebuilt
//! from the same live records and scored through the same pinned statistics;
//! and at every full-compaction point the pinned statistics *are* the flat
//! index's own, so the segmented index is indistinguishable from a
//! from-scratch rebuild (equal digests, equal plain-search answers).
//!
//! Knobs (for the CI matrix):
//! * `WOC_SEG_CHURN`  — comma-separated churn percentages (default `1,50`);
//! * `WOC_SEG_THREADS` — comma-separated searcher thread counts (default `1,8`).

use std::collections::BTreeMap;
use std::sync::Arc;

use woc_index::{
    scoped_term, FieldQuery, LrecIndex, MergePolicy, RecordChange, RecordHit, SegmentedLrecIndex,
};
use woc_lrec::{ConceptId, LrecId};

/// Deterministic split-mix style generator — the harness must replay
/// identically everywhere.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = self.0;
        (x ^ (x >> 33)).wrapping_mul(0xff51afd7ed558ccd) >> 17
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

const CITIES: &[&str] = &[
    "cupertino",
    "berkeley",
    "oakland",
    "jose",
    "francisco",
    "chicago",
    "austin",
    "portland",
];
const CUISINES: &[&str] = &[
    "mexican", "japanese", "italian", "thai", "indian", "french", "greek", "korean",
];
const WORDS: &[&str] = &[
    "gochi", "tapas", "cantina", "farolito", "udon", "house", "bistro", "grill", "garden",
    "palace", "corner", "express", "golden", "lotus", "river", "stone", "blue", "red",
];

/// Ground truth: id → (concept, indexed token sequence).
type Truth = BTreeMap<u64, (u32, Vec<String>)>;

/// Synthesize a record's token sequence the way `LrecIndex::record_tokens`
/// does: each word emitted unscoped and scoped by its field.
fn gen_tokens(rng: &mut Rng) -> Vec<String> {
    let mut toks = Vec::new();
    for _ in 0..1 + rng.below(3) {
        let w = WORDS[rng.below(WORDS.len())];
        toks.push(w.to_string());
        toks.push(scoped_term("name", w));
    }
    let city = CITIES[rng.below(CITIES.len())];
    toks.push(city.to_string());
    toks.push(scoped_term("city", city));
    let cuisine = CUISINES[rng.below(CUISINES.len())];
    toks.push(cuisine.to_string());
    toks.push(scoped_term("cuisine", cuisine));
    toks
}

fn seed_truth(rng: &mut Rng, n: u64) -> Truth {
    (1..=n)
        .map(|id| (id, (rng.below(3) as u32, gen_tokens(rng))))
        .collect()
}

fn entries_of(truth: &Truth) -> Vec<(LrecId, ConceptId, Vec<String>)> {
    truth
        .iter()
        .map(|(&id, (c, toks))| (LrecId(id), ConceptId(*c), toks.clone()))
        .collect()
}

/// The flat oracle: a from-scratch index over the live records in ascending
/// id order — exactly how the pipeline builds `woc.record_index`.
fn flat_of(truth: &Truth) -> LrecIndex {
    let mut flat = LrecIndex::new();
    for (&id, (c, toks)) in truth.iter() {
        flat.add_record_tokens(LrecId(id), ConceptId(*c), toks);
    }
    flat
}

fn resolver(name: &str) -> Option<ConceptId> {
    name.strip_prefix('c')
        .and_then(|s| s.parse().ok())
        .map(ConceptId)
}

/// A workload mixing free-text, multi-term, scoped, and concept-filtered
/// queries over the harness vocabulary.
fn queries() -> Vec<FieldQuery> {
    let mut qs: Vec<FieldQuery> = WORDS.iter().map(|w| FieldQuery::parse(w)).collect();
    qs.extend(
        CITIES
            .iter()
            .map(|c| FieldQuery::parse(&format!("city:{c}"))),
    );
    for raw in [
        "mexican cupertino",
        "udon house",
        "golden lotus river",
        "grill is:c0",
        "garden is:c1",
        "is:c2 palace",
        "cuisine:thai",
        "cuisine:italian stone",
        "name:gochi",
        "city:berkeley udon",
        "blue red golden",
        "zzzz-no-such-term",
    ] {
        qs.push(FieldQuery::parse(raw));
    }
    qs
}

fn assert_hits_identical(a: &[RecordHit], b: &[RecordHit], ctx: &str) {
    assert_eq!(
        a.len(),
        b.len(),
        "{ctx}: segmented returned {} hits, flat {}",
        a.len(),
        b.len()
    );
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{ctx}: hit ids diverge");
        assert_eq!(x.concept, y.concept, "{ctx}: hit concepts diverge");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{ctx}: score bits diverge for record {:?} ({} vs {})",
            x.id,
            x.score,
            y.score
        );
    }
}

/// The core differential assertion: segmented search == flat rebuild scored
/// through the segmented index's pinned stats, for every query and several k.
fn assert_equivalent(seg: &SegmentedLrecIndex, truth: &Truth, ctx: &str) {
    let flat = flat_of(truth);
    assert_eq!(
        seg.flatten().digest(),
        flat.digest(),
        "{ctx}: flattened live records diverge from truth"
    );
    assert_eq!(seg.live_len(), truth.len(), "{ctx}: live count diverges");
    for q in queries() {
        for k in [1usize, 3, 10] {
            let a = seg.search(&q, k, resolver);
            let b = flat.search_with_stats(&q, k, resolver, seg.pinned_stats());
            assert_hits_identical(&a, &b, &format!("{ctx}, query `{q}`, k={k}"));
        }
    }
}

/// One epoch of churn: update/remove ~`pct`% of live records and add a
/// proportional batch of new ones. Mutates `truth` and returns the delta.
fn churn_epoch(
    rng: &mut Rng,
    truth: &mut Truth,
    next_id: &mut u64,
    pct: usize,
) -> Vec<RecordChange> {
    let ids: Vec<u64> = truth.keys().copied().collect();
    let mut changes = Vec::new();
    for id in ids {
        if rng.below(100) >= pct {
            continue;
        }
        let concept = truth[&id].0;
        if rng.below(8) == 0 {
            truth.remove(&id);
            changes.push(RecordChange {
                id: LrecId(id),
                concept: ConceptId(concept),
                tokens: None,
            });
        } else {
            let toks = gen_tokens(rng);
            truth.insert(id, (concept, toks.clone()));
            changes.push(RecordChange {
                id: LrecId(id),
                concept: ConceptId(concept),
                tokens: Some(toks),
            });
        }
    }
    let adds = (truth.len() * pct / 400).max(1);
    for _ in 0..adds {
        let id = *next_id;
        *next_id += 1;
        let concept = rng.below(3) as u32;
        let toks = gen_tokens(rng);
        truth.insert(id, (concept, toks.clone()));
        changes.push(RecordChange {
            id: LrecId(id),
            concept: ConceptId(concept),
            tokens: Some(toks),
        });
    }
    changes
}

fn env_list(var: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(var) {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => default.to_vec(),
    }
}

/// Churn sweep: apply epochs of record churn through the default merge
/// policy (tiered merges and compactions fire on their own) and hold the
/// differential assertion at every epoch; finish at a forced merge point and
/// require full from-scratch identity.
#[test]
fn segmented_equals_flat_across_churn_epochs() {
    for churn in env_list("WOC_SEG_CHURN", &[1, 50]) {
        let mut rng = Rng(0x5eed + churn as u64);
        let mut truth = seed_truth(&mut rng, 160);
        let mut next_id = 161;
        let mut seg = SegmentedLrecIndex::new(entries_of(&truth), MergePolicy::default());
        assert_equivalent(&seg, &truth, &format!("churn {churn}%, epoch 0"));
        for epoch in 1..=8 {
            let changes = churn_epoch(&mut rng, &mut truth, &mut next_id, churn);
            seg.apply_delta(&changes);
            assert_equivalent(&seg, &truth, &format!("churn {churn}%, epoch {epoch}"));
        }
        // Forced merge point: the segmented index must now be byte-identical
        // to a from-scratch flat rebuild, pinned stats included.
        seg.compact();
        let flat = flat_of(&truth);
        assert_eq!(seg.base_segment().digest(), flat.digest());
        assert_eq!(seg.pinned_stats().digest(), flat.scoring_stats().digest());
        for q in queries() {
            let a = seg.search(&q, 10, resolver);
            let b = flat.search(&q, 10, resolver);
            assert_hits_identical(&a, &b, &format!("churn {churn}%, post-compaction `{q}`"));
        }
        assert!(
            seg.merge_count() + seg.compaction_count() > 0,
            "churn {churn}%: the merge policy never fired — harness too small"
        );
    }
}

/// Merge-schedule sweep: the same delta stack merged by different schedules
/// yields byte-identical postings (equal segment digests once fully merged)
/// and identical answers at every intermediate point.
#[test]
fn merge_schedules_are_order_independent() {
    let mut rng = Rng(0xabcd);
    let mut truth = seed_truth(&mut rng, 120);
    let mut next_id = 121;
    // A policy that never merges on its own: the schedules below are manual.
    let manual = MergePolicy {
        fanout: usize::MAX,
        compact_fraction: f64::INFINITY,
        max_deltas: usize::MAX,
    };
    let mut seg = SegmentedLrecIndex::new(entries_of(&truth), manual);
    for _ in 0..6 {
        let changes = churn_epoch(&mut rng, &mut truth, &mut next_id, 20);
        seg.apply_delta(&changes);
    }
    assert_eq!(seg.delta_count(), 6);

    // Schedule A: fold left. Schedule B: pairwise then fold. Schedule C: one
    // big merge. Each clone shares the same frozen segments at the start.
    let mut a = seg.clone();
    while a.delta_count() > 1 {
        a.merge_deltas(0, 1);
        assert_equivalent(&a, &truth, "schedule A (fold left)");
    }
    let mut b = seg.clone();
    b.merge_deltas(4, 5);
    b.merge_deltas(2, 3);
    b.merge_deltas(0, 1);
    assert_equivalent(&b, &truth, "schedule B (pairwise)");
    while b.delta_count() > 1 {
        b.merge_deltas(0, 1);
    }
    let mut c = seg.clone();
    c.merge_deltas(0, 5);
    assert_equivalent(&c, &truth, "schedule C (single merge)");

    // Byte-identical postings: the fully merged delta segment is the same
    // frozen artifact no matter the schedule.
    let da = a.delta_segments()[0].digest();
    let db = b.delta_segments()[0].digest();
    let dc = c.delta_segments()[0].digest();
    assert_eq!(da, db, "schedules A and B built different merged postings");
    assert_eq!(db, dc, "schedules B and C built different merged postings");
    // And the top-k agrees between schedules everywhere.
    for q in queries() {
        let ha = a.search(&q, 10, resolver);
        let hb = b.search(&q, 10, resolver);
        let hc = c.search(&q, 10, resolver);
        assert_hits_identical(&ha, &hb, &format!("A vs B, `{q}`"));
        assert_hits_identical(&hb, &hc, &format!("B vs C, `{q}`"));
    }
}

/// Thread sweep: concurrent searchers over one shared segmented index all
/// observe the flat-rebuild answers — the frozen segments are immutable, so
/// parallel readers cannot diverge.
#[test]
fn concurrent_searchers_match_flat() {
    for threads in env_list("WOC_SEG_THREADS", &[1, 8]) {
        let mut rng = Rng(0x7712ead5 + threads as u64);
        let mut truth = seed_truth(&mut rng, 140);
        let mut next_id = 141;
        let mut seg = SegmentedLrecIndex::new(entries_of(&truth), MergePolicy::default());
        for _ in 0..4 {
            let changes = churn_epoch(&mut rng, &mut truth, &mut next_id, 10);
            seg.apply_delta(&changes);
        }
        let seg = Arc::new(seg);
        let flat = Arc::new(flat_of(&truth));
        let handles: Vec<_> = (0..threads.max(1))
            .map(|t| {
                let seg = Arc::clone(&seg);
                let flat = Arc::clone(&flat);
                std::thread::spawn(move || {
                    for round in 0..8 {
                        for q in queries() {
                            let k = 1 + (t + round) % 10;
                            let a = seg.search(&q, k, resolver);
                            let b = flat.search_with_stats(&q, k, resolver, seg.pinned_stats());
                            assert_hits_identical(
                                &a,
                                &b,
                                &format!("thread {t}, round {round}, `{q}`, k={k}"),
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("searcher thread panicked");
        }
    }
}
