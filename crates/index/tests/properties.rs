//! Property tests: index round-trips and ranking invariants.

use proptest::prelude::*;
use woc_index::postings::{intersect, union, DocId, PostingList};
use woc_index::{FieldQuery, InvertedIndex, MergePolicy, RecordChange, SegmentedLrecIndex};
use woc_lrec::{ConceptId, LrecId};

proptest! {
    /// Posting lists round-trip through their byte encoding.
    #[test]
    fn postings_encode_decode(docs in prop::collection::btree_map(0u32..100_000, 1u32..50, 0..64)) {
        let mut pl = PostingList::new();
        for (&d, &tf) in &docs {
            pl.add_tf(DocId(d), tf);
        }
        let decoded = PostingList::decode(pl.encode()).unwrap();
        prop_assert_eq!(decoded, pl);
    }

    /// Every indexed document is findable by each of its own terms,
    /// and all scores are non-negative.
    #[test]
    fn indexed_docs_findable(docs in prop::collection::vec(
        prop::collection::vec("[a-e]{1,3}", 1..8), 1..12)) {
        let mut ix = InvertedIndex::new();
        for toks in &docs {
            ix.add_tokens(toks);
        }
        for (i, toks) in docs.iter().enumerate() {
            for t in toks {
                let hits = ix.search_terms(std::slice::from_ref(t), usize::MAX);
                prop_assert!(
                    hits.iter().any(|h| h.doc.0 as usize == i),
                    "doc {} not found for its own term {:?}", i, t
                );
                for h in &hits {
                    prop_assert!(h.score >= 0.0);
                }
            }
        }
    }

    /// Results are sorted by score descending, doc id ascending on ties,
    /// and top-k is a prefix of top-(k+1).
    #[test]
    fn ranking_sorted_and_prefix_stable(docs in prop::collection::vec(
        prop::collection::vec("[a-c]{1,2}", 1..6), 1..10), k in 1usize..6) {
        let mut ix = InvertedIndex::new();
        for toks in &docs {
            ix.add_tokens(toks);
        }
        let q = ["a".to_string(), "b".to_string()];
        let top_k = ix.search_terms(&q, k);
        let top_k1 = ix.search_terms(&q, k + 1);
        for w in top_k.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        prop_assert!(top_k.len() <= k);
        for (a, b) in top_k.iter().zip(&top_k1) {
            prop_assert_eq!(a.doc, b.doc);
        }
    }

    /// Phrase hits are a subset of AND hits, and an indexed document is
    /// always a phrase hit for any contiguous slice of its own tokens.
    #[test]
    fn phrase_subset_of_and(docs in prop::collection::vec(
        prop::collection::vec("[a-c]", 1..8), 1..8), start in 0usize..4, len in 1usize..4) {
        let mut ix = InvertedIndex::new();
        for toks in &docs {
            ix.add_tokens(toks);
        }
        // Pick a real slice of doc 0 as the phrase.
        let d0 = &docs[0];
        let start = start.min(d0.len() - 1);
        let end = (start + len).min(d0.len());
        let phrase = d0[start..end].join(" ");
        let phrase_hits = ix.search_phrase(&phrase);
        prop_assert!(
            phrase_hits.iter().any(|d| d.0 == 0),
            "doc 0 must match its own slice {:?}", phrase
        );
        let and_hits = ix.search_and(&phrase);
        for d in &phrase_hits {
            prop_assert!(and_hits.contains(d), "phrase hit missing from AND");
        }
    }

    /// Delta+varint encoding round-trips arbitrary sorted doc id lists,
    /// including huge gaps near the u32 ceiling (multi-byte varints).
    #[test]
    fn postings_roundtrip_large_gaps(docs in prop::collection::btree_map(
        0u32..u32::MAX - 1, 1u32..1_000_000, 0..32)) {
        let mut pl = PostingList::new();
        for (&d, &tf) in &docs {
            pl.add_tf(DocId(d), tf);
        }
        let decoded = PostingList::decode(pl.encode()).unwrap();
        prop_assert_eq!(&decoded, &pl);
        // Double round-trip: re-encoding the decoded list is byte-identical.
        prop_assert_eq!(decoded.encode(), pl.encode());
    }

    /// `intersect` agrees with the naive model: exactly the doc ids present
    /// in both lists, ascending.
    #[test]
    fn intersect_matches_naive_model(
        a in prop::collection::btree_map(0u32..2_000, 1u32..20, 0..48),
        b in prop::collection::btree_map(0u32..2_000, 1u32..20, 0..48)) {
        let mut pa = PostingList::new();
        for (&d, &tf) in &a { pa.add_tf(DocId(d), tf); }
        let mut pb = PostingList::new();
        for (&d, &tf) in &b { pb.add_tf(DocId(d), tf); }
        let naive: Vec<DocId> = a.keys()
            .filter(|d| b.contains_key(d))
            .map(|&d| DocId(d))
            .collect();
        prop_assert_eq!(intersect(&pa, &pb), naive);
    }

    /// `union` agrees with the naive model: every doc id from either side,
    /// ascending, with term frequencies summed on the overlap — and it
    /// round-trips through the byte encoding like any other list.
    #[test]
    fn union_matches_naive_model(
        a in prop::collection::btree_map(0u32..2_000, 1u32..20, 0..48),
        b in prop::collection::btree_map(0u32..2_000, 1u32..20, 0..48)) {
        let mut pa = PostingList::new();
        for (&d, &tf) in &a { pa.add_tf(DocId(d), tf); }
        let mut pb = PostingList::new();
        for (&d, &tf) in &b { pb.add_tf(DocId(d), tf); }
        let u = union(&pa, &pb);
        let mut naive: std::collections::BTreeMap<u32, u32> = a.clone();
        for (&d, &tf) in &b {
            *naive.entry(d).or_insert(0) += tf;
        }
        let got: Vec<(u32, u32)> = u.iter().map(|p| (p.doc.0, p.tf)).collect();
        let want: Vec<(u32, u32)> = naive.into_iter().collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(u.doc_freq() as usize,
            a.keys().chain(b.keys()).collect::<std::collections::BTreeSet<_>>().len());
        prop_assert_eq!(PostingList::decode(u.encode()).unwrap(), u);
    }

    /// `FieldQuery::parse` never panics on arbitrary byte soup, and neither
    /// do `to_string` and `normalized` on whatever it produced.
    #[test]
    fn field_query_parse_total(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        let soup = String::from_utf8_lossy(&bytes);
        let fq = FieldQuery::parse(&soup);
        let _ = fq.to_string();
        let _ = fq.normalized().to_string();
    }

    /// `parse → to_string → parse` is idempotent for any input: one render
    /// cycle canonicalizes the query, after which re-parsing the rendering
    /// reproduces it exactly. The serving cache keys on this stability.
    #[test]
    fn field_query_render_fixed_point(raw in ".{0,48}") {
        let fq1 = FieldQuery::parse(&raw);
        let fq2 = FieldQuery::parse(&fq1.to_string());
        let fq3 = FieldQuery::parse(&fq2.to_string());
        prop_assert_eq!(&fq3, &fq2, "render of {:?} not stable", raw);
        // Normalization commutes with the render cycle.
        let norm = fq2.normalized();
        prop_assert_eq!(FieldQuery::parse(&norm.to_string()), norm);
    }

    /// Well-formed queries (plain terms, `field:value`, quoted values,
    /// `is:` concept filters) hit the fixed point on the *first* render.
    #[test]
    fn field_query_well_formed_round_trip(
        terms in prop::collection::vec("[a-z]{1,6}", 0..4),
        scoped in prop::collection::vec(("[a-z]{1,4}", "[a-z]{1,6}"), 0..3),
        quoted in prop::option::of(("[a-z]{1,4}", "[a-z]{1,4}", "[a-z]{1,4}")),
        concept in prop::option::of("[a-z]{1,6}")) {
        let mut parts: Vec<String> = terms;
        for (f, v) in &scoped {
            parts.push(format!("{f}:{v}"));
        }
        if let Some((f, v1, v2)) = &quoted {
            // Quoted multi-word value: city:"san jose" scopes both words.
            parts.push(format!("{f}:\"{v1} {v2}\""));
        }
        if let Some(c) = &concept {
            parts.push(format!("is:{c}"));
        }
        let raw = parts.join(" ");
        let fq1 = FieldQuery::parse(&raw);
        if let Some((f, v1, v2)) = &quoted {
            prop_assert!(fq1.scoped.contains(&(f.clone(), v1.clone())));
            prop_assert!(fq1.scoped.contains(&(f.clone(), v2.clone())));
        }
        prop_assert_eq!(FieldQuery::parse(&fq1.to_string()), fq1);
    }

    /// Boolean AND result is exactly the set of documents containing all terms.
    #[test]
    fn boolean_and_exact(docs in prop::collection::vec(
        prop::collection::vec("[a-c]", 0..5), 0..10)) {
        let mut ix = InvertedIndex::new();
        for toks in &docs {
            ix.add_tokens(toks);
        }
        let found = ix.search_and("a b");
        for (i, toks) in docs.iter().enumerate() {
            let has_both = toks.iter().any(|t| t == "a") && toks.iter().any(|t| t == "b");
            let in_result = found.iter().any(|d| d.0 as usize == i);
            prop_assert_eq!(has_both, in_result, "doc {} tokens {:?}", i, toks);
        }
    }

    /// Block-max pruning never changes the returned top-k: same docs, same
    /// order, same score bits as exhaustive scoring — under an arbitrary
    /// (superset) stats snapshot, an arbitrary dead set, any block size.
    #[test]
    fn pruned_search_equals_exhaustive(
        docs in prop::collection::vec(prop::collection::vec("[a-f]{1,2}", 0..10), 1..24),
        extra in prop::collection::vec(prop::collection::vec("[a-f]{1,2}", 0..10), 0..8),
        query in prop::collection::vec("[a-f]{1,2}", 1..5),
        k in 1usize..8,
        dead_mask in 0u32..=u32::MAX,
        block in 1usize..5)
    {
        let mut ix = InvertedIndex::new();
        for toks in &docs {
            ix.add_tokens(toks);
        }
        // Pinned-stats serving situation: the snapshot covers a superset
        // corpus, so idf and average length differ from the index's own.
        let mut superset = ix.clone();
        for toks in &extra {
            superset.add_tokens(toks);
        }
        let stats = superset.scoring_stats();
        let dead: std::collections::HashSet<DocId> = (0..docs.len() as u32)
            .filter(|d| dead_mask & (1u32 << (d % 32)) != 0)
            .map(DocId)
            .collect();
        let bm = ix.block_max(block);
        let pruned = ix.search_terms_pruned_with_stats(&query, k, &stats, &bm, &dead);
        // Exhaustive oracle: score everything, drop dead docs, take top k.
        let mut all = ix.search_terms_with_stats(&query, usize::MAX, &stats);
        all.retain(|h| !dead.contains(&h.doc));
        all.truncate(k);
        prop_assert_eq!(pruned.len(), all.len(), "hit counts diverge");
        for (p, e) in pruned.iter().zip(&all) {
            prop_assert_eq!(p.doc, e.doc);
            prop_assert_eq!(p.score.to_bits(), e.score.to_bits(),
                "score bits diverge for {:?}", p.doc);
        }
    }

    /// Segment merging is associative and order-independent: any merge
    /// schedule over the same deltas yields byte-identical postings (equal
    /// frozen-segment digests once fully merged) and identical top-k.
    #[test]
    fn segment_merge_schedule_independent(
        base in prop::collection::btree_map(
            0u64..40, (0u32..3, prop::collection::vec("[a-d]{1,2}", 1..6)), 1..16),
        deltas in prop::collection::vec(
            prop::collection::btree_map(
                0u64..48,
                prop::option::of((0u32..3, prop::collection::vec("[a-d]{1,2}", 1..6))),
                1..8),
            2..5),
        schedule_seed in 0u64..=u64::MAX,
        query in prop::collection::vec("[a-d]{1,2}", 1..4))
    {
        // Manual policy: the schedules below are the only merges.
        let manual = MergePolicy {
            fanout: usize::MAX,
            compact_fraction: f64::INFINITY,
            max_deltas: usize::MAX,
        };
        let entries: Vec<_> = base
            .iter()
            .map(|(&id, (c, t))| (LrecId(id), ConceptId(*c), t.clone()))
            .collect();
        let mut seg = SegmentedLrecIndex::new(entries, manual);
        for d in &deltas {
            let changes: Vec<RecordChange> = d
                .iter()
                .map(|(&id, v)| RecordChange {
                    id: LrecId(id),
                    concept: ConceptId(v.as_ref().map(|(c, _)| *c).unwrap_or(0)),
                    tokens: v.as_ref().map(|(_, t)| t.clone()),
                })
                .collect();
            seg.apply_delta(&changes);
        }
        // Schedule A: fold left. Schedule B: seed-driven adjacent merges.
        let mut a = seg.clone();
        while a.delta_count() > 1 {
            a.merge_deltas(0, 1);
        }
        let mut b = seg.clone();
        let mut s = schedule_seed;
        while b.delta_count() > 1 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = ((s >> 33) as usize) % (b.delta_count() - 1);
            b.merge_deltas(i, i + 1);
        }
        if a.delta_count() == 1 && b.delta_count() == 1 {
            prop_assert_eq!(
                a.delta_segments()[0].digest(),
                b.delta_segments()[0].digest(),
                "schedules built different merged postings"
            );
        }
        prop_assert_eq!(a.flatten().digest(), b.flatten().digest());
        let fq = FieldQuery { terms: query, scoped: Vec::new(), concept: None };
        let ha = a.search(&fq, 10, |_| None);
        let hb = b.search(&fq, 10, |_| None);
        prop_assert_eq!(ha.len(), hb.len());
        for (x, y) in ha.iter().zip(&hb) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
        // And both agree with the flat oracle through the pinned stats.
        let flat = a.flatten();
        let hf = flat.search_with_stats(&fq, 10, |_| None, a.pinned_stats());
        prop_assert_eq!(ha, hf);
    }
}
