//! Property tests: index round-trips and ranking invariants.

use proptest::prelude::*;
use woc_index::postings::{DocId, PostingList};
use woc_index::InvertedIndex;

proptest! {
    /// Posting lists round-trip through their byte encoding.
    #[test]
    fn postings_encode_decode(docs in prop::collection::btree_map(0u32..100_000, 1u32..50, 0..64)) {
        let mut pl = PostingList::new();
        for (&d, &tf) in &docs {
            pl.add_tf(DocId(d), tf);
        }
        let decoded = PostingList::decode(pl.encode()).unwrap();
        prop_assert_eq!(decoded, pl);
    }

    /// Every indexed document is findable by each of its own terms,
    /// and all scores are non-negative.
    #[test]
    fn indexed_docs_findable(docs in prop::collection::vec(
        prop::collection::vec("[a-e]{1,3}", 1..8), 1..12)) {
        let mut ix = InvertedIndex::new();
        for toks in &docs {
            ix.add_tokens(toks);
        }
        for (i, toks) in docs.iter().enumerate() {
            for t in toks {
                let hits = ix.search_terms(std::slice::from_ref(t), usize::MAX);
                prop_assert!(
                    hits.iter().any(|h| h.doc.0 as usize == i),
                    "doc {} not found for its own term {:?}", i, t
                );
                for h in &hits {
                    prop_assert!(h.score >= 0.0);
                }
            }
        }
    }

    /// Results are sorted by score descending, doc id ascending on ties,
    /// and top-k is a prefix of top-(k+1).
    #[test]
    fn ranking_sorted_and_prefix_stable(docs in prop::collection::vec(
        prop::collection::vec("[a-c]{1,2}", 1..6), 1..10), k in 1usize..6) {
        let mut ix = InvertedIndex::new();
        for toks in &docs {
            ix.add_tokens(toks);
        }
        let q = ["a".to_string(), "b".to_string()];
        let top_k = ix.search_terms(&q, k);
        let top_k1 = ix.search_terms(&q, k + 1);
        for w in top_k.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        prop_assert!(top_k.len() <= k);
        for (a, b) in top_k.iter().zip(&top_k1) {
            prop_assert_eq!(a.doc, b.doc);
        }
    }

    /// Phrase hits are a subset of AND hits, and an indexed document is
    /// always a phrase hit for any contiguous slice of its own tokens.
    #[test]
    fn phrase_subset_of_and(docs in prop::collection::vec(
        prop::collection::vec("[a-c]", 1..8), 1..8), start in 0usize..4, len in 1usize..4) {
        let mut ix = InvertedIndex::new();
        for toks in &docs {
            ix.add_tokens(toks);
        }
        // Pick a real slice of doc 0 as the phrase.
        let d0 = &docs[0];
        let start = start.min(d0.len() - 1);
        let end = (start + len).min(d0.len());
        let phrase = d0[start..end].join(" ");
        let phrase_hits = ix.search_phrase(&phrase);
        prop_assert!(
            phrase_hits.iter().any(|d| d.0 == 0),
            "doc 0 must match its own slice {:?}", phrase
        );
        let and_hits = ix.search_and(&phrase);
        for d in &phrase_hits {
            prop_assert!(and_hits.contains(d), "phrase hit missing from AND");
        }
    }

    /// Boolean AND result is exactly the set of documents containing all terms.
    #[test]
    fn boolean_and_exact(docs in prop::collection::vec(
        prop::collection::vec("[a-c]", 0..5), 0..10)) {
        let mut ix = InvertedIndex::new();
        for toks in &docs {
            ix.add_tokens(toks);
        }
        let found = ix.search_and("a b");
        for (i, toks) in docs.iter().enumerate() {
            let has_both = toks.iter().any(|t| t == "a") && toks.iter().any(|t| t == "b");
            let in_result = found.iter().any(|d| d.0 as usize == i);
            prop_assert_eq!(has_both, in_result, "doc {} tokens {:?}", i, toks);
        }
    }
}
