//! LSM-style segmented record index: a frozen base segment with *pinned*
//! corpus-global scoring statistics plus small frozen delta segments, merged
//! by a deterministic size-tiered policy.
//!
//! The design exists for one property: **byte-identical scoring with a
//! surviving cache**. BM25 mixes per-record quantities (tf, record length)
//! with corpus-global ones (df, mean length). Rebuilding the flat index on
//! every maintenance epoch shifts the global quantities, which shifts *every*
//! score, which forces the serving layer to drop its entire result cache.
//! Pinning the global statistics at base-freeze time and scoring every
//! segment through the pinned snapshot
//! ([`InvertedIndex::search_terms_pruned_with_stats`]) makes a record's score
//! a pure function of its own frozen content — so a query whose posting
//! lists a delta did not touch returns bitwise-identical results across
//! epochs, and its cached answer stays valid.
//!
//! The pinned statistics drift from the true corpus statistics as deltas
//! accumulate; a *full compaction* re-freezes a single base segment and
//! re-pins the stats (the one event that invalidates all cached scores).
//! Between compactions, equivalence is defined against — and tested
//! against — a flat [`LrecIndex`] over the same live records scored through
//! the same pinned snapshot; at every compaction point the pinned snapshot
//! *is* the flat index's own statistics, so the two-tier index is
//! indistinguishable from a from-scratch rebuild.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use woc_lrec::{ConceptId, LrecId};

use crate::index::{BlockMaxIndex, InvertedIndex, ScoringStats};
use crate::lrec_index::{scoped_term, FieldQuery, LrecIndex, RecordHit};
use crate::postings::DocId;

/// Postings per block-max block in frozen segments.
pub const SEGMENT_BLOCK: usize = 64;

/// One record-level change for [`SegmentedLrecIndex::apply_delta`]: an
/// upsert carries the record's full new token sequence (see
/// [`LrecIndex::record_tokens`]); a removal carries `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordChange {
    /// The record.
    pub id: LrecId,
    /// Its concept.
    pub concept: ConceptId,
    /// New token sequence, or `None` to tombstone the record.
    pub tokens: Option<Vec<String>>,
}

/// Deterministic merge policy: size-tiered delta merging plus a full
/// compaction trigger. All thresholds are compared the same way on every
/// replica, so two indexes fed the same deltas always take the same merges.
#[derive(Debug, Clone, Copy)]
pub struct MergePolicy {
    /// Merge any run of this many adjacent same-tier deltas (tier =
    /// `floor(log2(records))`).
    pub fanout: usize,
    /// Full compaction when the delta tier holds more than this fraction of
    /// the base segment's records.
    pub compact_fraction: f64,
    /// Full compaction whenever more than this many deltas remain after
    /// tiered merging.
    pub max_deltas: usize,
}

impl Default for MergePolicy {
    fn default() -> Self {
        Self {
            fanout: 4,
            compact_fraction: 0.5,
            max_deltas: 12,
        }
    }
}

/// What one [`SegmentedLrecIndex::apply_delta`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// A new delta segment was frozen.
    pub delta_added: bool,
    /// Tiered merges performed by the policy.
    pub merges: usize,
    /// A full compaction ran: the base was re-frozen and the scoring stats
    /// re-pinned, so *all* previously issued scores are invalidated.
    pub repinned: bool,
}

/// One frozen segment: records indexed in ascending id order, with retained
/// token sequences (merges re-index them verbatim) and frozen block-max
/// pruning metadata.
#[derive(Debug)]
pub struct LrecSegment {
    /// `(id, concept, tokens)` in strictly ascending id order; local doc id
    /// `i` is the record at `entries[i]`.
    entries: Vec<(LrecId, ConceptId, Vec<String>)>,
    index: InvertedIndex,
    by_lrec: HashMap<LrecId, DocId>,
    blockmax: BlockMaxIndex,
}

impl LrecSegment {
    /// Freeze a segment from entries in strictly ascending id order.
    pub fn build(entries: Vec<(LrecId, ConceptId, Vec<String>)>) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "segment entries must be strictly ascending by record id"
        );
        let mut index = InvertedIndex::new();
        let mut by_lrec = HashMap::with_capacity(entries.len());
        for (id, _, tokens) in &entries {
            let doc = index.add_tokens(tokens);
            by_lrec.insert(*id, doc);
        }
        let blockmax = index.block_max(SEGMENT_BLOCK);
        Self {
            entries,
            index,
            by_lrec,
            blockmax,
        }
    }

    /// Records in this segment (live or shadowed).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record ids in this segment, ascending.
    pub fn ids(&self) -> impl Iterator<Item = LrecId> + '_ {
        self.entries.iter().map(|(id, _, _)| *id)
    }

    /// Scoring statistics of this segment's own contents (the values pinned
    /// when the segment is frozen as a base).
    pub fn scoring_stats(&self) -> ScoringStats {
        self.index.scoring_stats()
    }

    /// Content digest over the inner index and the record/concept mapping.
    pub fn digest(&self) -> u64 {
        const PRIME: u64 = 0x100000001b3;
        let mut h = self.index.digest();
        for (id, concept, _) in &self.entries {
            h ^= id.0;
            h = h.wrapping_mul(PRIME);
            h ^= concept.0 as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    fn entry(&self, doc: DocId) -> (LrecId, ConceptId) {
        let (id, concept, _) = self.entries[doc.0 as usize];
        (id, concept)
    }

    fn has_term(&self, id: LrecId, term: &str) -> bool {
        self.by_lrec
            .get(&id)
            .is_some_and(|&doc| !self.index.positions(term, doc).is_empty())
    }
}

/// The two-tier segmented record index: `base` + `deltas`, all scored
/// through the pinned [`ScoringStats`] — see the module docs for why.
///
/// Within each segment, a record may be *dead*: shadowed by a newer version
/// in a later segment, or tombstoned. Dead records are skipped during
/// scoring without occupying result slots, so the index always answers as if
/// it held exactly the newest live version of every record.
#[derive(Debug, Clone)]
pub struct SegmentedLrecIndex {
    base: Arc<LrecSegment>,
    deltas: Vec<Arc<LrecSegment>>,
    /// Dead local docs per slot (`0` = base, `1..` = deltas).
    dead: Vec<HashSet<DocId>>,
    /// Record id → slot holding its live version.
    live: HashMap<LrecId, usize>,
    tombstones: BTreeSet<LrecId>,
    pinned: ScoringStats,
    policy: MergePolicy,
    merges: u64,
    compactions: u64,
}

impl SegmentedLrecIndex {
    /// Freeze `entries` (strictly ascending by id) as the base segment and
    /// pin its scoring statistics.
    pub fn new(entries: Vec<(LrecId, ConceptId, Vec<String>)>, policy: MergePolicy) -> Self {
        let base = Arc::new(LrecSegment::build(entries));
        let pinned = base.scoring_stats();
        let mut seg = Self {
            base,
            deltas: Vec::new(),
            dead: Vec::new(),
            live: HashMap::new(),
            tombstones: BTreeSet::new(),
            pinned,
            policy,
            merges: 0,
            compactions: 0,
        };
        seg.reindex();
        seg
    }

    /// The pinned corpus-global statistics every segment scores through.
    pub fn pinned_stats(&self) -> &ScoringStats {
        &self.pinned
    }

    /// The frozen base segment (shared: replicas holding an equal `Arc`
    /// provably serve identical base postings).
    pub fn base_segment(&self) -> &Arc<LrecSegment> {
        &self.base
    }

    /// The frozen delta segments, oldest first.
    pub fn delta_segments(&self) -> &[Arc<LrecSegment>] {
        &self.deltas
    }

    /// Number of delta segments currently stacked on the base.
    pub fn delta_count(&self) -> usize {
        self.deltas.len()
    }

    /// Live records across all segments.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Live record ids, ascending.
    pub fn live_ids(&self) -> Vec<LrecId> {
        let mut ids: Vec<LrecId> = self.live.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Slot index (`0` = base) of the segment serving `id`, if live.
    pub fn owner_of(&self, id: LrecId) -> Option<usize> {
        self.live.get(&id).copied()
    }

    /// Tombstoned record ids, ascending.
    pub fn tombstoned(&self) -> Vec<LrecId> {
        self.tombstones.iter().copied().collect()
    }

    /// Tiered merges performed over this index's lifetime.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Full compactions (stat re-pins) over this index's lifetime.
    pub fn compaction_count(&self) -> u64 {
        self.compactions
    }

    /// Total segments (base + deltas).
    pub fn segment_count(&self) -> usize {
        1 + self.deltas.len()
    }

    /// `(id, dead)` for every record in slot `slot`, reading the *actual*
    /// per-slot dead set the search path skips through — the audit's raw
    /// view of segment membership, cross-checked against [`Self::owner_of`]
    /// (which reads the independent live map feeding [`Self::flatten`]).
    pub fn slot_entries(&self, slot: usize) -> Vec<(LrecId, bool)> {
        let seg = self.slot(slot);
        seg.ids()
            .map(|id| (id, self.dead[slot].contains(&seg.by_lrec[&id])))
            .collect()
    }

    fn slot(&self, slot: usize) -> &Arc<LrecSegment> {
        if slot == 0 {
            &self.base
        } else {
            &self.deltas[slot - 1]
        }
    }

    /// Recompute the live map and per-slot dead sets from segment order and
    /// tombstones. Runs after every structural change; by construction the
    /// result depends only on (segment contents in order, tombstones), never
    /// on the mutation path that produced them.
    fn reindex(&mut self) {
        self.live.clear();
        for slot in 0..self.segment_count() {
            for id in self.slot(slot).ids().collect::<Vec<_>>() {
                self.live.insert(id, slot);
            }
        }
        for id in &self.tombstones {
            self.live.remove(id);
        }
        self.dead = (0..self.segment_count())
            .map(|slot| {
                self.slot(slot)
                    .ids()
                    .enumerate()
                    .filter(|(_, id)| self.live.get(id) != Some(&slot))
                    .map(|(i, _)| DocId(i as u32))
                    .collect()
            })
            .collect();
    }

    /// Apply one maintenance epoch's record changes: freeze the upserts as a
    /// new delta segment, tombstone the removals, then run the merge policy.
    pub fn apply_delta(&mut self, changes: &[RecordChange]) -> DeltaOutcome {
        let mut outcome = DeltaOutcome::default();
        if changes.is_empty() {
            return outcome;
        }
        let mut upserts: Vec<(LrecId, ConceptId, Vec<String>)> = changes
            .iter()
            .filter_map(|c| c.tokens.as_ref().map(|t| (c.id, c.concept, t.clone())))
            .collect();
        upserts.sort_unstable_by_key(|(id, _, _)| *id);
        assert!(
            upserts.windows(2).all(|w| w[0].0 < w[1].0),
            "a delta must carry at most one change per record"
        );
        for c in changes {
            if c.tokens.is_none() {
                self.tombstones.insert(c.id);
            } else {
                self.tombstones.remove(&c.id);
            }
        }
        if !upserts.is_empty() {
            self.deltas.push(Arc::new(LrecSegment::build(upserts)));
            outcome.delta_added = true;
        }
        self.reindex();
        outcome.merges = self.run_tier_merges();
        if self.should_compact() {
            self.compact();
            outcome.repinned = true;
        }
        outcome
    }

    fn tier(len: usize) -> u32 {
        usize::BITS - 1 - len.max(1).leading_zeros()
    }

    /// Merge runs of ≥ `fanout` adjacent same-tier deltas, leftmost first,
    /// until none remain. Returns the number of merges performed.
    fn run_tier_merges(&mut self) -> usize {
        let fanout = self.policy.fanout.max(2);
        let mut merges = 0;
        loop {
            let tiers: Vec<u32> = self.deltas.iter().map(|d| Self::tier(d.len())).collect();
            if tiers.len() < fanout {
                break;
            }
            let run = (0..=tiers.len() - fanout)
                .find(|&i| tiers[i..i + fanout].iter().all(|&t| t == tiers[i]));
            match run {
                Some(start) => {
                    self.merge_deltas(start, start + fanout - 1);
                    merges += 1;
                }
                None => break,
            }
        }
        merges
    }

    fn should_compact(&self) -> bool {
        if self.deltas.len() > self.policy.max_deltas {
            return true;
        }
        let delta_records: usize = self.deltas.iter().map(|d| d.len()).sum();
        delta_records as f64 > self.policy.compact_fraction * self.base.len().max(1) as f64
    }

    /// Merge adjacent delta slots `start..=end` (0-based positions within
    /// the delta stack) into one frozen segment. Newest version of each
    /// record wins; entries re-freeze in ascending id order, so the merged
    /// segment's postings are a pure function of the input segments —
    /// independent of the schedule that produced them.
    pub fn merge_deltas(&mut self, start: usize, end: usize) {
        assert!(
            start <= end && end < self.deltas.len(),
            "merge range {start}..={end} out of bounds ({} deltas)",
            self.deltas.len()
        );
        let mut newest: HashMap<LrecId, (ConceptId, Vec<String>)> = HashMap::new();
        for seg in &self.deltas[start..=end] {
            for (id, concept, tokens) in &seg.entries {
                newest.insert(*id, (*concept, tokens.clone()));
            }
        }
        let mut entries: Vec<(LrecId, ConceptId, Vec<String>)> = newest
            .into_iter()
            .map(|(id, (concept, tokens))| (id, concept, tokens))
            .collect();
        entries.sort_unstable_by_key(|(id, _, _)| *id);
        let merged = Arc::new(LrecSegment::build(entries));
        self.deltas.splice(start..=end, [merged]);
        self.merges += 1;
        self.reindex();
    }

    /// Full compaction: re-freeze every live record into a single base
    /// segment and re-pin the scoring statistics. After this, the segmented
    /// index is byte-identical (see [`SegmentedLrecIndex::flatten`]) to a
    /// flat index rebuilt from scratch, and the pinned stats equal that flat
    /// index's own statistics.
    pub fn compact(&mut self) {
        let mut ids: Vec<LrecId> = self.live.keys().copied().collect();
        ids.sort_unstable();
        let entries: Vec<(LrecId, ConceptId, Vec<String>)> = ids
            .into_iter()
            .map(|id| {
                let slot = self.live[&id];
                let seg = self.slot(slot);
                let doc = seg.by_lrec[&id];
                let (_, concept, tokens) = &seg.entries[doc.0 as usize];
                (id, *concept, tokens.clone())
            })
            .collect();
        self.base = Arc::new(LrecSegment::build(entries));
        self.deltas.clear();
        self.tombstones.clear();
        self.pinned = self.base.scoring_stats();
        self.compactions += 1;
        self.reindex();
    }

    /// Search with a parsed [`FieldQuery`], scoring every segment through
    /// the pinned statistics with block-max pruning. Returns exactly what a
    /// flat [`LrecIndex`] over the live records would return from
    /// [`LrecIndex::search_with_stats`] with the same pinned snapshot — same
    /// hits, same order, same score bits (the differential harness in
    /// `tests/segment_equiv.rs` holds this across churn and merge schedules).
    pub fn search(
        &self,
        query: &FieldQuery,
        k: usize,
        concept_resolver: impl Fn(&str) -> Option<ConceptId>,
    ) -> Vec<RecordHit> {
        let mut terms: Vec<String> = query.terms.clone();
        for (f, t) in &query.scoped {
            terms.push(scoped_term(f, t));
        }
        let concept_filter = query.concept.as_deref().and_then(&concept_resolver);
        // Over-fetch when filtering by concept, then trim — mirrors the flat
        // path exactly.
        let fetch = if concept_filter.is_some() {
            k * 8 + 32
        } else {
            k
        };
        let mut merged: Vec<RecordHit> = Vec::new();
        for slot in 0..self.segment_count() {
            let seg = self.slot(slot);
            for h in seg.index.search_terms_pruned_with_stats(
                &terms,
                fetch,
                &self.pinned,
                &seg.blockmax,
                &self.dead[slot],
            ) {
                let (id, concept) = seg.entry(h.doc);
                merged.push(RecordHit {
                    id,
                    concept,
                    score: h.score,
                });
            }
        }
        // Flat doc ids are assigned in ascending record-id order, so the
        // flat `(score desc, doc asc)` tie-break is `(score desc, id asc)`.
        merged.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        merged.truncate(fetch);
        let mut out: Vec<RecordHit> = merged
            .into_iter()
            .filter(|h| concept_filter.is_none_or(|c| h.concept == c))
            .collect();
        if !query.scoped.is_empty() {
            let required: Vec<String> = query
                .scoped
                .iter()
                .map(|(f, t)| scoped_term(f, t))
                .collect();
            out.retain(|h| {
                let seg = self.slot(self.live[&h.id]);
                required.iter().all(|rt| seg.has_term(h.id, rt))
            });
        }
        out.truncate(k);
        out
    }

    /// Build the flat [`LrecIndex`] this segmented index is equivalent to:
    /// every live record, ascending id order. Used by the differential
    /// harness and the W014 audit; at compaction points its digest equals
    /// the base segment's.
    pub fn flatten(&self) -> LrecIndex {
        let mut flat = LrecIndex::new();
        let mut ids: Vec<LrecId> = self.live.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let seg = self.slot(self.live[&id]);
            let doc = seg.by_lrec[&id];
            let (_, concept, tokens) = &seg.entries[doc.0 as usize];
            flat.add_record_tokens(id, *concept, tokens);
        }
        flat
    }

    /// Content digest over all segments, liveness, tombstones and the pinned
    /// stats — equal digests mean two replicas serve identical answers.
    pub fn digest(&self) -> u64 {
        const PRIME: u64 = 0x100000001b3;
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(PRIME);
        };
        for slot in 0..self.segment_count() {
            mix(self.slot(slot).digest());
            let mut dead: Vec<u32> = self.dead[slot].iter().map(|d| d.0).collect();
            dead.sort_unstable();
            for d in dead {
                mix(d as u64);
            }
            mix(u64::MAX);
        }
        for id in &self.tombstones {
            mix(id.0);
        }
        mix(self.pinned.digest());
        h
    }

    /// Corrupt the liveness of `id` by reassigning it to `slot` (out of
    /// range = drop it entirely) *without* reindexing — test hook for the
    /// W014 segment-consistency audit. Hidden: never call outside tests.
    #[doc(hidden)]
    pub fn corrupt_set_owner(&mut self, id: LrecId, slot: Option<usize>) {
        match slot {
            Some(s) => {
                self.live.insert(id, s);
            }
            None => {
                self.live.remove(&id);
            }
        }
    }

    /// Corrupt the per-slot dead set for `id` — test hook for W014.
    #[doc(hidden)]
    pub fn corrupt_set_dead(&mut self, slot: usize, id: LrecId, dead: bool) {
        if let Some(&doc) = self.slot(slot).by_lrec.get(&id) {
            if dead {
                self.dead[slot].insert(doc);
            } else {
                self.dead[slot].remove(&doc);
            }
        }
    }

    /// Corrupt the pinned statistics — test hook for W014.
    #[doc(hidden)]
    pub fn corrupt_pinned_stats(&mut self, stats: ScoringStats) {
        self.pinned = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    fn entry(id: u64, concept: u32, words: &[&str]) -> (LrecId, ConceptId, Vec<String>) {
        (LrecId(id), ConceptId(concept), toks(words))
    }

    fn base() -> SegmentedLrecIndex {
        SegmentedLrecIndex::new(
            vec![
                entry(1, 0, &["gochi", "tapas", "cupertino"]),
                entry(2, 0, &["farolito", "mexican", "francisco"]),
                entry(3, 0, &["cantina", "mexican", "jose"]),
            ],
            MergePolicy {
                fanout: 4,
                compact_fraction: 100.0,
                max_deltas: 100,
            },
        )
    }

    fn q(terms: &[&str]) -> FieldQuery {
        FieldQuery {
            terms: toks(terms),
            scoped: Vec::new(),
            concept: None,
        }
    }

    #[test]
    fn base_matches_flat_rebuild() {
        let seg = base();
        assert_eq!(seg.flatten().digest(), {
            let mut flat = LrecIndex::new();
            flat.add_record_tokens(
                LrecId(1),
                ConceptId(0),
                &toks(&["gochi", "tapas", "cupertino"]),
            );
            flat.add_record_tokens(
                LrecId(2),
                ConceptId(0),
                &toks(&["farolito", "mexican", "francisco"]),
            );
            flat.add_record_tokens(
                LrecId(3),
                ConceptId(0),
                &toks(&["cantina", "mexican", "jose"]),
            );
            flat.digest()
        });
        assert_eq!(seg.base_segment().digest(), seg.flatten().digest());
        assert_eq!(
            seg.pinned_stats().digest(),
            seg.flatten().scoring_stats().digest()
        );
    }

    #[test]
    fn delta_shadows_and_tombstones() {
        let mut seg = base();
        let out = seg.apply_delta(&[
            RecordChange {
                id: LrecId(2),
                concept: ConceptId(0),
                tokens: Some(toks(&["farolito", "nuevo", "oakland"])),
            },
            RecordChange {
                id: LrecId(3),
                concept: ConceptId(0),
                tokens: None,
            },
            RecordChange {
                id: LrecId(4),
                concept: ConceptId(0),
                tokens: Some(toks(&["udon", "house", "berkeley"])),
            },
        ]);
        assert!(out.delta_added);
        assert!(!out.repinned);
        assert_eq!(seg.live_len(), 3);
        assert_eq!(seg.owner_of(LrecId(2)), Some(1));
        assert_eq!(seg.owner_of(LrecId(3)), None);
        assert_eq!(seg.tombstoned(), vec![LrecId(3)]);
        // The shadowed old version never surfaces.
        let hits = seg.search(&q(&["francisco"]), 10, |_| None);
        assert!(hits.is_empty());
        let hits = seg.search(&q(&["oakland"]), 10, |_| None);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, LrecId(2));
        // Tombstoned record is gone.
        assert!(seg.search(&q(&["jose"]), 10, |_| None).is_empty());
        // Equivalence against the flat rebuild through pinned stats.
        let flat = seg.flatten();
        for query in [q(&["mexican"]), q(&["udon", "berkeley"]), q(&["gochi"])] {
            let a = seg.search(&query, 10, |_| None);
            let b = flat.search_with_stats(&query, 10, |_| None, seg.pinned_stats());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn compaction_repins_to_flat_identity() {
        let mut seg = base();
        seg.apply_delta(&[RecordChange {
            id: LrecId(4),
            concept: ConceptId(1),
            tokens: Some(toks(&["towards", "entity", "matching"])),
        }]);
        assert_eq!(seg.delta_count(), 1);
        seg.compact();
        assert_eq!(seg.delta_count(), 0);
        assert_eq!(seg.compaction_count(), 1);
        let flat = seg.flatten();
        assert_eq!(seg.base_segment().digest(), flat.digest());
        assert_eq!(seg.pinned_stats().digest(), flat.scoring_stats().digest());
        assert!(seg.tombstoned().is_empty());
    }

    #[test]
    fn tier_merge_runs_are_deterministic() {
        let mut seg = base();
        let policy = MergePolicy {
            fanout: 2,
            compact_fraction: 100.0,
            max_deltas: 100,
        };
        seg.policy = policy;
        for i in 0..4u64 {
            seg.apply_delta(&[RecordChange {
                id: LrecId(10 + i),
                concept: ConceptId(0),
                tokens: Some(toks(&["extra"])),
            }]);
        }
        // fanout=2 over single-record deltas collapses pairs as they appear.
        assert!(seg.merge_count() > 0);
        assert_eq!(seg.live_len(), 7);
        let flat = seg.flatten();
        let a = seg.search(&q(&["extra"]), 10, |_| None);
        let b = flat.search_with_stats(&q(&["extra"]), 10, |_| None, seg.pinned_stats());
        assert_eq!(a, b);
    }

    #[test]
    fn scoped_and_concept_filters_match_flat() {
        let mut seg = SegmentedLrecIndex::new(
            vec![
                (
                    LrecId(1),
                    ConceptId(0),
                    vec![
                        "gochi".into(),
                        scoped_term("name", "gochi"),
                        "cupertino".into(),
                        scoped_term("city", "cupertino"),
                    ],
                ),
                (
                    LrecId(2),
                    ConceptId(1),
                    vec!["cupertino".into(), scoped_term("title", "cupertino")],
                ),
            ],
            MergePolicy::default(),
        );
        seg.apply_delta(&[RecordChange {
            id: LrecId(3),
            concept: ConceptId(0),
            tokens: vec!["cupertino".into(), scoped_term("city", "cupertino")].into(),
        }]);
        let resolver = |n: &str| (n == "restaurant").then_some(ConceptId(0));
        for query in [
            FieldQuery::parse("cupertino is:restaurant"),
            FieldQuery::parse("city:cupertino"),
            FieldQuery::parse("cupertino"),
            FieldQuery::parse("name:cupertino"),
        ] {
            let a = seg.search(&query, 10, resolver);
            let b = seg
                .flatten()
                .search_with_stats(&query, 10, resolver, seg.pinned_stats());
            assert_eq!(a, b, "query {query}");
        }
    }
}
