//! The inverted index with BM25 ranking.

use std::collections::{HashMap, HashSet};

use woc_textkit::tokenize::tokenize_words;

use crate::postings::{intersect, DocId, Posting, PostingList};

/// BM25 parameters.
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    /// Term-frequency saturation (typical 1.2).
    pub k1: f64,
    /// Length normalization (typical 0.75).
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// A scored search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Matching document.
    pub doc: DocId,
    /// BM25 score (non-negative).
    pub score: f64,
}

/// BM25+ inverse document frequency — always positive. Factored out so an
/// index scoring against its own counters and one scoring against an external
/// [`ScoringStats`] snapshot run the exact same f64 arithmetic.
fn bm25_idf(n: f64, df: f64) -> f64 {
    (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
}

/// Mean document length, in the one canonical evaluation order.
fn mean_len(total_len: u64, num_docs: usize) -> f64 {
    if num_docs == 0 {
        0.0
    } else {
        total_len as f64 / num_docs as f64
    }
}

/// The BM25 contribution of one `(term, document)` pair. Every scoring path
/// — exhaustive, stats-snapshot, and block-max pruned — funnels through this
/// single expression, so per-pair contributions are bitwise identical across
/// paths and the only remaining degree of freedom is summation order (which
/// each path fixes to query-term order).
#[inline]
fn bm25_term_score(params: Bm25Params, idf: f64, tf: f64, len: f64, avg: f64) -> f64 {
    let denom = tf + params.k1 * (1.0 - params.b + params.b * len / avg.max(1e-9));
    idf * tf * (params.k1 + 1.0) / denom
}

/// Corpus-global scoring statistics snapshotted from a full index.
///
/// BM25 mixes per-document quantities (tf, document length) with
/// corpus-global ones (document frequency, mean document length). A
/// document-partitioned shard holds the former exactly but would compute the
/// latter from its local subset, skewing scores relative to a single-node
/// index. Scoring a shard through the stats of the full corpus instead makes
/// every per-document score *bitwise identical* to the score the full index
/// would assign — the property the cluster router relies on to merge
/// scatter-gather results byte-identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScoringStats {
    num_docs: usize,
    total_len: u64,
    df: HashMap<String, u32>,
}

impl ScoringStats {
    /// Number of documents in the corpus the stats were taken from.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Corpus-wide document frequency of a term.
    pub fn df(&self, term: &str) -> u32 {
        self.df.get(term).copied().unwrap_or(0)
    }

    pub(crate) fn idf(&self, term: &str) -> f64 {
        bm25_idf(self.num_docs as f64, self.df(term) as f64)
    }

    pub(crate) fn avg_len(&self) -> f64 {
        mean_len(self.total_len, self.num_docs)
    }

    /// Content digest (FNV-1a over the sorted df table and the corpus
    /// counters) — lets replicas assert they score through the same global
    /// statistics without comparing whole tables.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let byte = |h: &mut u64, b: u8| {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x100000001b3);
        };
        let word = |h: &mut u64, w: u64| {
            w.to_le_bytes().iter().for_each(|&b| {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x100000001b3);
            })
        };
        let mut terms: Vec<&String> = self.df.keys().collect();
        terms.sort_unstable();
        for t in terms {
            t.bytes().for_each(|b| byte(&mut h, b));
            byte(&mut h, 0xff);
            word(&mut h, self.df[t] as u64);
        }
        word(&mut h, self.num_docs as u64);
        word(&mut h, self.total_len);
        h
    }
}

/// Per-block pruning metadata over one term's posting list: the last doc id
/// the block covers plus the ingredients of a score upper bound.
///
/// BM25 is monotone increasing in tf and decreasing in document length, so
/// evaluating the scoring formula at `(max_tf, min_len)` bounds every posting
/// in the block from above *under any* [`ScoringStats`] snapshot — the
/// metadata is stats-independent and survives stat re-pins unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Last doc id in the block (blocks partition the posting list in doc
    /// order, so binary search by `last_doc` locates the block covering a
    /// candidate).
    pub last_doc: DocId,
    /// Maximum term frequency over the block's postings.
    pub max_tf: u32,
    /// Minimum document length over the block's documents.
    pub min_len: u32,
}

/// Frozen per-term block metadata for a whole index — built once by
/// [`InvertedIndex::block_max`] when a segment freezes, consumed by
/// [`InvertedIndex::search_terms_pruned_with_stats`].
#[derive(Debug, Clone, Default)]
pub struct BlockMaxIndex {
    terms: HashMap<String, Vec<BlockMeta>>,
}

impl BlockMaxIndex {
    /// Block metadata for `term` (empty if the term is unknown).
    pub fn blocks(&self, term: &str) -> &[BlockMeta] {
        self.terms.get(term).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Min-ordered top-k heap entry: the heap's top is the *worst* retained hit
/// under the final `(score desc, doc asc)` ranking, i.e. the pruning
/// threshold.
#[derive(Debug, PartialEq)]
struct WorstFirst {
    score: f64,
    doc: DocId,
}

impl Eq for WorstFirst {}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // "Greater" (popped first by BinaryHeap) = worse: lower score, or an
        // equal score with a higher doc id.
        other
            .score
            .total_cmp(&self.score)
            .then(self.doc.cmp(&other.doc))
    }
}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An in-memory inverted index over externally keyed documents.
///
/// Documents are added once each (the id is assigned densely by insertion
/// order); the caller maps [`DocId`]s back to its own keys (URLs, lrec ids).
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    terms: HashMap<String, PostingList>,
    /// Term → (doc, sorted token positions) — the positional index backing
    /// phrase queries.
    positions: HashMap<String, Vec<(DocId, Vec<u32>)>>,
    doc_lens: Vec<u32>,
    total_len: u64,
    params: Bm25Params,
}

impl InvertedIndex {
    /// Empty index with default BM25 parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty index with explicit parameters.
    pub fn with_params(params: Bm25Params) -> Self {
        Self {
            params,
            ..Self::default()
        }
    }

    /// Index a document given as raw text (tokenized internally). Returns
    /// its assigned id.
    pub fn add_text(&mut self, text: &str) -> DocId {
        let toks = tokenize_words(text);
        self.add_tokens(&toks)
    }

    /// Index a document given as pre-tokenized terms.
    pub fn add_tokens<S: AsRef<str>>(&mut self, tokens: &[S]) -> DocId {
        let id = DocId(self.doc_lens.len() as u32);
        for (pos, t) in tokens.iter().enumerate() {
            self.terms
                .entry(t.as_ref().to_string())
                .or_default()
                .add(id);
            let plist = self.positions.entry(t.as_ref().to_string()).or_default();
            match plist.last_mut() {
                Some((d, ps)) if *d == id => ps.push(pos as u32),
                _ => plist.push((id, vec![pos as u32])),
            }
        }
        self.doc_lens.push(tokens.len() as u32);
        self.total_len += tokens.len() as u64;
        id
    }

    /// Replace the indexed content of `doc` in place: remove the
    /// contributions of `old_tokens` — which must be exactly the token
    /// sequence `doc` was indexed with — then index `new_tokens` under the
    /// same id. Terms whose last posting disappears are purged entirely, so
    /// the patched index is indistinguishable (including by
    /// [`InvertedIndex::digest`]) from one freshly built with the new
    /// tokens. Returns the number of `(term, doc)` postings removed plus
    /// inserted — the patch size.
    pub fn replace_doc(
        &mut self,
        doc: DocId,
        old_tokens: &[String],
        new_tokens: &[String],
    ) -> usize {
        let slot = doc.0 as usize;
        assert!(slot < self.doc_lens.len(), "doc {} not in index", doc.0);
        assert_eq!(
            self.doc_lens[slot] as usize,
            old_tokens.len(),
            "old_tokens must be the exact tokens doc {} was indexed with",
            doc.0
        );
        let mut patched = 0usize;
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for t in old_tokens {
            if !seen.insert(t.as_str()) {
                continue;
            }
            if let Some(pl) = self.terms.get_mut(t) {
                pl.remove_doc(doc);
                if pl.is_empty() {
                    self.terms.remove(t);
                }
            }
            if let Some(pv) = self.positions.get_mut(t) {
                if let Ok(i) = pv.binary_search_by_key(&doc, |&(d, _)| d) {
                    pv.remove(i);
                }
                if pv.is_empty() {
                    self.positions.remove(t);
                }
            }
            patched += 1;
        }
        // Group the new tokens per term (BTreeMap: deterministic insertion
        // order into the hash maps does not matter, but the grouping must
        // not depend on iteration order either).
        let mut per_term: std::collections::BTreeMap<&str, Vec<u32>> =
            std::collections::BTreeMap::new();
        for (pos, t) in new_tokens.iter().enumerate() {
            per_term.entry(t.as_str()).or_default().push(pos as u32);
        }
        for (t, ps) in per_term {
            self.terms
                .entry(t.to_string())
                .or_default()
                .insert(doc, ps.len() as u32);
            let pv = self.positions.entry(t.to_string()).or_default();
            match pv.binary_search_by_key(&doc, |&(d, _)| d) {
                Err(i) => pv.insert(i, (doc, ps)),
                Ok(_) => unreachable!("old postings for doc {} were just removed", doc.0),
            }
            patched += 1;
        }
        self.total_len = self.total_len - old_tokens.len() as u64 + new_tokens.len() as u64;
        self.doc_lens[slot] = new_tokens.len() as u32;
        patched
    }

    /// Positions of `term` in `doc`, sorted ascending (empty if absent).
    pub fn positions(&self, term: &str, doc: DocId) -> &[u32] {
        self.positions
            .get(term)
            .and_then(|pl| {
                pl.binary_search_by_key(&doc, |&(d, _)| d)
                    .ok()
                    .map(|i| pl[i].1.as_slice())
            })
            .unwrap_or(&[])
    }

    /// Exact phrase retrieval: documents containing the query tokens as a
    /// contiguous sequence, via positional intersection.
    pub fn search_phrase(&self, phrase: &str) -> Vec<DocId> {
        let terms = tokenize_words(phrase);
        if terms.is_empty() {
            return Vec::new();
        }
        // Candidates: conjunctive containment first.
        let candidates = self.search_and(&terms.join(" "));
        candidates
            .into_iter()
            .filter(|&doc| {
                // A start position p works if term[i] occurs at p + i for all i.
                self.positions(&terms[0], doc).iter().any(|&p| {
                    terms.iter().enumerate().skip(1).all(|(i, t)| {
                        self.positions(t, doc)
                            .binary_search(&(p + i as u32))
                            .is_ok()
                    })
                })
            })
            .collect()
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_lens.len()
    }

    /// Number of distinct terms.
    pub fn vocab_size(&self) -> usize {
        self.terms.len()
    }

    /// Document frequency of a term.
    pub fn df(&self, term: &str) -> u32 {
        self.terms.get(term).map(PostingList::doc_freq).unwrap_or(0)
    }

    /// Content digest: FNV-1a over the sorted vocabulary, every posting and
    /// position list, and the document lengths. Two indexes with identical
    /// content digest equal — the equality check behind the pipeline's
    /// any-thread-count determinism tests.
    pub fn digest(&self) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn byte(&mut self, b: u8) {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
            fn word(&mut self, w: u64) {
                w.to_le_bytes().iter().for_each(|&b| self.byte(b));
            }
        }
        let mut h = Fnv(0xcbf29ce484222325);
        let mut terms: Vec<&String> = self.terms.keys().collect();
        terms.sort_unstable();
        for t in terms {
            t.bytes().for_each(|b| h.byte(b));
            h.byte(0xff);
            for p in self.terms[t].iter() {
                h.word(p.doc.0 as u64);
                h.word(p.tf as u64);
            }
            for (doc, ps) in &self.positions[t] {
                h.word(doc.0 as u64);
                ps.iter().for_each(|&p| h.word(p as u64));
            }
        }
        for &l in &self.doc_lens {
            h.word(l as u64);
        }
        h.word(self.total_len);
        h.0
    }

    fn idf(&self, term: &str) -> f64 {
        bm25_idf(self.num_docs() as f64, self.df(term) as f64)
    }

    fn avg_len(&self) -> f64 {
        mean_len(self.total_len, self.doc_lens.len())
    }

    /// Snapshot this index's corpus-global statistics for use by
    /// [`InvertedIndex::search_terms_with_stats`] on a document subset.
    pub fn scoring_stats(&self) -> ScoringStats {
        // woc-lint: allow(map-iter-order) — collected into a HashMap keyed by
        // term; the result is iteration-order independent.
        let df = self
            .terms
            .iter()
            .map(|(t, pl)| (t.clone(), pl.doc_freq()))
            .collect();
        ScoringStats {
            num_docs: self.doc_lens.len(),
            total_len: self.total_len,
            df,
        }
    }

    /// Ranked disjunctive (OR) retrieval: BM25 over the query terms,
    /// returning the top `k` hits, highest score first; ties break by doc id
    /// for determinism.
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit> {
        let terms = tokenize_words(query);
        self.search_terms(&terms, k)
    }

    /// Ranked retrieval over pre-tokenized query terms.
    pub fn search_terms<S: AsRef<str>>(&self, terms: &[S], k: usize) -> Vec<Hit> {
        self.search_scored(terms, k, None)
    }

    /// Ranked retrieval scored through an external [`ScoringStats`] snapshot
    /// instead of this index's own counters. When `self` indexes a subset of
    /// the corpus `stats` was taken from, every hit's score is bitwise
    /// identical to the score the full index would assign that document.
    pub fn search_terms_with_stats<S: AsRef<str>>(
        &self,
        terms: &[S],
        k: usize,
        stats: &ScoringStats,
    ) -> Vec<Hit> {
        self.search_scored(terms, k, Some(stats))
    }

    fn search_scored<S: AsRef<str>>(
        &self,
        terms: &[S],
        k: usize,
        stats: Option<&ScoringStats>,
    ) -> Vec<Hit> {
        let mut acc: HashMap<DocId, f64> = HashMap::new();
        let avg = match stats {
            Some(s) => s.avg_len(),
            None => self.avg_len(),
        };
        // woc-lint: allow(map-iter-order) — `terms` is the query slice parameter
        // (shadows the postings field name); scores sum commutatively into `acc`.
        for t in terms {
            let Some(pl) = self.terms.get(t.as_ref()) else {
                continue;
            };
            let idf = match stats {
                Some(s) => s.idf(t.as_ref()),
                None => self.idf(t.as_ref()),
            };
            for p in pl.iter() {
                let len = self.doc_lens[p.doc.0 as usize] as f64;
                let s = bm25_term_score(self.params, idf, p.tf as f64, len, avg);
                *acc.entry(p.doc).or_insert(0.0) += s;
            }
        }
        let mut hits: Vec<Hit> = acc
            .into_iter()
            .map(|(doc, score)| Hit { doc, score })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }

    /// Freeze block-max pruning metadata for every term, `block` postings per
    /// block. Meant for immutable (segment) indexes: the metadata is not
    /// maintained by [`InvertedIndex::replace_doc`].
    pub fn block_max(&self, block: usize) -> BlockMaxIndex {
        let block = block.max(1);
        // woc-lint: allow(map-iter-order) — collected into a HashMap keyed by
        // term; per-term metadata is independent of iteration order.
        let terms = self
            .terms
            .iter()
            .map(|(t, pl)| {
                let blocks = pl
                    .as_slice()
                    .chunks(block)
                    .map(|chunk| BlockMeta {
                        last_doc: chunk[chunk.len() - 1].doc,
                        max_tf: chunk.iter().map(|p| p.tf).max().unwrap_or(0),
                        min_len: chunk
                            .iter()
                            .map(|p| self.doc_lens[p.doc.0 as usize])
                            .min()
                            .unwrap_or(0),
                    })
                    .collect();
                (t.clone(), blocks)
            })
            .collect();
        BlockMaxIndex { terms }
    }

    /// Block-max pruned top-k retrieval through an external [`ScoringStats`]
    /// snapshot, skipping documents in `dead` (shadowed/tombstoned postings
    /// of a frozen segment).
    ///
    /// Returns *exactly* what [`InvertedIndex::search_terms_with_stats`]
    /// would return after dropping `dead` docs — same hits, same order, same
    /// score bits. A MaxScore-style document-at-a-time traversal enumerates
    /// candidates only from "essential" lists (those whose combined upper
    /// bounds can still reach the current k-th score) and consults per-block
    /// `(max_tf, min_len)` bounds for the rest; a candidate is skipped only
    /// when its upper bound is *strictly* below the k-th score, and the bound
    /// is summed in canonical query-term order with per-addend domination, so
    /// ties and float rounding can never evict a true top-k member. Surviving
    /// candidates are rescored exhaustively in query-term order, reproducing
    /// the exhaustive path's summation bit for bit.
    pub fn search_terms_pruned_with_stats<S: AsRef<str>>(
        &self,
        terms: &[S],
        k: usize,
        stats: &ScoringStats,
        blockmax: &BlockMaxIndex,
        dead: &HashSet<DocId>,
    ) -> Vec<Hit> {
        if k == 0 || terms.is_empty() {
            return Vec::new();
        }
        let avg = stats.avg_len();
        struct Cursor<'a> {
            /// Position of this term in the query — canonical summation order.
            ord: usize,
            idf: f64,
            ps: &'a [Posting],
            blocks: &'a [BlockMeta],
            /// Whole-list score upper bound.
            ub: f64,
            pos: usize,
        }
        let mut lists: Vec<Cursor<'_>> = Vec::with_capacity(terms.len());
        // woc-lint: allow(map-iter-order) — `terms` is the query slice
        // parameter (shadows the postings field name), already in query order.
        for (ord, t) in terms.iter().enumerate() {
            let Some(pl) = self.terms.get(t.as_ref()) else {
                continue;
            };
            let idf = stats.idf(t.as_ref());
            let blocks = blockmax.blocks(t.as_ref());
            let ub = if blocks.is_empty() {
                // No frozen metadata for this term (foreign blockmax): the
                // universal bound tf·(k1+1)/(tf+…) < k1+1 still holds.
                idf * (self.params.k1 + 1.0)
            } else {
                blocks
                    .iter()
                    .map(|b| {
                        bm25_term_score(self.params, idf, b.max_tf as f64, b.min_len as f64, avg)
                    })
                    .fold(0.0f64, f64::max)
            };
            lists.push(Cursor {
                ord,
                idf,
                ps: pl.as_slice(),
                blocks,
                ub,
                pos: 0,
            });
        }
        if lists.is_empty() {
            return Vec::new();
        }
        // Highest-impact lists first; ties by query position for determinism.
        lists.sort_by(|a, b| b.ub.total_cmp(&a.ub).then(a.ord.cmp(&b.ord)));
        let mut suffix = vec![0.0f64; lists.len() + 1];
        for i in (0..lists.len()).rev() {
            suffix[i] = suffix[i + 1] + lists[i].ub;
        }
        let mut heap: std::collections::BinaryHeap<WorstFirst> =
            std::collections::BinaryHeap::with_capacity(k.min(self.doc_lens.len()) + 1);
        // Scratch for per-candidate (ord, contribution-or-bound) addends.
        let mut addends: Vec<(usize, f64)> = Vec::with_capacity(lists.len());
        loop {
            let thr = if heap.len() == k {
                Some(heap.peek().expect("heap holds k > 0 entries").score)
            } else {
                None
            };
            // Essential prefix: lists[e..] alone sum strictly below the k-th
            // score, so docs appearing only there can never enter the top k.
            let e = match thr {
                None => lists.len(),
                Some(t) => {
                    let mut e = 0;
                    while e < lists.len() && suffix[e] >= t {
                        e += 1;
                    }
                    e
                }
            };
            if e == 0 {
                break;
            }
            // Next candidate: smallest pending doc over the essential lists.
            let mut cand: Option<DocId> = None;
            for l in &lists[..e] {
                if let Some(p) = l.ps.get(l.pos) {
                    cand = Some(cand.map_or(p.doc, |c| c.min(p.doc)));
                }
            }
            let Some(doc) = cand else {
                break;
            };
            if !dead.contains(&doc) {
                // Upper bound, summed in canonical (query) order: exact
                // contributions from essential lists at `doc`, block bounds
                // for the non-essential tail. Each addend dominates its exact
                // counterpart, and float addition is monotone, so the sum
                // dominates the canonical score.
                addends.clear();
                for l in &lists[..e] {
                    if let Some(p) = l.ps.get(l.pos) {
                        if p.doc == doc {
                            let len = self.doc_lens[doc.0 as usize] as f64;
                            let s = bm25_term_score(self.params, l.idf, p.tf as f64, len, avg);
                            addends.push((l.ord, s));
                        }
                    }
                }
                for l in &lists[e..] {
                    if l.blocks.is_empty() {
                        addends.push((l.ord, l.ub));
                        continue;
                    }
                    let b = l.blocks.partition_point(|b| b.last_doc < doc);
                    if let Some(meta) = l.blocks.get(b) {
                        let s = bm25_term_score(
                            self.params,
                            l.idf,
                            meta.max_tf as f64,
                            meta.min_len as f64,
                            avg,
                        );
                        addends.push((l.ord, s));
                    }
                }
                addends.sort_unstable_by_key(|&(ord, _)| ord);
                let bound: f64 = addends.iter().map(|&(_, s)| s).sum();
                let survives = match thr {
                    None => true,
                    Some(t) => bound >= t,
                };
                if survives {
                    // Exact rescore: advance every cursor to `doc` and sum
                    // the real contributions in canonical query order.
                    addends.clear();
                    for l in &mut lists {
                        while l.ps.get(l.pos).is_some_and(|p| p.doc < doc) {
                            l.pos += 1;
                        }
                        if let Some(p) = l.ps.get(l.pos) {
                            if p.doc == doc {
                                let len = self.doc_lens[doc.0 as usize] as f64;
                                let s = bm25_term_score(self.params, l.idf, p.tf as f64, len, avg);
                                addends.push((l.ord, s));
                            }
                        }
                    }
                    addends.sort_unstable_by_key(|&(ord, _)| ord);
                    let mut score = 0.0f64;
                    for &(_, s) in addends.iter() {
                        score += s;
                    }
                    let better = match heap.peek() {
                        Some(w) if heap.len() == k => {
                            score > w.score || (score == w.score && doc < w.doc)
                        }
                        _ => true,
                    };
                    if better {
                        heap.push(WorstFirst { score, doc });
                        while heap.len() > k {
                            heap.pop();
                        }
                    }
                }
            }
            // Step the essential cursors past the candidate.
            for l in &mut lists[..e] {
                if l.ps.get(l.pos).is_some_and(|p| p.doc == doc) {
                    l.pos += 1;
                }
            }
        }
        let mut hits: Vec<Hit> = heap
            .into_iter()
            .map(|w| Hit {
                doc: w.doc,
                score: w.score,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits
    }

    /// Boolean conjunctive (AND) retrieval: documents containing *all* terms.
    pub fn search_and(&self, query: &str) -> Vec<DocId> {
        let terms = tokenize_words(query);
        if terms.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&PostingList> = Vec::with_capacity(terms.len());
        // woc-lint: allow(map-iter-order) — `terms` is the tokenized query Vec
        // (shadows the postings field name), already in query order.
        for t in &terms {
            match self.terms.get(t) {
                Some(pl) => lists.push(pl),
                None => return Vec::new(),
            }
        }
        // Intersect smallest-first for speed.
        lists.sort_by_key(|pl| pl.doc_freq());
        let mut result: Vec<DocId> = lists[0].iter().map(|p| p.doc).collect();
        for pl in &lists[1..] {
            let as_list = {
                let mut l = PostingList::new();
                for d in &result {
                    l.add(*d);
                }
                l
            };
            result = intersect(&as_list, pl);
            if result.is_empty() {
                break;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.add_text("Gochi Fusion Tapas Cupertino japanese tapas");
        ix.add_text("Taqueria El Farolito San Francisco mexican burrito");
        ix.add_text("best mexican food in Chicago salsa salsa salsa");
        ix.add_text("Cupertino city guide hotels attractions");
        ix
    }

    #[test]
    fn search_ranks_relevant_first() {
        let ix = idx();
        let hits = ix.search("gochi cupertino", 10);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].doc, DocId(0));
        assert!(hits[0].score > 0.0);
    }

    #[test]
    fn repeated_terms_boost_tf() {
        let ix = idx();
        let hits = ix.search("salsa", 10);
        assert_eq!(hits[0].doc, DocId(2));
    }

    #[test]
    fn top_k_truncates_and_sorts() {
        let ix = idx();
        let hits = ix.search("cupertino mexican", 1);
        assert_eq!(hits.len(), 1);
        let all = ix.search("cupertino mexican", 10);
        assert!(all.len() >= 2);
        for w in all.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn unknown_terms_ignored() {
        let ix = idx();
        assert!(ix.search("zzzz qqqq", 5).is_empty());
        let hits = ix.search("zzzz gochi", 5);
        assert_eq!(hits[0].doc, DocId(0));
    }

    #[test]
    fn boolean_and() {
        let ix = idx();
        assert_eq!(ix.search_and("mexican salsa"), vec![DocId(2)]);
        assert_eq!(ix.search_and("mexican"), vec![DocId(1), DocId(2)]);
        assert!(ix.search_and("mexican zzzz").is_empty());
        assert!(ix.search_and("").is_empty());
    }

    #[test]
    fn phrase_search() {
        let ix = idx();
        assert_eq!(ix.search_phrase("gochi fusion tapas"), vec![DocId(0)]);
        // Words present but not contiguous/ordered.
        assert!(ix.search_phrase("tapas fusion").is_empty());
        assert!(ix.search_phrase("cupertino gochi").is_empty());
        // Single word phrase = containment.
        assert_eq!(ix.search_phrase("salsa"), vec![DocId(2)]);
        assert!(ix.search_phrase("").is_empty());
        assert!(ix.search_phrase("zz qq").is_empty());
    }

    #[test]
    fn positions_recorded() {
        let mut ix = InvertedIndex::new();
        let d = ix.add_tokens(&["a", "b", "a", "c"]);
        assert_eq!(ix.positions("a", d), &[0, 2]);
        assert_eq!(ix.positions("c", d), &[3]);
        assert!(ix.positions("z", d).is_empty());
        assert!(ix.positions("a", DocId(9)).is_empty());
    }

    #[test]
    fn empty_index_safe() {
        let ix = InvertedIndex::new();
        assert!(ix.search("anything", 5).is_empty());
        assert_eq!(ix.num_docs(), 0);
    }

    #[test]
    fn scores_nonnegative() {
        let ix = idx();
        for hit in ix.search("the cupertino guide mexican", 100) {
            assert!(hit.score >= 0.0);
        }
    }

    fn toks(s: &str) -> Vec<String> {
        tokenize_words(s)
    }

    #[test]
    fn replace_doc_is_indistinguishable_from_fresh_build() {
        let docs = [
            "Gochi Fusion Tapas Cupertino japanese tapas",
            "Taqueria El Farolito San Francisco mexican burrito",
            "best mexican food in Chicago salsa salsa salsa",
        ];
        // "salsa" and "chicago" exist only in doc 2: replacing it must purge
        // those terms entirely, and introduces brand-new terms.
        let replacement = "udon noodle bar mexican fusion";
        let mut patched = InvertedIndex::new();
        for d in &docs {
            patched.add_text(d);
        }
        let n = patched.replace_doc(DocId(2), &toks(docs[2]), &toks(replacement));
        assert!(n > 0);

        let mut fresh = InvertedIndex::new();
        fresh.add_text(docs[0]);
        fresh.add_text(docs[1]);
        fresh.add_text(replacement);
        assert_eq!(patched.digest(), fresh.digest());
        assert_eq!(patched.vocab_size(), fresh.vocab_size());
        assert_eq!(patched.df("salsa"), 0, "orphaned term purged");
        assert!(patched.positions("chicago", DocId(2)).is_empty());
        assert_eq!(patched.search_phrase("udon noodle bar"), vec![DocId(2)]);
    }

    #[test]
    fn replace_doc_to_empty_and_back() {
        let mut patched = InvertedIndex::new();
        patched.add_tokens(&["a", "b"]);
        patched.add_tokens(&["b", "c"]);
        let old = vec!["b".to_string(), "c".to_string()];
        patched.replace_doc(DocId(1), &old, &[]);
        let mut fresh = InvertedIndex::new();
        fresh.add_tokens(&["a", "b"]);
        fresh.add_tokens::<String>(&[]);
        assert_eq!(patched.digest(), fresh.digest());
        patched.replace_doc(DocId(1), &[], &old);
        let mut fresh2 = InvertedIndex::new();
        fresh2.add_tokens(&["a", "b"]);
        fresh2.add_tokens(&["b", "c"]);
        assert_eq!(patched.digest(), fresh2.digest());
    }

    #[test]
    #[should_panic(expected = "exact tokens")]
    fn replace_doc_rejects_wrong_old_tokens() {
        let mut ix = InvertedIndex::new();
        ix.add_tokens(&["a", "b"]);
        ix.replace_doc(DocId(0), &["a".to_string()], &[]);
    }

    #[test]
    fn shard_subset_with_global_stats_scores_bitwise_identically() {
        let docs = [
            "Gochi Fusion Tapas Cupertino japanese tapas",
            "Taqueria El Farolito San Francisco mexican burrito",
            "best mexican food in Chicago salsa salsa salsa",
            "Cupertino city guide hotels attractions",
            "mexican cantina Cupertino happy hour",
        ];
        let mut full = InvertedIndex::new();
        for d in &docs {
            full.add_text(d);
        }
        let stats = full.scoring_stats();
        // Shard = docs 1, 2, 4 (in corpus order); local ids 0, 1, 2.
        let owned = [1usize, 2, 4];
        let mut shard = InvertedIndex::new();
        for &i in &owned {
            shard.add_text(docs[i]);
        }
        for query in [
            "mexican cupertino",
            "salsa",
            "tapas guide mexican",
            "burrito",
        ] {
            let terms = tokenize_words(query);
            let full_hits = full.search_terms(&terms, 10);
            let by_doc: HashMap<DocId, f64> = full_hits.iter().map(|h| (h.doc, h.score)).collect();
            for hit in shard.search_terms_with_stats(&terms, 10, &stats) {
                let global = DocId(owned[hit.doc.0 as usize] as u32);
                let want = by_doc[&global];
                assert_eq!(
                    hit.score.to_bits(),
                    want.to_bits(),
                    "query {query:?} doc {global:?}: shard score must be bitwise \
                     identical to the full index"
                );
            }
            // Local scoring (shard's own counters) would disagree: document
            // frequencies genuinely differ between subset and corpus.
            assert_eq!(stats.df("cupertino"), 3);
            assert_eq!(shard.df("cupertino"), 1);
        }
        // An index scoring through its own snapshot is the identity.
        let self_stats = full.scoring_stats();
        let terms = tokenize_words("mexican cupertino salsa");
        let a = full.search_terms(&terms, 10);
        let b = full.search_terms_with_stats(&terms, 10, &self_stats);
        assert_eq!(a, b);
        assert_eq!(self_stats.digest(), full.scoring_stats().digest());
        assert_ne!(self_stats.digest(), shard.scoring_stats().digest());
    }

    #[test]
    fn digest_tracks_content() {
        assert_eq!(idx().digest(), idx().digest());
        let mut other = idx();
        let before = other.digest();
        other.add_text("one more document");
        assert_ne!(before, other.digest());
        // Insertion of the same docs in the same order → same digest even
        // though HashMap iteration order may differ between instances.
        assert_eq!(InvertedIndex::new().digest(), InvertedIndex::new().digest());
    }
}
