//! Posting lists with delta + varint encoding.
//!
//! Paper §2.2 chooses the lrec model partly "because retrieval is more
//! readily mapped to existing inverted indexes"; this module is that
//! inverted-index machinery. Postings are kept sorted by document id and can
//! be serialized into a compact `bytes` buffer (delta-encoded doc ids,
//! varint-encoded gaps and term frequencies) like a production index would.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Document identifier within one index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u32);

/// One posting: a document and the term's frequency in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Document.
    pub doc: DocId,
    /// Term frequency in the document.
    pub tf: u32,
}

/// A sorted posting list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingList {
    entries: Vec<Posting>,
}

impl PostingList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an occurrence for `doc`. Documents must be added in
    /// non-decreasing id order (the builder indexes docs sequentially);
    /// repeated adds for the same doc increment its tf.
    pub fn add(&mut self, doc: DocId) {
        match self.entries.last_mut() {
            Some(last) if last.doc == doc => last.tf += 1,
            Some(last) => {
                assert!(
                    last.doc < doc,
                    "postings must be appended in doc order: {} then {}",
                    last.doc.0,
                    doc.0
                );
                self.entries.push(Posting { doc, tf: 1 });
            }
            None => self.entries.push(Posting { doc, tf: 1 }),
        }
    }

    /// Add with an explicit term frequency.
    pub fn add_tf(&mut self, doc: DocId, tf: u32) {
        match self.entries.last_mut() {
            Some(last) if last.doc == doc => last.tf += tf,
            Some(last) => {
                assert!(last.doc < doc, "postings must be appended in doc order");
                self.entries.push(Posting { doc, tf });
            }
            None => self.entries.push(Posting { doc, tf }),
        }
    }

    /// Remove the posting for `doc`, if present. Returns `true` when a
    /// posting was removed. This is the mid-list counterpart of the
    /// append-only builders, used by incremental index patching.
    pub fn remove_doc(&mut self, doc: DocId) -> bool {
        match self.entries.binary_search_by_key(&doc, |p| p.doc) {
            Ok(i) => {
                self.entries.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Insert a posting at its sorted position, or add `tf` to an existing
    /// one — `add_tf` for callers that cannot guarantee append order
    /// (incremental index patching).
    pub fn insert(&mut self, doc: DocId, tf: u32) {
        match self.entries.binary_search_by_key(&doc, |p| p.doc) {
            Ok(i) => self.entries[i].tf += tf,
            Err(i) => self.entries.insert(i, Posting { doc, tf }),
        }
    }

    /// True when no document contains the term.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of documents containing the term.
    pub fn doc_freq(&self) -> u32 {
        self.entries.len() as u32
    }

    /// The postings, sorted by doc id.
    pub fn iter(&self) -> impl Iterator<Item = Posting> + '_ {
        self.entries.iter().copied()
    }

    /// The postings as a slice, sorted by doc id — indexed cursor access for
    /// document-at-a-time traversals (block-max pruned search).
    pub fn as_slice(&self) -> &[Posting] {
        &self.entries
    }

    /// Binary-search the tf for a document.
    pub fn tf(&self, doc: DocId) -> u32 {
        self.entries
            .binary_search_by_key(&doc, |p| p.doc)
            .map(|i| self.entries[i].tf)
            .unwrap_or(0)
    }

    /// Encode to a compact buffer: `count, (gap, tf)*` as varints.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(4 + self.entries.len() * 2);
        put_varint(&mut buf, self.entries.len() as u64);
        let mut prev = 0u32;
        for p in &self.entries {
            put_varint(&mut buf, (p.doc.0 - prev) as u64);
            put_varint(&mut buf, p.tf as u64);
            prev = p.doc.0;
        }
        buf.freeze()
    }

    /// Decode from [`PostingList::encode`] output. Returns `None` on a
    /// malformed buffer.
    pub fn decode(mut buf: Bytes) -> Option<PostingList> {
        let count = get_varint(&mut buf)? as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        let mut doc = 0u32;
        for i in 0..count {
            let gap = get_varint(&mut buf)? as u32;
            let tf = get_varint(&mut buf)? as u32;
            doc = if i == 0 { gap } else { doc.checked_add(gap)? };
            entries.push(Posting {
                doc: DocId(doc),
                tf,
            });
        }
        Some(PostingList { entries })
    }
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Union of two sorted posting lists (boolean OR): every document present in
/// either list, with term frequencies summed where both contain the doc. The
/// result is a valid sorted [`PostingList`].
pub fn union(a: &PostingList, b: &PostingList) -> PostingList {
    let mut entries = Vec::with_capacity(a.entries.len() + b.entries.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.entries.len() && j < b.entries.len() {
        match a.entries[i].doc.cmp(&b.entries[j].doc) {
            std::cmp::Ordering::Less => {
                entries.push(a.entries[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                entries.push(b.entries[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                entries.push(Posting {
                    doc: a.entries[i].doc,
                    tf: a.entries[i].tf.saturating_add(b.entries[j].tf),
                });
                i += 1;
                j += 1;
            }
        }
    }
    entries.extend_from_slice(&a.entries[i..]);
    entries.extend_from_slice(&b.entries[j..]);
    PostingList { entries }
}

/// Intersect two sorted posting lists (boolean AND), returning doc ids.
pub fn intersect(a: &PostingList, b: &PostingList) -> Vec<DocId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.entries.len() && j < b.entries.len() {
        match a.entries[i].doc.cmp(&b.entries[j].doc) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a.entries[i].doc);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(docs: &[(u32, u32)]) -> PostingList {
        let mut l = PostingList::new();
        for &(d, tf) in docs {
            l.add_tf(DocId(d), tf);
        }
        l
    }

    #[test]
    fn add_merges_same_doc() {
        let mut l = PostingList::new();
        l.add(DocId(1));
        l.add(DocId(1));
        l.add(DocId(3));
        assert_eq!(l.doc_freq(), 2);
        assert_eq!(l.tf(DocId(1)), 2);
        assert_eq!(l.tf(DocId(3)), 1);
        assert_eq!(l.tf(DocId(2)), 0);
    }

    #[test]
    #[should_panic(expected = "doc order")]
    fn out_of_order_panics() {
        let mut l = PostingList::new();
        l.add(DocId(5));
        l.add(DocId(3));
    }

    #[test]
    fn insert_out_of_order_matches_append_order_build() {
        let mut l = PostingList::new();
        l.insert(DocId(5), 2);
        l.insert(DocId(1), 1);
        l.insert(DocId(3), 4);
        l.insert(DocId(1), 2); // merges into the existing posting
        assert_eq!(l, list(&[(1, 3), (3, 4), (5, 2)]));
    }

    #[test]
    fn remove_doc_keeps_order_and_reports_presence() {
        let mut l = list(&[(1, 1), (3, 2), (5, 1)]);
        assert!(l.remove_doc(DocId(3)));
        assert_eq!(l, list(&[(1, 1), (5, 1)]));
        assert!(!l.remove_doc(DocId(3)), "second removal finds nothing");
        assert!(l.remove_doc(DocId(1)));
        assert!(l.remove_doc(DocId(5)));
        assert!(l.is_empty());
    }

    #[test]
    fn encode_decode_round_trip() {
        let l = list(&[(0, 1), (1, 3), (128, 2), (100_000, 7)]);
        let decoded = PostingList::decode(l.encode()).unwrap();
        assert_eq!(decoded, l);
        let empty = PostingList::new();
        assert_eq!(PostingList::decode(empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(PostingList::decode(Bytes::from_static(&[0xff])).is_none());
        // Claims 5 entries but has none.
        assert!(PostingList::decode(Bytes::from_static(&[5])).is_none());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_varint(&mut b), Some(v));
        }
    }

    #[test]
    fn union_merges_and_sums_tf() {
        let a = list(&[(1, 1), (3, 2), (5, 1)]);
        let b = list(&[(3, 4), (4, 1), (9, 1)]);
        let u = union(&a, &b);
        let docs: Vec<u32> = u.iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![1, 3, 4, 5, 9]);
        assert_eq!(u.tf(DocId(3)), 6);
        assert_eq!(union(&a, &PostingList::new()), a);
        assert_eq!(union(&PostingList::new(), &b), b);
    }

    #[test]
    fn intersection() {
        let a = list(&[(1, 1), (3, 1), (5, 1), (9, 1)]);
        let b = list(&[(3, 1), (4, 1), (9, 1)]);
        assert_eq!(intersect(&a, &b), vec![DocId(3), DocId(9)]);
        assert!(intersect(&a, &PostingList::new()).is_empty());
    }
}
