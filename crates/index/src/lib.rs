//! # woc-index — the inverted-index search substrate
//!
//! Paper §2.2: the lrec representation is chosen so concept retrieval is
//! "readily mapped to existing inverted indexes". This crate *is* that
//! existing infrastructure, built from scratch:
//!
//! * [`postings`] — sorted posting lists with delta+varint encoding,
//! * [`index`] — an in-memory inverted index with BM25 ranked retrieval and
//!   boolean AND,
//! * [`lrec_index`] — fielded indexing of lrec records with a small query
//!   language (`cuisine:italian city:"san jose" is:restaurant`), the
//!   foundation of concept search (paper §5.2),
//! * [`segment`] — the LSM-style segmented record index: a frozen base with
//!   pinned corpus-global stats plus delta segments, scored byte-identically
//!   to a flat rebuild with block-max pruned top-k.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod lrec_index;
pub mod postings;
pub mod segment;

pub use index::{BlockMaxIndex, BlockMeta, Bm25Params, Hit, InvertedIndex, ScoringStats};
pub use lrec_index::{scoped_term, FieldQuery, LrecIndex, RecordHit};
pub use postings::{intersect, union, DocId, Posting, PostingList};
pub use segment::{
    DeltaOutcome, LrecSegment, MergePolicy, RecordChange, SegmentedLrecIndex, SEGMENT_BLOCK,
};
