//! Fielded indexing of lrecs — retrieval over records rather than documents.
//!
//! Every lrec is flattened into terms twice: once unscoped (so free-text
//! queries match any attribute) and once scoped by attribute key (so a query
//! can constrain `cuisine:italian city:"san jose"`). This is the "evolutionary
//! shift … based primarily on massively scalable inverted index
//! implementations" of paper §2.2: concept records ride the same index
//! machinery as documents.

use std::collections::HashMap;

use woc_lrec::{ConceptId, Lrec, LrecId};
use woc_textkit::tokenize::tokenize_words;

use crate::index::{Hit, InvertedIndex, ScoringStats};
use crate::postings::DocId;

/// Separator between field name and term in scoped index entries. A unit
/// separator cannot appear in tokenized words, so scoped and unscoped terms
/// never collide.
const FIELD_SEP: char = '\u{1f}';

/// Render a `(field, term)` constraint into the scoped index term
/// [`LrecIndex::record_tokens`] emits for it. The one canonical rendering —
/// the serving cache's term scopes and the cluster's scatter path must match
/// the index's own encoding or scoped constraints silently stop scoring.
pub fn scoped_term(field: &str, term: &str) -> String {
    format!("{field}{FIELD_SEP}{term}")
}

/// A parsed concept-search query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FieldQuery {
    /// Unscoped free-text terms.
    pub terms: Vec<String>,
    /// `(field, term)` constraints.
    pub scoped: Vec<(String, String)>,
    /// Restrict to a concept, if set (by name; resolved by the caller).
    pub concept: Option<String>,
}

impl FieldQuery {
    /// Parse a query string. Syntax:
    /// * bare words — free-text terms;
    /// * `field:value` — scoped term;
    /// * `field:"two words"` — scoped phrase (each word scoped);
    /// * `is:concept` — concept restriction (e.g. `is:restaurant`).
    pub fn parse(input: &str) -> FieldQuery {
        let mut q = FieldQuery::default();
        let mut rest = input.trim();
        while !rest.is_empty() {
            rest = rest.trim_start();
            if rest.is_empty() {
                break;
            }
            // Take the next whitespace-delimited chunk, honoring quotes after
            // ':'. Only a colon inside the *current* token opens a quoted
            // span — a later token's `field:"…"` must not swallow this one.
            let token_end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            let chunk_end = match rest[..token_end]
                .find(':')
                .filter(|&i| rest[i + 1..].starts_with('"'))
            {
                Some(colon) => {
                    // field:"..." — find the closing quote.
                    match rest[colon + 2..].find('"') {
                        Some(q_end) => colon + 2 + q_end + 1,
                        None => rest.len(),
                    }
                }
                None => token_end,
            };
            let chunk = &rest[..chunk_end];
            rest = &rest[chunk_end..];
            if let Some((field, value)) = chunk.split_once(':') {
                let value = value.trim_matches('"');
                let field = field.to_lowercase();
                if field == "is" {
                    q.concept = Some(value.to_lowercase());
                } else {
                    for w in tokenize_words(value) {
                        q.scoped.push((field.clone(), w));
                    }
                }
            } else {
                q.terms.extend(tokenize_words(chunk));
            }
        }
        q
    }

    /// True if the query has no constraints at all.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty() && self.scoped.is_empty() && self.concept.is_none()
    }

    /// Canonical form: free-text terms and scoped constraints sorted.
    /// Duplicates are kept — repeated terms legitimately weight BM25 — but
    /// evaluation order becomes deterministic, so two queries with the same
    /// normalized form score identically (including float summation order).
    /// The serving layer keys its result cache on the normalized rendering.
    pub fn normalized(&self) -> FieldQuery {
        let mut q = self.clone();
        q.terms.sort_unstable();
        q.scoped.sort_unstable();
        q
    }
}

impl std::fmt::Display for FieldQuery {
    /// Render back to query syntax. For queries built by [`FieldQuery::parse`]
    /// (whose terms are single lowercase tokens), `parse → to_string → parse`
    /// is a fixed point: re-parsing the rendering reproduces the query.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut std::fmt::Formatter<'_>| -> std::fmt::Result {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, " ")
            }
        };
        for t in &self.terms {
            sep(f)?;
            write!(f, "{t}")?;
        }
        for (field, term) in &self.scoped {
            sep(f)?;
            write!(f, "{field}:{term}")?;
        }
        if let Some(c) = &self.concept {
            sep(f)?;
            write!(f, "is:{c}")?;
        }
        Ok(())
    }
}

/// A scored record hit.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordHit {
    /// The matching record.
    pub id: LrecId,
    /// Its concept.
    pub concept: ConceptId,
    /// Retrieval score.
    pub score: f64,
}

/// An index over lrec records.
#[derive(Debug, Clone, Default)]
pub struct LrecIndex {
    inner: InvertedIndex,
    docs: Vec<(LrecId, ConceptId)>,
    by_lrec: HashMap<LrecId, DocId>,
}

impl LrecIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index a record (latest version). Re-indexing the same id appends is
    /// NOT supported — use [`LrecIndex::replace`] for in-place updates or
    /// build a fresh index after bulk changes.
    pub fn add(&mut self, rec: &Lrec) {
        self.add_record_tokens(rec.id(), rec.concept(), &Self::record_tokens(rec));
    }

    /// The exact token sequence [`LrecIndex::add`] indexes for a record:
    /// every non-`Ref` value tokenized, each word emitted both unscoped and
    /// scoped by its attribute key. Exposed so incremental maintenance can
    /// compare a record's current tokens against what is indexed.
    pub fn record_tokens(rec: &Lrec) -> Vec<String> {
        let mut tokens: Vec<String> = Vec::new();
        for (key, entries) in rec.iter() {
            for e in entries {
                if let woc_lrec::AttrValue::Ref(_) = e.value {
                    continue;
                }
                let text = e.value.display_string();
                for w in tokenize_words(&text) {
                    tokens.push(w.clone());
                    tokens.push(scoped_term(key, &w));
                }
            }
        }
        tokens
    }

    /// Index a record from a pre-computed token sequence (see
    /// [`LrecIndex::record_tokens`]) — the builder behind both
    /// [`LrecIndex::add`] and cache-driven incremental rebuilds.
    pub fn add_record_tokens(&mut self, id: LrecId, concept: ConceptId, tokens: &[String]) {
        assert!(
            !self.by_lrec.contains_key(&id),
            "record {id} already indexed; rebuild the index instead"
        );
        let doc = self.inner.add_tokens(tokens);
        debug_assert_eq!(doc.0 as usize, self.docs.len());
        self.docs.push((id, concept));
        self.by_lrec.insert(id, doc);
    }

    /// Re-index one record in place: `old_tokens` must be exactly its
    /// current indexed tokens (see [`InvertedIndex::replace_doc`]). The
    /// record keeps its internal doc id, so the patched index is
    /// indistinguishable from a fresh build over the updated records.
    /// Returns the number of postings patched.
    pub fn replace(&mut self, id: LrecId, old_tokens: &[String], new_tokens: &[String]) -> usize {
        let doc = *self
            .by_lrec
            .get(&id)
            .expect("invariant: replace() is only called for indexed records");
        self.inner.replace_doc(doc, old_tokens, new_tokens)
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Ids of all indexed records, in id order (for integrity audits that
    /// compare index membership against the record store).
    pub fn indexed_ids(&self) -> Vec<LrecId> {
        let mut ids: Vec<LrecId> = self.docs.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids
    }

    /// True if no records are indexed.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Content digest over the inner index and the record/concept mapping —
    /// see [`InvertedIndex::digest`].
    pub fn digest(&self) -> u64 {
        const PRIME: u64 = 0x100000001b3;
        let mut h = self.inner.digest();
        for (id, concept) in &self.docs {
            h ^= id.0;
            h = h.wrapping_mul(PRIME);
            h ^= concept.0 as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    /// Snapshot the corpus-global scoring statistics of the underlying
    /// inverted index — see [`InvertedIndex::scoring_stats`].
    pub fn scoring_stats(&self) -> ScoringStats {
        self.inner.scoring_stats()
    }

    /// Search with a parsed [`FieldQuery`]. `concept_resolver` maps a concept
    /// name (from `is:...`) to its id.
    pub fn search(
        &self,
        query: &FieldQuery,
        k: usize,
        concept_resolver: impl Fn(&str) -> Option<ConceptId>,
    ) -> Vec<RecordHit> {
        self.search_scored(query, k, concept_resolver, None)
    }

    /// Search scored through external corpus-global statistics — the shard
    /// form of [`LrecIndex::search`]. A shard index holding a subset of the
    /// records `stats` was snapshotted from returns, for every record it
    /// owns, exactly the hit the full index would return (bitwise-identical
    /// score), so a scatter-gather merge reproduces single-node answers.
    pub fn search_with_stats(
        &self,
        query: &FieldQuery,
        k: usize,
        concept_resolver: impl Fn(&str) -> Option<ConceptId>,
        stats: &ScoringStats,
    ) -> Vec<RecordHit> {
        self.search_scored(query, k, concept_resolver, Some(stats))
    }

    fn search_scored(
        &self,
        query: &FieldQuery,
        k: usize,
        concept_resolver: impl Fn(&str) -> Option<ConceptId>,
        stats: Option<&ScoringStats>,
    ) -> Vec<RecordHit> {
        let mut terms: Vec<String> = query.terms.clone();
        for (f, t) in &query.scoped {
            terms.push(scoped_term(f, t));
        }
        let concept_filter = query.concept.as_deref().and_then(&concept_resolver);
        // Over-fetch when filtering by concept, then trim.
        let fetch = if concept_filter.is_some() {
            k * 8 + 32
        } else {
            k
        };
        let hits = match stats {
            Some(s) => self.inner.search_terms_with_stats(&terms, fetch, s),
            None => self.inner.search_terms(&terms, fetch),
        };
        let mut out: Vec<RecordHit> = hits
            .into_iter()
            .map(|Hit { doc, score }| {
                let (id, concept) = self.docs[doc.0 as usize];
                RecordHit { id, concept, score }
            })
            .filter(|h| concept_filter.is_none_or(|c| h.concept == c))
            .collect();
        // Scoped constraints are *requirements*: a hit must match every one.
        if !query.scoped.is_empty() {
            let required: Vec<String> = query
                .scoped
                .iter()
                .map(|(f, t)| scoped_term(f, t))
                .collect();
            out.retain(|h| {
                let doc = self.by_lrec[&h.id];
                required.iter().all(|rt| {
                    self.inner
                        .search_terms(std::slice::from_ref(rt), usize::MAX)
                        .iter()
                        .any(|hit| hit.doc == doc)
                })
            });
        }
        out.truncate(k);
        out
    }

    /// Convenience: parse and search.
    pub fn query(
        &self,
        input: &str,
        k: usize,
        concept_resolver: impl Fn(&str) -> Option<ConceptId>,
    ) -> Vec<RecordHit> {
        self.search(&FieldQuery::parse(input), k, concept_resolver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_lrec::{AttrValue, Provenance, Tick};

    fn rec(id: u64, concept: u32, pairs: &[(&str, &str)]) -> Lrec {
        let mut r = Lrec::new(LrecId(id), ConceptId(concept));
        for (k, v) in pairs {
            r.add(
                k,
                AttrValue::Text(v.to_string()),
                Provenance::ground_truth(Tick(0)),
            );
        }
        r
    }

    fn index() -> LrecIndex {
        let mut ix = LrecIndex::new();
        ix.add(&rec(
            1,
            0,
            &[
                ("name", "Gochi Fusion Tapas"),
                ("city", "Cupertino"),
                ("cuisine", "Japanese"),
            ],
        ));
        ix.add(&rec(
            2,
            0,
            &[
                ("name", "El Farolito"),
                ("city", "San Francisco"),
                ("cuisine", "Mexican"),
            ],
        ));
        ix.add(&rec(
            3,
            0,
            &[
                ("name", "Casa Cantina"),
                ("city", "San Jose"),
                ("cuisine", "Mexican"),
            ],
        ));
        ix.add(&rec(
            4,
            1,
            &[("title", "Towards Entity Matching"), ("venue", "PODS")],
        ));
        ix
    }

    fn resolver(name: &str) -> Option<ConceptId> {
        match name {
            "restaurant" => Some(ConceptId(0)),
            "publication" => Some(ConceptId(1)),
            _ => None,
        }
    }

    #[test]
    fn parse_query_forms() {
        let q = FieldQuery::parse(r#"best tapas cuisine:Japanese city:"San Jose" is:restaurant"#);
        assert_eq!(q.terms, vec!["best", "tapas"]);
        assert!(q.scoped.contains(&("cuisine".into(), "japanese".into())));
        assert!(q.scoped.contains(&("city".into(), "san".into())));
        assert!(q.scoped.contains(&("city".into(), "jose".into())));
        assert_eq!(q.concept.as_deref(), Some("restaurant"));
        assert!(FieldQuery::parse("  ").is_empty());
    }

    #[test]
    fn free_text_search() {
        let ix = index();
        let hits = ix.query("gochi cupertino", 5, resolver);
        assert_eq!(hits[0].id, LrecId(1));
    }

    #[test]
    fn scoped_search_is_required() {
        let ix = index();
        // "san" appears in two records, but cuisine:mexican city:san-jose
        // pins it to Casa Cantina.
        let hits = ix.query(r#"cuisine:Mexican city:"San Jose""#, 5, resolver);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, LrecId(3));
    }

    #[test]
    fn scoped_field_mismatch_excluded() {
        let ix = index();
        // "cupertino" is a city, not a name: scoping to name must miss.
        let hits = ix.query("name:cupertino", 5, resolver);
        assert!(hits.is_empty());
    }

    #[test]
    fn concept_restriction() {
        let ix = index();
        let hits = ix.query("is:publication matching", 5, resolver);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, LrecId(4));
        // Unknown concept name yields no filter (free search).
        let hits = ix.query("is:unknown gochi", 5, resolver);
        assert!(!hits.is_empty());
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn duplicate_add_panics() {
        let mut ix = index();
        ix.add(&rec(1, 0, &[("name", "dup")]));
    }

    #[test]
    fn replace_matches_fresh_build() {
        let updated = rec(
            2,
            0,
            &[
                ("name", "El Farolito Nuevo"),
                ("city", "Oakland"),
                ("cuisine", "Mexican"),
            ],
        );
        let mut patched = index();
        let old = LrecIndex::record_tokens(&rec(
            2,
            0,
            &[
                ("name", "El Farolito"),
                ("city", "San Francisco"),
                ("cuisine", "Mexican"),
            ],
        ));
        let n = patched.replace(LrecId(2), &old, &LrecIndex::record_tokens(&updated));
        assert!(n > 0);

        let mut fresh = LrecIndex::new();
        fresh.add(&rec(
            1,
            0,
            &[
                ("name", "Gochi Fusion Tapas"),
                ("city", "Cupertino"),
                ("cuisine", "Japanese"),
            ],
        ));
        fresh.add(&updated);
        fresh.add(&rec(
            3,
            0,
            &[
                ("name", "Casa Cantina"),
                ("city", "San Jose"),
                ("cuisine", "Mexican"),
            ],
        ));
        fresh.add(&rec(
            4,
            1,
            &[("title", "Towards Entity Matching"), ("venue", "PODS")],
        ));
        assert_eq!(patched.digest(), fresh.digest());
        // The patched index serves the new content.
        let hits = patched.query("city:oakland", 5, resolver);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, LrecId(2));
        assert!(patched.query("city:francisco", 5, resolver).is_empty());
    }

    #[test]
    fn add_record_tokens_equals_add() {
        let r = rec(9, 0, &[("name", "Udon House"), ("city", "Berkeley")]);
        let mut a = LrecIndex::new();
        a.add(&r);
        let mut b = LrecIndex::new();
        b.add_record_tokens(r.id(), r.concept(), &LrecIndex::record_tokens(&r));
        assert_eq!(a.digest(), b.digest());
    }
}
