//! Each integrity check must (a) pass on a freshly built synthetic web and
//! (b) fire — with the right diagnostic code — on a web hand-corrupted to
//! break exactly that invariant.

use std::sync::OnceLock;

use woc_audit::{audit, Audit, AuditConfig};
use woc_core::{AssocKind, NodeId, WebOfConcepts};
use woc_lrec::{AttrValue, Cardinality, ConceptId, LrecId, Provenance, SourceRef, Tick};
use woc_webgen::page::url_host;
use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

/// One tiny deterministic build, cloned per test (`WebOfConcepts: Clone`).
fn fresh_web() -> WebOfConcepts {
    static BASE: OnceLock<WebOfConcepts> = OnceLock::new();
    BASE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny(7));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(7));
        woc_core::build(&corpus, &woc_core::PipelineConfig::default())
    })
    .clone()
}

fn run(woc: &WebOfConcepts) -> Audit {
    // Sample every record in the round-trip check so corruptions anywhere
    // in the store are visible to W007.
    let cfg = AuditConfig {
        roundtrip_sample: usize::MAX,
        // Uncapped diagnostics: the assertions below look for specific
        // needles that must not be crowded out by earlier violations.
        max_details: usize::MAX,
        ..AuditConfig::default()
    };
    audit(woc, &cfg)
}

/// The check with `code` fired, and its first detail mentions `needle`.
fn assert_fired(report: &Audit, code: &str, needle: &str) {
    let check = report
        .check(code)
        .unwrap_or_else(|| panic!("no check {code}"));
    assert!(
        check.violations > 0,
        "{code} should have fired:\n{}",
        report.render()
    );
    assert!(
        check.details.iter().any(|d| d.contains(needle)),
        "{code} details should mention {needle:?}, got: {:?}",
        check.details
    );
    assert!(
        !report.passed(),
        "corrupted web must fail the audit overall"
    );
}

fn next_tick(woc: &WebOfConcepts) -> Tick {
    Tick(woc.store.max_tick().0 + 1)
}

fn a_live_id(woc: &WebOfConcepts) -> LrecId {
    *woc.store
        .live_ids()
        .first()
        .expect("tiny fixture has live records")
}

#[test]
fn clean_build_passes_every_check() {
    let woc = fresh_web();
    let report = run(&woc);
    assert!(
        report.passed(),
        "clean build must audit clean:\n{}",
        report.render()
    );
    assert_eq!(report.checks.len(), 13);
    assert!(report.live_records > 0 && report.associations > 0);
    assert!((report.conformance_rate - 1.0).abs() < 1e-9);
}

#[test]
fn w001_association_to_unknown_record() {
    let mut woc = fresh_web();
    let bogus = LrecId(u64::MAX);
    woc.web
        .associate(bogus, "http://nowhere.test/ghost", AssocKind::Mentions);
    assert_fired(&run(&woc), "W001", "unknown record");
}

#[test]
fn w003_ref_to_nonexistent_record() {
    let mut woc = fresh_web();
    let id = a_live_id(&woc);
    let tick = next_tick(&woc);
    woc.store
        .update(id, tick, |rec| {
            rec.add(
                "see_also",
                AttrValue::Ref(LrecId(999_999_999)),
                Provenance::derived("corruptor", 0.9, tick),
            );
        })
        .expect("update succeeds on a live record");
    assert_fired(&run(&woc), "W003", "does not resolve");
}

#[test]
fn w004_record_with_unregistered_concept() {
    let mut woc = fresh_web();
    let tick = next_tick(&woc);
    let id = woc.store.insert(ConceptId(u32::MAX), tick, |rec| {
        rec.add(
            "name",
            AttrValue::Text("orphan".into()),
            Provenance::derived("corruptor", 0.9, tick),
        );
    });
    // Keep the lineage/index checks out of the blast radius: this test is
    // about the schema gap, not the missing postings.
    let producer = woc.lineage.operator("corruptor", vec![]);
    woc.lineage.record(id, producer);
    woc.record_index
        .add(woc.store.latest(id).expect("just inserted"));
    assert_fired(&run(&woc), "W004", "no registered schema");
}

#[test]
fn w004_conformance_rate_gates_at_threshold_one() {
    let mut woc = fresh_web();
    let id = a_live_id(&woc);
    let schema = woc
        .registry
        .schema(woc.store.latest(id).expect("live").concept())
        .expect("live records have schemas");
    // A One-cardinality attribute to overrun.
    let attr = schema
        .attrs()
        .find(|s| s.cardinality == Cardinality::One)
        .expect("fixture schemas declare One-cardinality attrs")
        .key
        .clone();
    let tick = next_tick(&woc);
    woc.store
        .update(id, tick, |rec| {
            for i in 0..4 {
                rec.add(
                    &attr,
                    AttrValue::Text(format!("alt-{i}")),
                    Provenance::derived("corruptor", 0.1, tick),
                );
            }
        })
        .expect("update succeeds");
    let cfg = AuditConfig {
        conformance_threshold: 1.0,
        ..AuditConfig::default()
    };
    let report = audit(&woc, &cfg);
    assert_fired(&report, "W004", "below threshold");
    assert!(report.conformance_rate < 1.0);
}

#[test]
fn w005_alternatives_with_excess_probability_mass() {
    let mut woc = fresh_web();
    let id = a_live_id(&woc);
    let schema = woc
        .registry
        .schema(woc.store.latest(id).expect("live").concept())
        .expect("live records have schemas");
    let attr = schema
        .attrs()
        .find(|s| s.cardinality == Cardinality::One)
        .expect("fixture schemas declare One-cardinality attrs")
        .key
        .clone();
    let tick = next_tick(&woc);
    woc.store
        .update(id, tick, |rec| {
            rec.remove(&attr);
            // Two mutually exclusive alternatives, each claimed near-certain:
            // total mass 1.85 — an impossible distribution.
            rec.add(
                &attr,
                AttrValue::Text("alternative alpha".into()),
                Provenance::derived("extractor-a", 0.95, tick),
            );
            rec.add(
                &attr,
                AttrValue::Text("alternative beta".into()),
                Provenance::derived("extractor-b", 0.9, tick),
            );
        })
        .expect("update succeeds");
    assert_fired(&run(&woc), "W005", "total mass");
}

#[test]
fn w005_confidence_outside_unit_interval() {
    let mut woc = fresh_web();
    let id = a_live_id(&woc);
    let tick = next_tick(&woc);
    woc.store
        .update(id, tick, |rec| {
            // The constructors clamp confidence into [0,1]; corrupt data
            // arrives through the public fields (e.g. a bad deserialization).
            rec.add(
                "suspicious",
                AttrValue::Text("overconfident".into()),
                Provenance {
                    source: SourceRef::Derived("corruptor".into()),
                    operator: "corruptor".into(),
                    confidence: 1.5,
                    observed_at: tick,
                    support: vec![],
                },
            );
        })
        .expect("update succeeds");
    assert_fired(&run(&woc), "W005", "outside [0,1]");
}

#[test]
fn w006_live_record_missing_from_index() {
    let mut woc = fresh_web();
    let concept = woc.store.latest(a_live_id(&woc)).expect("live").concept();
    let tick = next_tick(&woc);
    // Created in the store but never handed to the record index.
    let id = woc.store.create(concept, tick);
    let producer = woc.lineage.operator("corruptor", vec![]);
    woc.lineage.record(id, producer);
    let report = run(&woc);
    assert_fired(&report, "W006", &format!("{id}"));
    assert_fired(&report, "W006", "missing from the record index");
}

#[test]
fn w006_stale_index_entry_for_retracted_record() {
    let mut woc = fresh_web();
    let id = a_live_id(&woc);
    // Retract in the store without removing the postings.
    woc.store
        .retract(id)
        .expect("retract succeeds on a live record");
    assert_fired(&run(&woc), "W006", "stale index entry");
}

#[test]
fn w007_index_roundtrip_catches_unreindexed_update() {
    let mut woc = fresh_web();
    let id = a_live_id(&woc);
    let rec = woc.store.latest(id).expect("live");
    let attr = rec
        .iter()
        .find(|(_, entries)| {
            entries
                .iter()
                .any(|e| !matches!(e.value, AttrValue::Ref(_)))
        })
        .map(|(a, _)| a.to_string())
        .expect("live records carry text attrs");
    let tick = next_tick(&woc);
    // Rewrite the value in the store; the index still holds the old tokens,
    // so a scoped query built from the stored value comes up empty.
    woc.store
        .update(id, tick, |rec| {
            rec.remove(&attr);
            rec.add(
                &attr,
                AttrValue::Text("zzyxq never indexed".into()),
                Provenance::derived("corruptor", 0.9, tick),
            );
        })
        .expect("update succeeds");
    assert_fired(&run(&woc), "W007", "not retrieved");
}

#[test]
fn w008_lineage_forward_edge() {
    let mut woc = fresh_web();
    // The in-memory API enforces acyclicity at construction, so smuggle the
    // forward edge in the way real corruption would arrive: through a
    // serialized DAG whose bytes were damaged before deserialization.
    let dag = serde_json::to_string(&woc.lineage).expect("lineage serializes");
    let future = NodeId(woc.lineage.len() as u32 + 10);
    // First `"inputs":[]` in the stream belongs to the first source node.
    let corrupted = dag.replacen("\"inputs\":[]", &format!("\"inputs\":[{}]", future.0), 1);
    assert_ne!(dag, corrupted, "fixture lineage has an input-free node");
    woc.lineage = serde_json::from_str(&corrupted).expect("corrupted lineage deserializes");
    assert_fired(&run(&woc), "W008", "does not precede");
}

#[test]
fn w008_live_record_without_lineage() {
    let mut woc = fresh_web();
    let concept = woc.store.latest(a_live_id(&woc)).expect("live").concept();
    let tick = next_tick(&woc);
    let id = woc.store.create(concept, tick);
    woc.record_index
        .add(woc.store.latest(id).expect("just created"));
    assert_fired(&run(&woc), "W008", "no lineage node");
}

#[test]
fn w009_reported_counts_cover_every_created_id() {
    // W009 cannot be corrupted through the store's public API (resolution
    // is canonical by construction — that is the point of the check), so
    // assert its coverage instead: every ever-created id is examined,
    // including merge tombstones that no longer appear in live_ids().
    let woc = fresh_web();
    let report = run(&woc);
    let w9 = report.check("W009").expect("W009 present");
    assert_eq!(w9.checked, woc.store.total_created());
    assert!(w9.checked > report.live_records, "merges leave tombstones");
    assert!(w9.passed());
}

#[test]
fn w010_truncated_url_table() {
    let mut woc = fresh_web();
    woc.doc_urls.pop().expect("fixture has documents");
    assert_fired(&run(&woc), "W010", "doc_urls");
}

#[test]
fn w011_association_to_tombstoned_record() {
    let mut woc = fresh_web();
    // A record that the bipartite graph actually points at.
    let id = woc
        .store
        .live_ids()
        .into_iter()
        .find(|&id| !woc.web.docs_of(id).is_empty())
        .expect("fixture has associated records");
    // Retract it in the store but leave its associations and postings —
    // exactly the inconsistency a buggy maintenance pass would produce.
    woc.store.retract(id).expect("retract succeeds");
    let report = run(&woc);
    assert_fired(&report, "W011", "retracted");
    assert_fired(&report, "W011", "association");
}

#[test]
fn w011_posting_for_merged_away_record() {
    let mut woc = fresh_web();
    // Two live records of the same concept, both indexed.
    let concept = woc.store.latest(a_live_id(&woc)).expect("live").concept();
    let ids = woc.store.by_concept(concept);
    assert!(ids.len() >= 2, "fixture has multiple records per concept");
    let (survivor, merged) = (ids[0], ids[1]);
    let tick = next_tick(&woc);
    // Merge in the store without patching the index or the graph: the
    // merged-away id still has postings and associations.
    woc.store
        .merge(survivor, merged, tick)
        .expect("merge succeeds on live records");
    let report = run(&woc);
    assert_fired(&report, "W011", "merged-away");
    assert_fired(&report, "W011", &format!("canonical is {survivor}"));
}

#[test]
fn w012_lineage_quarantine_disagrees_with_report() {
    let mut woc = fresh_web();
    // A quarantine node the pipeline report knows nothing about.
    woc.lineage
        .quarantine("http://flaky.test/page-1", "truncated");
    assert_fired(&run(&woc), "W012", "report accounts for 0");
}

#[test]
fn w012_quarantine_without_reason() {
    let mut woc = fresh_web();
    woc.lineage.quarantine("http://flaky.test/page-2", "");
    woc.report.pages_quarantined = 1;
    assert_fired(&run(&woc), "W012", "no recorded reason");
}

#[test]
fn w012_quarantined_page_still_indexed() {
    let mut woc = fresh_web();
    // Quarantine a page that is demonstrably in the document tables.
    let url = woc.doc_urls[0].clone();
    woc.lineage.quarantine(&url, "garbled");
    woc.report.pages_quarantined = 1;
    assert_fired(&run(&woc), "W012", "present in the document tables");
}

#[test]
fn w012_record_sourced_solely_from_quarantined_pages() {
    let mut woc = fresh_web();
    // Find a live record with extraction provenance and quarantine every
    // page it was extracted from.
    let id = woc
        .store
        .live_ids()
        .into_iter()
        .find(|&id| {
            !woc.web
                .docs_of_kind(id, AssocKind::ExtractedFrom)
                .is_empty()
        })
        .expect("fixture has extracted records");
    let docs: Vec<String> = woc
        .web
        .docs_of_kind(id, AssocKind::ExtractedFrom)
        .iter()
        .map(|d| d.to_string())
        .collect();
    for d in &docs {
        woc.lineage.quarantine(d, "site-unavailable");
    }
    woc.report.pages_failed = docs.len();
    assert_fired(&run(&woc), "W012", "solely from quarantined pages");
}

#[test]
fn json_report_is_serializable_and_stable() {
    let woc = fresh_web();
    let report = run(&woc);
    let json = serde_json::to_string(&report).expect("report serializes");
    for code in ["W001", "W004", "W007", "W010"] {
        assert!(json.contains(code), "JSON report should carry {code}");
    }
}

// ---------------------------------------------------------------- W013

/// A well-formed single-shard coverage view for the fixture web: every
/// live record and document owned by shard 0, two byte-identical replicas
/// at the expected epoch.
fn clean_view(woc: &WebOfConcepts) -> woc_audit::ShardCoverageView {
    woc_audit::ShardCoverageView {
        shards: 1,
        record_owners: woc.store.live_ids().into_iter().map(|id| (id, 0)).collect(),
        doc_owners: woc.doc_urls.iter().map(|u| (u.clone(), 0)).collect(),
        expected_epoch: 1,
        replicas: vec![vec![(1, 0xabcd), (1, 0xabcd)]],
    }
}

fn run_cluster(woc: &WebOfConcepts, view: &woc_audit::ShardCoverageView) -> Audit {
    woc_audit::audit_with_cluster(woc, view, &AuditConfig::default())
}

#[test]
fn w013_passes_on_clean_coverage() {
    let woc = fresh_web();
    let report = run_cluster(&woc, &clean_view(&woc));
    assert!(
        report.passed(),
        "clean view must pass:\n{}",
        report.render()
    );
    assert!(report.check("W013").is_some());
}

#[test]
fn w013_uncovered_record_fires() {
    let woc = fresh_web();
    let mut view = clean_view(&woc);
    view.record_owners.pop();
    assert_fired(&run_cluster(&woc, &view), "W013", "owned by no shard");
}

#[test]
fn w013_double_owned_record_fires() {
    let woc = fresh_web();
    let mut view = clean_view(&woc);
    let dup = view.record_owners[0];
    view.record_owners.push(dup);
    assert_fired(&run_cluster(&woc, &view), "W013", "owned by 2 shards");
}

#[test]
fn w013_out_of_range_owner_fires() {
    let woc = fresh_web();
    let mut view = clean_view(&woc);
    view.record_owners[0].1 = 7;
    assert_fired(&run_cluster(&woc, &view), "W013", "out of range");
}

#[test]
fn w013_uncovered_document_fires() {
    let woc = fresh_web();
    let mut view = clean_view(&woc);
    view.doc_owners.pop();
    assert_fired(&run_cluster(&woc, &view), "W013", "owned by no shard");
}

#[test]
fn w013_divergent_replicas_fire() {
    let woc = fresh_web();
    let mut view = clean_view(&woc);
    view.replicas[0][1] = (1, 0xbeef);
    assert_fired(&run_cluster(&woc, &view), "W013", "diverge");
}

// ---------------------------------------------------------------- W014

/// A clean segmented index over the fixture web — one frozen base segment,
/// pinned stats taken at build, i.e. a merge point.
fn fresh_segments(woc: &WebOfConcepts) -> woc_index::SegmentedLrecIndex {
    woc.segmented_record_index(woc_index::MergePolicy::default())
}

fn run_segments(woc: &WebOfConcepts, segments: &woc_index::SegmentedLrecIndex) -> Audit {
    woc_audit::audit_with_segments(woc, segments, &AuditConfig::default())
}

#[test]
fn w014_passes_on_clean_segments() {
    let woc = fresh_web();
    let segments = fresh_segments(&woc);
    assert_eq!(segments.delta_count(), 0, "a fresh build is a merge point");
    let report = run_segments(&woc, &segments);
    assert!(
        report.passed(),
        "clean segments must pass:\n{}",
        report.render()
    );
    let check = report.check("W014").expect("W014 present");
    assert!(check.checked > 0);
}

#[test]
fn w014_passes_mid_delta_and_reports_stale_pins() {
    // A real maintenance round: the engine patches the flat index and the
    // segments in lock-step, so W014 must hold mid-delta — with the pinned
    // stats reported (not gated) while delta segments are stacked.
    use woc_webgen::{churn_restaurants, World as WgWorld};
    let mut world = WgWorld::generate(WorldConfig::tiny(14));
    let cfg = CorpusConfig::tiny(14);
    let corpus_v1 = generate_corpus(&world, &cfg);
    let mut engine = woc_incr::IncrEngine::new(&corpus_v1, woc_core::PipelineConfig::default());
    let mut seed = 1u64;
    while churn_restaurants(&mut world, 0.05, Tick(10), seed).is_empty() {
        seed += 1;
    }
    let corpus_v2 = generate_corpus(&world, &cfg);
    let report = engine.maintain(&corpus_v2).expect("maintain succeeds");
    assert!(!report.short_circuited);
    assert!(engine.segments().delta_count() > 0, "churn stacked a delta");
    let audit_report = run_segments(engine.web(), engine.segments());
    assert!(
        audit_report.passed(),
        "mid-delta segments must audit clean:\n{}",
        audit_report.render()
    );
    let check = audit_report.check("W014").expect("W014 present");
    assert!(
        check.info.iter().any(|i| i.contains("stale")),
        "stale pinned stats must be reported: {:?}",
        check.info
    );
}

#[test]
fn w014_record_dropped_from_liveness_map_fires() {
    let woc = fresh_web();
    let mut segments = fresh_segments(&woc);
    let id = a_live_id(&woc);
    segments.corrupt_set_owner(id, None);
    let report = run_segments(&woc, &segments);
    assert_fired(&report, "W014", "absent from the liveness map");
}

#[test]
fn w014_owner_pointing_at_wrong_segment_fires() {
    let woc = fresh_web();
    let mut segments = fresh_segments(&woc);
    let id = a_live_id(&woc);
    segments.corrupt_set_owner(id, Some(5));
    assert_fired(&run_segments(&woc, &segments), "W014", "dead sets serve it");
}

#[test]
fn w014_live_record_marked_dead_in_its_segment_fires() {
    let woc = fresh_web();
    let mut segments = fresh_segments(&woc);
    let id = a_live_id(&woc);
    let owner = segments.owner_of(id).expect("live record has an owner");
    segments.corrupt_set_dead(owner, id, true);
    assert_fired(
        &run_segments(&woc, &segments),
        "W014",
        "every segment posting is dead",
    );
}

#[test]
fn w014_corrupt_pinned_stats_fire_at_a_merge_point() {
    let woc = fresh_web();
    let mut segments = fresh_segments(&woc);
    assert_eq!(segments.delta_count(), 0);
    segments.corrupt_pinned_stats(woc_index::LrecIndex::new().scoring_stats());
    assert_fired(&run_segments(&woc, &segments), "W014", "merge point");
}

#[test]
fn w013_all_replicas_stale_fires_but_one_stale_is_info() {
    let woc = fresh_web();
    let mut view = clean_view(&woc);
    // One stale replica: degraded, reported, not a violation.
    view.replicas[0][1] = (0, 0x1111);
    let report = run_cluster(&woc, &view);
    assert!(report.passed(), "{}", report.render());
    let check = report.check("W013").expect("W013 present");
    assert!(check.info.iter().any(|i| i.contains("stale")));
    // Every replica stale: the shard is uncovered at the expected epoch.
    view.replicas[0][0] = (0, 0x1111);
    assert_fired(&run_cluster(&woc, &view), "W013", "all stale or dead");
}

// ---- W016: source reliability -----------------------------------------

#[test]
fn w016_tampered_trust_score_fires() {
    let mut woc = fresh_web();
    let site = woc
        .trust
        .site_trust
        .keys()
        .next()
        .expect("fixture has trusted sites")
        .clone();
    // Nudge one converged score: the fixpoint is deterministic, so any
    // stored score the recomputation cannot reproduce is tampering.
    *woc.trust
        .site_trust
        .get_mut(&site)
        .expect("site row exists") += 0.25;
    assert_fired(&run(&woc), "W016", "tampered trust score");
}

#[test]
fn w016_quarantined_sole_source_value_fires() {
    let mut woc = fresh_web();
    // Declare a value-sourcing site quarantined (consistently, in both the
    // model and lineage) without running the scrub: every live value it
    // sourced now rests solely on a quarantined-trust site, and its pages
    // are still in the document tables.
    let id = a_live_id(&woc);
    let host = woc
        .store
        .latest(id)
        .expect("live")
        .iter()
        .flat_map(|(_, entries)| entries)
        .find_map(|e| e.provenance.document_url())
        .map(|u| url_host(u).to_string())
        .expect("live records carry document-sourced values");
    let reason = "trust 0.10 < 0.50".to_string();
    woc.trust.quarantined.push((host.clone(), reason.clone()));
    woc.lineage.quarantine_site(&host, &reason);
    let report = run(&woc);
    assert_fired(
        &report,
        "W016",
        "sourced solely from quarantined-trust sites",
    );
    // The un-recomputable quarantine decision is itself reported.
    assert_fired(&report, "W016", "quarantine set mismatch");
}

#[test]
fn w016_reliability_ignored_merge_winner_fires() {
    let mut woc = fresh_web();
    assert!(
        !woc.trust.selections.is_empty(),
        "fixture reconciliation logs selections"
    );
    // The selection log claims a winner the record does not actually serve —
    // a reconciler that ignored the reliability weighting would look exactly
    // like this.
    woc.trust.selections[0].value = "value the reconciler never chose".to_string();
    assert_fired(&run(&woc), "W016", "reliability-ignored winner");
}

#[test]
fn w016_selection_supported_only_by_quarantined_sites_fires() {
    let mut woc = fresh_web();
    let sel_site = woc
        .trust
        .selections
        .iter()
        .flat_map(|s| &s.support)
        .map(|s| s.site.clone())
        .next()
        .expect("fixture selections carry site support");
    let reason = "trust 0.10 < 0.50".to_string();
    woc.trust
        .quarantined
        .push((sel_site.clone(), reason.clone()));
    woc.lineage.quarantine_site(&sel_site, &reason);
    assert_fired(&run(&woc), "W016", "supported only by quarantined sites");
}

// ---- W015: stream watermark -------------------------------------------

use woc_audit::{check_stream_epochs, stream_digest, MicroEpochView, PageChangeView};

/// A valid two-micro-epoch journal, watermarks stamped with the same
/// [`stream_digest`] the check recomputes with.
fn stream_journal() -> Vec<MicroEpochView> {
    let first_pages = vec![
        PageChangeView {
            url: "http://a.example.com/1".into(),
            old_fp: None,
            new_fp: Some(0xaaaa),
        },
        PageChangeView {
            url: "http://b.example.com/1".into(),
            old_fp: Some(0x1111),
            new_fp: Some(0x2222),
        },
    ];
    let second_pages = vec![PageChangeView {
        url: "http://b.example.com/1".into(),
        old_fp: Some(0x2222),
        new_fp: None,
    }];
    let d1 = stream_digest(0, &first_pages);
    let d2 = stream_digest(d1, &second_pages);
    vec![
        MicroEpochView {
            ordinal: 0,
            prev_events: 0,
            prev_digest: 0,
            events: 2,
            digest: d1,
            changed_pages: first_pages,
            changed_records: vec![LrecId(3)],
            lineage_affected: vec![LrecId(3), LrecId(4)],
            published_epoch: 2,
            effective: true,
        },
        MicroEpochView {
            ordinal: 1,
            prev_events: 2,
            prev_digest: d1,
            events: 3,
            digest: d2,
            changed_pages: second_pages,
            changed_records: vec![],
            lineage_affected: vec![LrecId(3)],
            published_epoch: 2,
            effective: false,
        },
    ]
}

#[test]
fn w015_watermark_regression_fires() {
    let cfg = AuditConfig::default();
    let clean = check_stream_epochs(&stream_journal(), &cfg);
    assert!(
        clean.passed(),
        "valid journal must pass: {:?}",
        clean.details
    );

    // A replayed (non-advancing) watermark: the second micro-epoch claims
    // the same event count as its predecessor.
    let mut epochs = stream_journal();
    epochs[1].events = epochs[1].prev_events;
    let c = check_stream_epochs(&epochs, &cfg);
    assert!(!c.passed());
    assert!(
        c.details.iter().any(|d| d.contains("strictly advance")),
        "{:?}",
        c.details
    );

    // A watermark whose digest was not computed from its changed pages —
    // the content-defined chain must break.
    let mut epochs = stream_journal();
    epochs[0].digest ^= 1;
    let c = check_stream_epochs(&epochs, &cfg);
    assert!(!c.passed());
    // The tampered digest fails its own recomputation AND unchains the
    // successor's prev watermark.
    assert!(
        c.details.iter().any(|d| d.contains("does not recompute")),
        "{:?}",
        c.details
    );
    assert!(
        c.details.iter().any(|d| d.contains("does not chain")),
        "{:?}",
        c.details
    );
}

#[test]
fn w015_changed_record_outside_lineage_fires() {
    let cfg = AuditConfig::default();

    // A delta claiming to change a record no changed page can explain.
    let mut epochs = stream_journal();
    epochs[0].changed_records.push(LrecId(999));
    let c = check_stream_epochs(&epochs, &cfg);
    assert!(!c.passed());
    assert!(
        c.details
            .iter()
            .any(|d| d.contains("999") && d.contains("not lineage-affected")),
        "{:?}",
        c.details
    );

    // A no-op transition surviving dedup is the same class of inexactness:
    // the journal claims a change the fingerprint plane never saw.
    let mut epochs = stream_journal();
    epochs[1].changed_pages[0].new_fp = epochs[1].changed_pages[0].old_fp;
    epochs[1].digest = stream_digest(epochs[1].prev_digest, &epochs[1].changed_pages);
    let c = check_stream_epochs(&epochs, &cfg);
    assert!(!c.passed());
    assert!(
        c.details
            .iter()
            .any(|d| d.contains("not a real transition")),
        "{:?}",
        c.details
    );
}
