//! # woc-audit — structural integrity audit over a built web of concepts
//!
//! The construction pipeline is heuristic, but the artifact it emits has
//! exact structural invariants: associations point at records that exist,
//! `Ref` values resolve, the record index agrees with the record store, the
//! lineage DAG is acyclic, merge resolution is canonical. This crate checks
//! those invariants over any [`WebOfConcepts`] and reports violations with
//! record ids, as human diagnostics and machine-readable JSON — the
//! static-analysis counterpart, over data, of what `woc-lint` does over
//! source.
//!
//! Every check has a stable code (`W001`…`W016`) so CI logs and dashboards
//! can track specific regressions:
//!
//! | code | name               | invariant |
//! |------|--------------------|-----------|
//! | W001 | dangling-assoc     | every association endpoint resolves to a stored record |
//! | W002 | assoc-symmetry     | record→doc and doc→record edge sets mirror each other |
//! | W003 | dangling-ref       | every `Ref` attribute resolves through merges to a live record |
//! | W004 | schema-conformance | live records conform to their concept schema (rate ≥ threshold) |
//! | W005 | prob-mass          | confidences lie in [0,1]; alternatives of a One-cardinality attribute carry total mass ≤ 1+ε |
//! | W006 | index-postings     | the record index holds exactly the live record ids |
//! | W007 | index-roundtrip    | sampled indexed fields are findable via scoped search |
//! | W008 | lineage-acyclic    | lineage inputs precede their node; live records have lineage |
//! | W009 | merge-canonical    | id resolution is idempotent and lands on live records |
//! | W010 | doc-tables         | document index, URL and title tables agree in length |
//! | W011 | tombstone-epoch    | no live association or index posting references a retracted or merged-away record |
//! | W012 | quarantine-lineage | every quarantined page carries a reason in lineage, the report agrees with the lineage count, quarantined pages are not indexed, and no live record's extraction rests solely on quarantined pages |
//! | W013 | shard-coverage     | under a cluster partition map, every live record and every indexed document is owned by exactly one in-range shard, every shard has at least one replica serving the expected epoch, and all such replicas are byte-identical (stale replicas are reported, not silently served) |
//! | W014 | segment-metadata   | under a segmented record index, every live record is served live from exactly one segment and the liveness map, per-segment dead sets, and tombstones agree; the segmented view flattens byte-identically to the web's flat index; and at merge points the pinned scoring statistics equal a flat recomputation |
//! | W015 | stream-watermark   | under streaming ingest, every published micro-epoch's content-defined watermark strictly advances and chains to its predecessor, the watermark digest recomputes from the micro-epoch's changed pages, every changed page carries a real fingerprint transition, and the delta's changed records are drawn exactly from the records whose source-page fingerprints changed since the previous watermark |
//! | W016 | source-reliability | the trust fixpoint recomputes from the model's stored claims (scores within ε, identical quarantine set), the lineage site-quarantine entries mirror the model's, no live value or record rests solely on quarantined-trust sites, no quarantined site survives in the document tables, and every logged reconciliation selection is actually the live first value with not-all-quarantined support |
//!
//! W001–W012 and W016 run over any web via [`audit`]; W013 additionally needs the
//! cluster's [`ShardCoverageView`] and runs via [`check_shard_coverage`] or
//! [`audit_with_cluster`] — the view is plain data, so the audit stays
//! independent of the cluster crate that produces it. W014 runs over a
//! [`SegmentedLrecIndex`] via [`check_segments`] or [`audit_with_segments`].
//! W015 follows the W013 pattern: the streaming engine (`woc-stream`)
//! reports its micro-epoch journal as plain-data [`MicroEpochView`]s and
//! the check runs via [`check_stream_epochs`] or [`audit_with_stream`];
//! [`stream_digest`] is the single definition of the watermark digest —
//! the engine calls it to stamp watermarks, the audit calls it to verify
//! them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;

use woc_core::{uncertainty::group_by_denotation, AssocKind, NodeId, TrustModel, WebOfConcepts};
use woc_index::lrec_index::FieldQuery;
use woc_index::SegmentedLrecIndex;
use woc_lrec::{AttrValue, Cardinality, LrecId, Violation};
use woc_textkit::tokenize::tokenize_words;
use woc_webgen::page::url_host;

/// Tunables for the audit.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Minimum fraction of live records without hard schema violations
    /// (kind mismatches, cardinality overruns). Undeclared keys are
    /// reported but never gate — the paper treats them as schema-evolution
    /// signal, not corruption.
    pub conformance_threshold: f64,
    /// Slack for probability-mass sums (float accumulation).
    pub epsilon: f64,
    /// Number of records sampled for the index round-trip check.
    pub roundtrip_sample: usize,
    /// Per-check cap on detailed diagnostics (total counts are always exact).
    pub max_details: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            conformance_threshold: 0.9,
            epsilon: 1e-6,
            roundtrip_sample: 64,
            max_details: 20,
        }
    }
}

/// Result of one integrity check.
#[derive(Debug, Clone, Serialize)]
pub struct CheckResult {
    /// Stable code, e.g. `W003`.
    pub code: String,
    /// Human name, e.g. `dangling-ref`.
    pub name: String,
    /// Units examined (edges, records, nodes — per check).
    pub checked: usize,
    /// Number of violations found (exact, even when details are capped).
    pub violations: usize,
    /// Capped per-violation diagnostics, each naming the offending ids.
    pub details: Vec<String>,
    /// Non-gating observations (rates, undeclared keys).
    pub info: Vec<String>,
}

impl CheckResult {
    fn new(code: &str, name: &str) -> Self {
        Self {
            code: code.to_string(),
            name: name.to_string(),
            checked: 0,
            violations: 0,
            details: Vec::new(),
            info: Vec::new(),
        }
    }

    fn violation(&mut self, cap: usize, msg: String) {
        self.violations += 1;
        if self.details.len() < cap {
            self.details.push(msg);
        }
    }

    /// True if the invariant held.
    pub fn passed(&self) -> bool {
        self.violations == 0
    }
}

/// The full audit report.
#[derive(Debug, Clone, Serialize)]
pub struct Audit {
    /// All checks, in code order.
    pub checks: Vec<CheckResult>,
    /// Live records examined.
    pub live_records: usize,
    /// Associations examined.
    pub associations: usize,
    /// Fraction of live records with no hard schema violations.
    pub conformance_rate: f64,
}

impl Audit {
    /// True if every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(CheckResult::passed)
    }

    /// The check with the given code.
    pub fn check(&self, code: &str) -> Option<&CheckResult> {
        self.checks.iter().find(|c| c.code == code)
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            let status = if c.passed() { "ok  " } else { "FAIL" };
            out.push_str(&format!(
                "{status} {} {:<18} checked {:>6}, violations {}\n",
                c.code, c.name, c.checked, c.violations
            ));
            for d in &c.details {
                out.push_str(&format!("       - {d}\n"));
            }
            if c.violations > c.details.len() {
                out.push_str(&format!(
                    "       … and {} more\n",
                    c.violations - c.details.len()
                ));
            }
            for i in &c.info {
                out.push_str(&format!("       · {i}\n"));
            }
        }
        out.push_str(&format!(
            "audit: {} live records, {} associations, conformance {:.4} — {}\n",
            self.live_records,
            self.associations,
            self.conformance_rate,
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// Run every integrity check over a built web.
pub fn audit(woc: &WebOfConcepts, cfg: &AuditConfig) -> Audit {
    let live = woc.store.live_ids();
    let mut checks = vec![
        check_dangling_assoc(woc, cfg),
        check_assoc_symmetry(woc, cfg),
        check_dangling_ref(woc, cfg, &live),
    ];
    let (conf_check, conformance_rate) = check_schema_conformance(woc, cfg, &live);
    checks.push(conf_check);
    checks.push(check_prob_mass(woc, cfg, &live));
    checks.push(check_index_postings(woc, cfg, &live));
    checks.push(check_index_roundtrip(woc, cfg, &live));
    checks.push(check_lineage(woc, cfg, &live));
    checks.push(check_merge_canonical(woc, cfg));
    checks.push(check_doc_tables(woc, cfg));
    checks.push(check_tombstones(woc, cfg));
    checks.push(check_quarantine_lineage(woc, cfg, &live));
    checks.push(check_trust(woc, cfg, &live));
    Audit {
        checks,
        live_records: live.len(),
        associations: woc.web.len(),
        conformance_rate,
    }
}

/// The cluster-side facts W013 verifies, reported by the serving tier
/// (`woc-cluster`) as plain data so this crate never depends on it.
#[derive(Debug, Clone, Default)]
pub struct ShardCoverageView {
    /// Number of shards in the topology.
    pub shards: usize,
    /// The partition map: `(record id, owning shard)` for every record the
    /// cluster claims to own.
    pub record_owners: Vec<(LrecId, usize)>,
    /// The document partition: `(doc URL, owning shard)`.
    pub doc_owners: Vec<(String, usize)>,
    /// The cluster epoch every replica is expected to serve.
    pub expected_epoch: u64,
    /// Per shard, per replica slot: `(served epoch, content digest of the
    /// replica's shard state — indexes plus scoring stats)`.
    pub replicas: Vec<Vec<(u64, u64)>>,
}

/// Run W001–W012 over the web plus the W013 shard-coverage check over the
/// cluster's view of it — the audit entry point for clustered serving.
pub fn audit_with_cluster(
    woc: &WebOfConcepts,
    view: &ShardCoverageView,
    cfg: &AuditConfig,
) -> Audit {
    let mut a = audit(woc, cfg);
    a.checks.push(check_shard_coverage(woc, view, cfg));
    a
}

/// W013: shard coverage — the partition the cluster serves through must
/// tile the web exactly. Every live record and every indexed document is
/// owned by exactly one shard, owners are in range, nothing dead is owned;
/// every shard has at least one replica serving the expected epoch, and all
/// replicas serving it are byte-identical (equal content digests). Replicas
/// on other epochs are *reported* (they are what a failover left behind)
/// but do not fail the check — the router already refuses to serve them
/// silently.
pub fn check_shard_coverage(
    woc: &WebOfConcepts,
    view: &ShardCoverageView,
    cfg: &AuditConfig,
) -> CheckResult {
    let mut c = CheckResult::new("W013", "shard-coverage");
    let mut record_owner: std::collections::BTreeMap<LrecId, Vec<usize>> = Default::default();
    for &(id, shard) in &view.record_owners {
        record_owner.entry(id).or_default().push(shard);
        if shard >= view.shards {
            c.violation(
                cfg.max_details,
                format!(
                    "record {id} owned by shard {shard}, out of range for {} shards",
                    view.shards
                ),
            );
        }
    }
    for id in woc.store.live_ids() {
        c.checked += 1;
        match record_owner.get(&id).map(Vec::len).unwrap_or(0) {
            1 => {}
            0 => c.violation(
                cfg.max_details,
                format!("live record {id} is owned by no shard (uncovered)"),
            ),
            n => c.violation(
                cfg.max_details,
                format!("live record {id} is owned by {n} shards (double-owned)"),
            ),
        }
    }
    for (&id, _) in record_owner.iter() {
        if woc.store.latest(id).is_none() {
            c.violation(
                cfg.max_details,
                format!("shard map owns record {id}, which is not live"),
            );
        }
    }
    let mut doc_owner: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
    for (url, shard) in &view.doc_owners {
        doc_owner.entry(url.as_str()).or_default().push(*shard);
        if *shard >= view.shards {
            c.violation(
                cfg.max_details,
                format!(
                    "document {url} owned by shard {shard}, out of range for {} shards",
                    view.shards
                ),
            );
        }
    }
    for url in &woc.doc_urls {
        c.checked += 1;
        match doc_owner.get(url.as_str()).map(Vec::len).unwrap_or(0) {
            1 => {}
            0 => c.violation(
                cfg.max_details,
                format!("indexed document {url} is owned by no shard"),
            ),
            n => c.violation(
                cfg.max_details,
                format!("indexed document {url} is owned by {n} shards"),
            ),
        }
    }
    if view.replicas.len() != view.shards {
        c.violation(
            cfg.max_details,
            format!(
                "replica table covers {} shards but the topology declares {}",
                view.replicas.len(),
                view.shards
            ),
        );
    }
    let mut stale = 0usize;
    for (shard, replicas) in view.replicas.iter().enumerate() {
        c.checked += 1;
        let current: Vec<u64> = replicas
            .iter()
            .filter(|(epoch, _)| *epoch == view.expected_epoch)
            .map(|&(_, digest)| digest)
            .collect();
        stale += replicas.len() - current.len();
        match current.first() {
            None => c.violation(
                cfg.max_details,
                format!(
                    "shard {shard} has no replica serving epoch {} ({} replicas, all stale or dead)",
                    view.expected_epoch,
                    replicas.len()
                ),
            ),
            Some(&first) => {
                if current.iter().any(|&d| d != first) {
                    c.violation(
                        cfg.max_details,
                        format!(
                            "shard {shard} replicas at epoch {} diverge: digests {current:x?}",
                            view.expected_epoch
                        ),
                    );
                }
            }
        }
    }
    if stale > 0 {
        c.info.push(format!(
            "{stale} replica(s) serving a stale epoch (degraded, not served)"
        ));
    }
    c
}

/// Run W001–W012 over the web plus the W014 segment-metadata check over
/// the segmented record index serving it — the audit entry point for
/// LSM-style segmented serving (`woc-serve` snapshots, `woc-incr` engines).
pub fn audit_with_segments(
    woc: &WebOfConcepts,
    segments: &SegmentedLrecIndex,
    cfg: &AuditConfig,
) -> Audit {
    let mut a = audit(woc, cfg);
    a.checks.push(check_segments(woc, segments, cfg));
    a
}

/// W014: segment metadata — the segmented index's three metadata planes
/// (liveness map, per-segment dead sets, tombstones) must agree with each
/// other and with the record store:
///
/// - every store-live record is served live from **exactly one** segment,
///   and that segment is the one the liveness map names (the map feeds
///   [`SegmentedLrecIndex::flatten`]; the dead sets feed the search path —
///   if they disagree, search and flatten serve different webs);
/// - a record live in no segment must be tombstoned or store-dead, never
///   silently dropped;
/// - the segmented view flattens byte-identically to the web's flat record
///   index (digest equality);
/// - at merge points (no delta segments stacked) the **pinned** scoring
///   statistics equal a recomputation from the flattened view — between
///   merge points they are intentionally stale (that staleness is what
///   keeps cached scores pure), so they are reported, not gated.
pub fn check_segments(
    woc: &WebOfConcepts,
    segments: &SegmentedLrecIndex,
    cfg: &AuditConfig,
) -> CheckResult {
    let mut c = CheckResult::new("W014", "segment-metadata");

    // Live-posting count per id, from the per-slot dead sets (the search
    // path's view of liveness).
    let mut live_slots: std::collections::BTreeMap<LrecId, Vec<usize>> = Default::default();
    for slot in 0..segments.segment_count() {
        for (id, dead) in segments.slot_entries(slot) {
            if !dead {
                live_slots.entry(id).or_default().push(slot);
            }
        }
    }
    let tombstoned: std::collections::BTreeSet<LrecId> =
        segments.tombstoned().into_iter().collect();
    let store_live: std::collections::BTreeSet<LrecId> = woc.store.live_ids().into_iter().collect();

    // Every id any segment carries: the three planes must agree.
    let mut all_ids: std::collections::BTreeSet<LrecId> = live_slots.keys().copied().collect();
    for slot in 0..segments.segment_count() {
        all_ids.extend(segments.slot_entries(slot).into_iter().map(|(id, _)| id));
    }
    for &id in &all_ids {
        c.checked += 1;
        let slots = live_slots.get(&id).map(Vec::as_slice).unwrap_or(&[]);
        match (segments.owner_of(id), slots) {
            (Some(owner), [slot]) if *slot == owner => {}
            (Some(owner), [slot]) => c.violation(
                cfg.max_details,
                format!(
                    "record {id}: liveness map names segment {owner} but the dead sets serve it from segment {slot}"
                ),
            ),
            (Some(owner), []) => c.violation(
                cfg.max_details,
                format!(
                    "record {id}: liveness map names segment {owner} but every segment posting is dead"
                ),
            ),
            (Some(owner), slots) => c.violation(
                cfg.max_details,
                format!(
                    "record {id}: live in {} segments {slots:?} (owner {owner}) — postings must be live in exactly one",
                    slots.len()
                ),
            ),
            (None, []) => {
                if !tombstoned.contains(&id) && store_live.contains(&id) {
                    c.violation(
                        cfg.max_details,
                        format!(
                            "record {id}: store-live but served by no segment and not tombstoned"
                        ),
                    );
                }
            }
            (None, slots) => c.violation(
                cfg.max_details,
                format!(
                    "record {id}: absent from the liveness map but live in segments {slots:?}"
                ),
            ),
        }
    }
    // Every store-live record must be carried by some segment at all.
    for &id in &store_live {
        if !all_ids.contains(&id) {
            c.checked += 1;
            c.violation(
                cfg.max_details,
                format!("store-live record {id} appears in no segment"),
            );
        }
    }

    // The flatten and stat checks dereference the liveness map, so they
    // only run once the membership planes are known-consistent — a corrupt
    // map has already failed the check above.
    if c.violations > 0 {
        c.info
            .push("flatten/stat checks skipped: membership planes inconsistent".to_string());
        return c;
    }

    // The segmented view must flatten to the flat truth, bit for bit.
    c.checked += 1;
    let flat = segments.flatten();
    if flat.digest() != woc.record_index.digest() {
        c.violation(
            cfg.max_details,
            format!(
                "segmented index flattens to digest {:016x}, flat record index is {:016x}",
                flat.digest(),
                woc.record_index.digest()
            ),
        );
    }

    // Pinned stats: gate only at merge points; report staleness between.
    c.checked += 1;
    let pinned = segments.pinned_stats().digest();
    let recomputed = flat.scoring_stats().digest();
    if segments.delta_count() == 0 {
        if pinned != recomputed {
            c.violation(
                cfg.max_details,
                format!(
                    "at a merge point the pinned stats ({pinned:016x}) must equal a flat recomputation ({recomputed:016x})"
                ),
            );
        }
    } else if pinned != recomputed {
        c.info.push(format!(
            "pinned stats intentionally stale across {} delta segment(s)",
            segments.delta_count()
        ));
    }
    c.info.push(format!(
        "{} segment(s), {} tombstone(s), {} merges, {} compactions",
        segments.segment_count(),
        tombstoned.len(),
        segments.merge_count(),
        segments.compaction_count()
    ));
    c
}

/// One page's fingerprint transition inside a micro-epoch, as the
/// streaming engine observed it: `None → Some` is a first crawl,
/// `Some → Some` a recrawl whose content changed, `Some → None` a removal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageChangeView {
    /// The page URL.
    pub url: String,
    /// Fingerprint before the micro-epoch (`None` if the page was new).
    pub old_fp: Option<u64>,
    /// Fingerprint after the micro-epoch (`None` if the page was removed).
    pub new_fp: Option<u64>,
}

/// The stream-side facts W015 verifies, reported by the streaming ingest
/// tier (`woc-stream`) for each published micro-epoch as plain data so
/// this crate never depends on it — the same layering as W013's
/// [`ShardCoverageView`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MicroEpochView {
    /// Position in the journal; the first micro-epoch of a stream is 0.
    pub ordinal: u64,
    /// Event count of the previous watermark (0 for the first micro-epoch).
    pub prev_events: u64,
    /// Digest of the previous watermark (0 for the first micro-epoch).
    pub prev_digest: u64,
    /// Event count of this micro-epoch's watermark: cumulative changed
    /// pages since the stream started.
    pub events: u64,
    /// Digest of this micro-epoch's watermark: [`stream_digest`] folded
    /// over `changed_pages` starting from `prev_digest`.
    pub digest: u64,
    /// The deduplicated fingerprint transitions this micro-epoch applied.
    pub changed_pages: Vec<PageChangeView>,
    /// Records the published delta actually changed.
    pub changed_records: Vec<LrecId>,
    /// Records whose lineage touches the changed pages — the candidate
    /// set `changed_records` was filtered from.
    pub lineage_affected: Vec<LrecId>,
    /// The serving epoch after this micro-epoch's publish.
    pub published_epoch: u64,
    /// Whether the publish advanced the serving epoch (an effectively
    /// empty delta leaves it unchanged).
    pub effective: bool,
}

/// The content-defined watermark digest: an FNV-1a chain seeded from the
/// previous watermark's digest and folded over the micro-epoch's page
/// transitions in **sorted URL order** — a pure function of what changed,
/// never of arrival order, worker count, or wall clock. Both the streaming
/// engine (to stamp watermarks) and W015 (to verify them) call this; there
/// is deliberately no second implementation to drift.
pub fn stream_digest(prev_digest: u64, changed_pages: &[PageChangeView]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(PRIME);
        }
    }
    fn eat_fp(h: &mut u64, fp: Option<u64>) {
        match fp {
            Some(v) => {
                eat(h, &[1]);
                eat(h, &v.to_le_bytes());
            }
            None => eat(h, &[0]),
        }
    }
    let mut sorted: Vec<&PageChangeView> = changed_pages.iter().collect();
    sorted.sort_by(|a, b| a.url.cmp(&b.url));
    let mut h = OFFSET;
    eat(&mut h, &prev_digest.to_le_bytes());
    for pc in sorted {
        eat(&mut h, pc.url.as_bytes());
        eat(&mut h, &[0xff]);
        eat_fp(&mut h, pc.old_fp);
        eat_fp(&mut h, pc.new_fp);
    }
    h
}

/// Run W001–W012, W014 over the web and its segmented index, plus the
/// W015 stream-watermark check over the streaming engine's micro-epoch
/// journal — the audit entry point for streaming ingest.
pub fn audit_with_stream(
    woc: &WebOfConcepts,
    segments: &SegmentedLrecIndex,
    epochs: &[MicroEpochView],
    cfg: &AuditConfig,
) -> Audit {
    let mut a = audit_with_segments(woc, segments, cfg);
    a.checks.push(check_stream_epochs(epochs, cfg));
    a
}

/// W015: stream watermark — the micro-epoch journal must advance
/// monotonically and each published delta must be exact:
///
/// - ordinals count up by one from 0 and each micro-epoch's previous
///   watermark is exactly its predecessor's (the first chains from the
///   zero watermark);
/// - the event count strictly increases, by exactly the number of changed
///   pages — a micro-epoch with nothing changed must never publish;
/// - the digest recomputes via [`stream_digest`] from the previous digest
///   and the changed pages (so the watermark is content-defined: any
///   tampering with what a micro-epoch claims to have applied breaks the
///   chain);
/// - every changed page is a real transition (`old_fp != new_fp`) — the
///   fingerprint stage dropped no-op recrawls, so one surviving here means
///   the dedup plane disagrees with the journal;
/// - the delta's `changed_records` are drawn from `lineage_affected`, the
///   records whose source-page fingerprints changed since the previous
///   watermark — a changed record outside that set means the published
///   delta touched records its micro-epoch's pages cannot explain.
///   (Completeness — that no changed record is *missing* — is gated
///   separately by the quiesced byte-identity equivalence suite.)
/// - a non-effective micro-epoch changed no records, and the published
///   epoch never regresses.
pub fn check_stream_epochs(epochs: &[MicroEpochView], cfg: &AuditConfig) -> CheckResult {
    let mut c = CheckResult::new("W015", "stream-watermark");
    let mut prev: Option<&MicroEpochView> = None;
    for (i, e) in epochs.iter().enumerate() {
        c.checked += 1;
        let (want_ordinal, want_events, want_digest, prev_published) = match prev {
            Some(p) => (p.ordinal + 1, p.events, p.digest, p.published_epoch),
            None => (0, 0, 0, 0),
        };
        if e.ordinal != want_ordinal {
            c.violation(
                cfg.max_details,
                format!(
                    "micro-epoch #{i}: ordinal {} but the journal position demands {want_ordinal}",
                    e.ordinal
                ),
            );
        }
        if (e.prev_events, e.prev_digest) != (want_events, want_digest) {
            c.violation(
                cfg.max_details,
                format!(
                    "micro-epoch #{i}: previous watermark ({}, {:016x}) does not chain to its predecessor's ({want_events}, {want_digest:016x})",
                    e.prev_events, e.prev_digest
                ),
            );
        }
        if e.changed_pages.is_empty() {
            c.violation(
                cfg.max_details,
                format!("micro-epoch #{i}: published with no changed pages"),
            );
        }
        if e.events != e.prev_events + e.changed_pages.len() as u64 {
            c.violation(
                cfg.max_details,
                format!(
                    "micro-epoch #{i}: watermark events {} ≠ prev {} + {} changed pages — the watermark must strictly advance by exactly what changed",
                    e.events,
                    e.prev_events,
                    e.changed_pages.len()
                ),
            );
        }
        let recomputed = stream_digest(e.prev_digest, &e.changed_pages);
        if e.digest != recomputed {
            c.violation(
                cfg.max_details,
                format!(
                    "micro-epoch #{i}: watermark digest {:016x} does not recompute from its changed pages ({recomputed:016x})",
                    e.digest
                ),
            );
        }
        let mut urls: std::collections::BTreeSet<&str> = Default::default();
        for pc in &e.changed_pages {
            if pc.old_fp == pc.new_fp {
                c.violation(
                    cfg.max_details,
                    format!(
                        "micro-epoch #{i}: page {} is not a real transition ({:?} → {:?})",
                        pc.url, pc.old_fp, pc.new_fp
                    ),
                );
            }
            if !urls.insert(&pc.url) {
                c.violation(
                    cfg.max_details,
                    format!("micro-epoch #{i}: page {} appears twice — transitions must be coalesced per URL", pc.url),
                );
            }
        }
        let affected: std::collections::BTreeSet<LrecId> =
            e.lineage_affected.iter().copied().collect();
        for &id in &e.changed_records {
            if !affected.contains(&id) {
                c.violation(
                    cfg.max_details,
                    format!(
                        "micro-epoch #{i}: changed record {id} is not lineage-affected by any changed page — the delta is not exact"
                    ),
                );
            }
        }
        if !e.effective && !e.changed_records.is_empty() {
            c.violation(
                cfg.max_details,
                format!(
                    "micro-epoch #{i}: marked non-effective but changed {} record(s)",
                    e.changed_records.len()
                ),
            );
        }
        if e.published_epoch < prev_published {
            c.violation(
                cfg.max_details,
                format!(
                    "micro-epoch #{i}: published epoch regressed {prev_published} → {}",
                    e.published_epoch
                ),
            );
        }
        prev = Some(e);
    }
    if let Some(last) = prev {
        c.info.push(format!(
            "{} micro-epoch(s), watermark at ({}, {:016x})",
            epochs.len(),
            last.events,
            last.digest
        ));
    }
    c
}

/// W001: every association endpoint (record side) resolves to a stored
/// record — no edge may point at an id the store has never seen.
fn check_dangling_assoc(woc: &WebOfConcepts, cfg: &AuditConfig) -> CheckResult {
    let mut c = CheckResult::new("W001", "dangling-assoc");
    for url in woc.web.documents() {
        for &(id, kind) in woc.web.records_of(url) {
            c.checked += 1;
            if woc.store.latest(id).is_none() {
                c.violation(
                    cfg.max_details,
                    format!("association {url} –{kind:?}→ {id} points at an unknown record"),
                );
            }
        }
    }
    c
}

/// W002: the record→doc and doc→record halves of the bipartite graph hold
/// the same edge set.
fn check_assoc_symmetry(woc: &WebOfConcepts, cfg: &AuditConfig) -> CheckResult {
    let mut c = CheckResult::new("W002", "assoc-symmetry");
    for rec in woc.web.records() {
        for (url, kind) in woc.web.docs_of(rec) {
            c.checked += 1;
            if !woc.web.records_of(url).contains(&(rec, *kind)) {
                c.violation(
                    cfg.max_details,
                    format!("edge {rec} –{kind:?}→ {url} missing from the doc-side map"),
                );
            }
        }
    }
    for url in woc.web.documents() {
        for &(rec, kind) in woc.web.records_of(url) {
            c.checked += 1;
            if !woc
                .web
                .docs_of(rec)
                .iter()
                .any(|(u, k)| u == url && *k == kind)
            {
                c.violation(
                    cfg.max_details,
                    format!("edge {url} –{kind:?}→ {rec} missing from the record-side map"),
                );
            }
        }
    }
    c
}

/// W003: every `Ref` attribute value of a live record resolves (through
/// merge tombstones) to a live record.
fn check_dangling_ref(woc: &WebOfConcepts, cfg: &AuditConfig, live: &[LrecId]) -> CheckResult {
    let mut c = CheckResult::new("W003", "dangling-ref");
    for &id in live {
        let Some(rec) = woc.store.latest(id) else {
            continue;
        };
        for (attr, target) in rec.refs() {
            c.checked += 1;
            match woc.store.resolve(target) {
                Some(t) if woc.store.latest(t).is_some() => {}
                _ => c.violation(
                    cfg.max_details,
                    format!("record {id} attr `{attr}` references {target}, which does not resolve to a live record"),
                ),
            }
        }
    }
    c
}

/// W004: live records conform to their concept schema. Kind mismatches and
/// cardinality overruns are hard violations; the pass/fail criterion is the
/// conformance *rate* against [`AuditConfig::conformance_threshold`], since
/// extraction is allowed to be imperfect but not broken. A record whose
/// concept has no registered schema is always a hard violation.
fn check_schema_conformance(
    woc: &WebOfConcepts,
    cfg: &AuditConfig,
    live: &[LrecId],
) -> (CheckResult, f64) {
    let mut c = CheckResult::new("W004", "schema-conformance");
    let mut nonconforming = 0usize;
    let mut undeclared = 0usize;
    for &id in live {
        let Some(rec) = woc.store.latest(id) else {
            continue;
        };
        c.checked += 1;
        let Some(schema) = woc.registry.schema(rec.concept()) else {
            nonconforming += 1;
            c.violation(
                cfg.max_details,
                format!(
                    "record {id} has concept {:?} with no registered schema",
                    rec.concept()
                ),
            );
            continue;
        };
        let mut hard = Vec::new();
        for v in schema.check(rec) {
            match v {
                Violation::UndeclaredKey { .. } => undeclared += 1,
                other => hard.push(other),
            }
        }
        if !hard.is_empty() {
            nonconforming += 1;
            if c.details.len() < cfg.max_details {
                c.details.push(format!(
                    "record {id} ({}) violates schema: {hard:?}",
                    schema.name()
                ));
            }
        }
    }
    let rate = if c.checked == 0 {
        1.0
    } else {
        1.0 - nonconforming as f64 / c.checked as f64
    };
    c.info.push(format!(
        "conformance rate {rate:.4} (threshold {:.4}), {undeclared} undeclared-key observations",
        cfg.conformance_threshold
    ));
    // Individual nonconforming records only gate through the rate.
    if rate < cfg.conformance_threshold {
        c.violations += 1;
        c.details.insert(
            0,
            format!(
                "conformance rate {rate:.4} below threshold {:.4} ({nonconforming}/{} records nonconforming)",
                cfg.conformance_threshold, c.checked
            ),
        );
    }
    (c, rate)
}

/// W005: every confidence lies in [0,1]; where a One-cardinality attribute
/// still carries several denotation groups (uncertain alternatives), the
/// groups' combined confidences — a distribution over mutually exclusive
/// alternatives — must not exceed total mass 1+ε.
fn check_prob_mass(woc: &WebOfConcepts, cfg: &AuditConfig, live: &[LrecId]) -> CheckResult {
    let mut c = CheckResult::new("W005", "prob-mass");
    for &id in live {
        let Some(rec) = woc.store.latest(id) else {
            continue;
        };
        let schema = woc.registry.schema(rec.concept());
        for (attr, entries) in rec.iter() {
            c.checked += 1;
            for e in entries {
                let conf = e.provenance.confidence;
                if !(0.0..=1.0).contains(&conf) || !conf.is_finite() {
                    c.violation(
                        cfg.max_details,
                        format!("record {id} attr `{attr}` has confidence {conf} outside [0,1]"),
                    );
                }
            }
            let is_one = schema
                .and_then(|s| s.attr(attr))
                .is_some_and(|spec| spec.cardinality == Cardinality::One);
            if !is_one {
                continue;
            }
            let groups = group_by_denotation(entries);
            if groups.len() < 2 {
                continue;
            }
            let mass: f64 = groups.iter().map(|g| g.combined_confidence).sum();
            if mass > 1.0 + cfg.epsilon {
                c.violation(
                    cfg.max_details,
                    format!(
                        "record {id} attr `{attr}` (cardinality One) carries {} alternatives with total mass {mass:.4} > 1",
                        groups.len()
                    ),
                );
            }
        }
    }
    c
}

/// W006: the record index holds exactly the live record ids — a stale or
/// over-eager index silently corrupts every concept-search result.
fn check_index_postings(woc: &WebOfConcepts, cfg: &AuditConfig, live: &[LrecId]) -> CheckResult {
    let mut c = CheckResult::new("W006", "index-postings");
    let indexed = woc.record_index.indexed_ids();
    c.checked = indexed.len().max(live.len());
    let live_set: std::collections::BTreeSet<LrecId> = live.iter().copied().collect();
    let indexed_set: std::collections::BTreeSet<LrecId> = indexed.iter().copied().collect();
    for &id in indexed_set.difference(&live_set) {
        c.violation(
            cfg.max_details,
            format!("record {id} is indexed but not live in the store (stale index entry)"),
        );
    }
    for &id in live_set.difference(&indexed_set) {
        c.violation(
            cfg.max_details,
            format!("record {id} is live but missing from the record index"),
        );
    }
    c
}

/// W007: indexed fields round-trip through scoped search — for sampled live
/// records, a `field:term` query built from a stored value must retrieve
/// the record. Catches tokenization or posting corruption that W006's
/// membership check cannot see.
fn check_index_roundtrip(woc: &WebOfConcepts, cfg: &AuditConfig, live: &[LrecId]) -> CheckResult {
    let mut c = CheckResult::new("W007", "index-roundtrip");
    if live.is_empty() {
        return c;
    }
    let step = (live.len() / cfg.roundtrip_sample.max(1)).max(1);
    let k = woc.record_index.len().max(1);
    for &id in live.iter().step_by(step) {
        let Some(rec) = woc.store.latest(id) else {
            continue;
        };
        // First text-bearing attribute with a tokenizable value.
        let Some((attr, term)) = rec.iter().find_map(|(attr, entries)| {
            entries.iter().find_map(|e| match &e.value {
                AttrValue::Ref(_) => None,
                v => tokenize_words(&v.display_string())
                    .into_iter()
                    .next()
                    .map(|w| (attr, w)),
            })
        }) else {
            continue;
        };
        c.checked += 1;
        let query = FieldQuery {
            scoped: vec![(attr.to_string(), term.clone())],
            ..FieldQuery::default()
        };
        let hits = woc.record_index.search(&query, k, |_| None);
        if !hits.iter().any(|h| h.id == id) {
            c.violation(
                cfg.max_details,
                format!("record {id} not retrieved by scoped query `{attr}:{term}` built from its own value"),
            );
        }
    }
    c
}

/// W008: the lineage DAG is acyclic (inputs strictly precede their node —
/// the append-only construction invariant) and every live record has at
/// least one lineage node, so provenance queries cannot come up empty.
fn check_lineage(woc: &WebOfConcepts, cfg: &AuditConfig, live: &[LrecId]) -> CheckResult {
    let mut c = CheckResult::new("W008", "lineage-acyclic");
    for i in 0..woc.lineage.len() {
        let id = NodeId(i as u32);
        c.checked += 1;
        let Some(node) = woc.lineage.node(id) else {
            c.violation(cfg.max_details, format!("lineage node {id:?} unreadable"));
            continue;
        };
        for &input in &node.inputs {
            if input.0 >= node.id.0 {
                c.violation(
                    cfg.max_details,
                    format!(
                        "lineage node {:?} has input {input:?} that does not precede it (cycle or forward edge)",
                        node.id
                    ),
                );
            }
        }
    }
    for &id in live {
        c.checked += 1;
        if woc.lineage.nodes_of_record(id).is_empty() {
            c.violation(
                cfg.max_details,
                format!("live record {id} has no lineage node (unexplainable provenance)"),
            );
        }
    }
    c
}

/// W009: merge resolution is canonical — resolving any ever-created id
/// either fails (retracted) or lands, idempotently, on a live record.
fn check_merge_canonical(woc: &WebOfConcepts, cfg: &AuditConfig) -> CheckResult {
    let mut c = CheckResult::new("W009", "merge-canonical");
    for raw in 0..woc.store.total_created() as u64 {
        let id = LrecId(raw);
        c.checked += 1;
        let Some(canon) = woc.store.resolve(id) else {
            continue; // retracted: resolution legitimately fails
        };
        if woc.store.resolve(canon) != Some(canon) {
            c.violation(
                cfg.max_details,
                format!("resolve({id}) = {canon}, but resolve({canon}) ≠ {canon} (not idempotent)"),
            );
        }
        if woc.store.latest(canon).is_none() {
            c.violation(
                cfg.max_details,
                format!("resolve({id}) = {canon}, which has no stored version"),
            );
        }
    }
    c
}

/// W010: the parallel document tables (inverted index, URL table, title
/// table) agree in length, so every doc id renders with a URL and title.
fn check_doc_tables(woc: &WebOfConcepts, cfg: &AuditConfig) -> CheckResult {
    let mut c = CheckResult::new("W010", "doc-tables");
    c.checked = 3;
    let n = woc.doc_index.num_docs();
    if woc.doc_urls.len() != n {
        c.violation(
            cfg.max_details,
            format!(
                "doc_urls has {} entries but the doc index has {n} documents",
                woc.doc_urls.len()
            ),
        );
    }
    if woc.doc_titles.len() != n {
        c.violation(
            cfg.max_details,
            format!(
                "doc_titles has {} entries but the doc index has {n} documents",
                woc.doc_titles.len()
            ),
        );
    }
    c
}

/// W011: tombstone/epoch consistency — incremental maintenance retracts
/// and merges records, and nothing live may keep pointing at the corpses:
/// every association endpoint and every indexed record id must resolve to
/// *itself* (a live, canonical record). A dangling pointer here means a
/// maintained epoch would serve content that a from-scratch rebuild would
/// not have.
fn check_tombstones(woc: &WebOfConcepts, cfg: &AuditConfig) -> CheckResult {
    let mut c = CheckResult::new("W011", "tombstone-epoch");
    let flag = |c: &mut CheckResult, what: String, id: LrecId| match woc.store.resolve(id) {
        Some(canon) if canon == id => {}
        Some(canon) => c.violation(
            cfg.max_details,
            format!("{what} references merged-away record {id} (canonical is {canon})"),
        ),
        None => c.violation(
            cfg.max_details,
            format!("{what} references a retracted record {id}"),
        ),
    };
    for url in woc.web.documents() {
        for &(id, kind) in woc.web.records_of(url) {
            c.checked += 1;
            flag(&mut c, format!("association {url} –{kind:?}→ {id}"), id);
        }
    }
    for id in woc.record_index.indexed_ids() {
        c.checked += 1;
        flag(&mut c, format!("index posting for {id}"), id);
    }
    c
}

/// W012: quarantine accounting — the degraded-crawl bookkeeping of a
/// resilient build must be internally consistent. Every quarantine node in
/// lineage carries a non-empty reason; the pipeline report's quarantined +
/// failed page counts agree with the lineage quarantine count; a
/// quarantined page must not appear in the document tables (its content was
/// never delivered, so it cannot have been indexed); and no live record may
/// rest its extraction provenance *solely* on quarantined pages — such a
/// record would be served with no deliverable source behind it.
fn check_quarantine_lineage(
    woc: &WebOfConcepts,
    cfg: &AuditConfig,
    live: &[LrecId],
) -> CheckResult {
    let mut c = CheckResult::new("W012", "quarantine-lineage");
    let quarantined = woc.lineage.quarantined();
    for (url, reason) in &quarantined {
        c.checked += 1;
        if reason.is_empty() {
            c.violation(
                cfg.max_details,
                format!("quarantined page {url} has no recorded reason"),
            );
        }
    }
    c.checked += 1;
    let reported = woc.report.pages_quarantined + woc.report.pages_failed;
    if reported != quarantined.len() {
        c.violation(
            cfg.max_details,
            format!(
                "report accounts for {reported} undelivered pages but lineage quarantines {}",
                quarantined.len()
            ),
        );
    }
    if !quarantined.is_empty() {
        for url in &woc.doc_urls {
            c.checked += 1;
            if woc.lineage.is_quarantined(url) {
                c.violation(
                    cfg.max_details,
                    format!("quarantined page {url} is present in the document tables"),
                );
            }
        }
        for &id in live {
            let docs = woc.web.docs_of_kind(id, AssocKind::ExtractedFrom);
            if docs.is_empty() {
                continue;
            }
            c.checked += 1;
            if docs.iter().all(|d| woc.lineage.is_quarantined(d)) {
                c.violation(
                    cfg.max_details,
                    format!("live record {id} is extracted solely from quarantined pages"),
                );
            }
        }
    }
    c
}

/// W016: source reliability — the trust model a build served under must be
/// honest about itself. The fixpoint must recompute bitwise from the claims
/// the model stored (a tampered score or quarantine decision is corruption,
/// not drift: the iteration is deterministic); lineage's site-quarantine
/// entries must mirror the model's — content quarantine tells the same
/// lineage story transport quarantine does, one scope up; no live value,
/// record, or document may rest solely on quarantined-trust sites (their
/// content was scrubbed, so anything still standing on them leaked past the
/// gate); and the selection log must describe reality: each logged winner is
/// the record's live first value for that attribute, supported by at least
/// one non-quarantined site.
fn check_trust(woc: &WebOfConcepts, cfg: &AuditConfig, live: &[LrecId]) -> CheckResult {
    let mut c = CheckResult::new("W016", "source-reliability");
    let model = &woc.trust;
    if !model.config.enabled {
        c.info
            .push("trust model disabled; reliability invariants not applicable".to_string());
        return c;
    }

    // (a) The fixpoint is recomputable from the stored claim set.
    if !model.claims.is_empty() || !model.site_trust.is_empty() {
        let recomputed = TrustModel::compute(model.claims.clone(), &model.config);
        for (site, t) in &recomputed.site_trust {
            c.checked += 1;
            match model.site_trust.get(site) {
                Some(stored) if (stored - t).abs() <= cfg.epsilon => {}
                Some(stored) => c.violation(
                    cfg.max_details,
                    format!(
                        "tampered trust score: {site} stores {stored:.6} but the \
                         fixpoint recomputes {t:.6} from the model's own claims"
                    ),
                ),
                None => c.violation(
                    cfg.max_details,
                    format!("site {site} has claims but no trust row"),
                ),
            }
        }
        for site in model.site_trust.keys() {
            if !recomputed.site_trust.contains_key(site) {
                c.violation(
                    cfg.max_details,
                    format!("trust row for {site} is not derivable from the stored claims"),
                );
            }
        }
        c.checked += 1;
        let stored_q: Vec<&str> = model.quarantined.iter().map(|(s, _)| s.as_str()).collect();
        let recomputed_q: Vec<&str> = recomputed
            .quarantined
            .iter()
            .map(|(s, _)| s.as_str())
            .collect();
        if stored_q != recomputed_q {
            c.violation(
                cfg.max_details,
                format!(
                    "quarantine set mismatch: model holds {stored_q:?} but the fixpoint \
                     recomputes {recomputed_q:?}"
                ),
            );
        }
        c.info.push(format!(
            "fixpoint: {} sites, {} claims, {} iterations, converged {}",
            model.site_trust.len(),
            model.claims.len(),
            model.iterations,
            model.converged
        ));
        if !model.converged {
            c.violation(
                cfg.max_details,
                format!(
                    "trust fixpoint did not converge within {} iterations",
                    model.config.max_iters
                ),
            );
        }
    }

    // (b) Lineage mirrors the model: content quarantine is one lineage story.
    c.checked += 1;
    let lineage_q: Vec<&str> = woc
        .lineage
        .quarantined_sites()
        .iter()
        .map(|(s, _)| *s)
        .collect();
    let model_q: Vec<&str> = model.quarantined.iter().map(|(s, _)| s.as_str()).collect();
    if lineage_q != model_q {
        c.violation(
            cfg.max_details,
            format!(
                "lineage site-quarantine {lineage_q:?} disagrees with the trust model's \
                 {model_q:?}"
            ),
        );
    }

    // (c) Nothing live rests solely on quarantined-trust sites.
    if !model.quarantined.is_empty() {
        for url in &woc.doc_urls {
            c.checked += 1;
            if model.is_quarantined(url_host(url)) {
                c.violation(
                    cfg.max_details,
                    format!("quarantined-trust site page {url} is present in the document tables"),
                );
            }
        }
        for &id in live {
            let Some(rec) = woc.store.latest(id) else {
                continue;
            };
            c.checked += 1;
            for (attr, entries) in rec.iter() {
                for e in entries {
                    let sites: Vec<&str> = if e.provenance.support.is_empty() {
                        e.provenance
                            .document_url()
                            .map(url_host)
                            .into_iter()
                            .collect()
                    } else {
                        e.provenance
                            .support
                            .iter()
                            .map(|s| s.site.as_str())
                            .collect()
                    };
                    if !sites.is_empty() && sites.iter().all(|s| model.is_quarantined(s)) {
                        c.violation(
                            cfg.max_details,
                            format!(
                                "live value {id}.{attr} = {:?} is sourced solely from \
                                 quarantined-trust sites {sites:?}",
                                e.value.display_string()
                            ),
                        );
                    }
                }
            }
            let docs = woc.web.docs_of_kind(id, AssocKind::ExtractedFrom);
            if !docs.is_empty() && docs.iter().all(|d| model.is_quarantined(url_host(d))) {
                c.violation(
                    cfg.max_details,
                    format!("live record {id} is extracted solely from quarantined-trust sites"),
                );
            }
        }
    }

    // (d) The selection log describes reality: reliability-weighted winners
    // were actually applied, with at least one non-quarantined supporter.
    for sel in &model.selections {
        c.checked += 1;
        let Some(rec) = woc.store.latest(sel.record) else {
            c.violation(
                cfg.max_details,
                format!(
                    "selection log names record {} ({}) which does not exist",
                    sel.record, sel.attr
                ),
            );
            continue;
        };
        let live_val = rec
            .iter()
            .find(|(a, _)| *a == sel.attr)
            .and_then(|(_, es)| es.first())
            .map(|e| e.value.display_string());
        if live_val.as_deref() != Some(sel.value.as_str()) {
            c.violation(
                cfg.max_details,
                format!(
                    "reliability-ignored winner: record {} attr {} serves {:?} but the \
                     reconciliation selected {:?}",
                    sel.record, sel.attr, live_val, sel.value
                ),
            );
        }
        if !sel.support.is_empty() && sel.support.iter().all(|s| model.is_quarantined(&s.site)) {
            c.violation(
                cfg.max_details,
                format!(
                    "selection for record {} attr {} is supported only by quarantined sites",
                    sel.record, sel.attr
                ),
            );
        }
    }
    if !model.exclusions.is_empty() {
        c.info.push(format!(
            "{} value groups excluded for quarantined-only support",
            model.exclusions.len()
        ));
    }
    c
}
