//! `woc-audit` — build a synthetic web of concepts and run the static
//! integrity audit over it.
//!
//! Usage:
//!
//! ```text
//! woc-audit [--small] [--json] [--threshold <0..1>]
//! ```
//!
//! Exits non-zero when any check fails, so it can gate CI.

use std::process::ExitCode;

use woc_audit::{audit_with_segments, AuditConfig};
use woc_index::MergePolicy;
use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

fn main() -> ExitCode {
    let mut small = false;
    let mut json = false;
    let mut cfg = AuditConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--small" => small = true,
            "--json" => json = true,
            "--threshold" => {
                let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("woc-audit: --threshold needs a number in [0, 1]");
                    return ExitCode::from(2);
                };
                cfg.conformance_threshold = v;
            }
            "--help" | "-h" => {
                println!("usage: woc-audit [--small] [--json] [--threshold <0..1>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("woc-audit: unknown flag {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let (world_cfg, corpus_cfg) = if small {
        (WorldConfig::tiny(7), CorpusConfig::tiny(7))
    } else {
        (WorldConfig::default(), CorpusConfig::default())
    };
    let world = World::generate(world_cfg);
    let corpus = generate_corpus(&world, &corpus_cfg);
    let woc = woc_core::build(&corpus, &woc_core::PipelineConfig::default());

    // W014 runs over the segmented view a serving snapshot would build
    // from this web — a fresh base at a merge point, so the pinned-stat
    // recomputation check gates too.
    let segments = woc.segmented_record_index(MergePolicy::default());
    let report = audit_with_segments(&woc, &segments, &cfg);

    if json {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("woc-audit: failed to serialize report: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        print!("{}", report.render());
    }

    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
