//! The Table 1 transition engine: "Technologies for Interconnecting
//! Different Page Types" (paper §5.4).
//!
//! | p ⇓ q ⇒  | Result              | Concept                | Article          |
//! |----------|---------------------|------------------------|------------------|
//! | Result   | Assistance          | Concept search         | Vanilla search   |
//! | Concept  | Search w/in concept | Concept recommendation | Semantic linking |
//! | Article  | –                   | Semantic linking       | Related pages    |
//!
//! Each cell is one method on [`TransitionEngine`], all implemented on top
//! of the web of concepts, so the full matrix is exercised by experiment T1.

use woc_core::WebOfConcepts;
use woc_lrec::LrecId;

use crate::concept_search::{concept_search, search_within_concept, ConceptResult};
use crate::recommend::{alternatives, augmentations, CoEngagement, Recommendation};
use crate::semantic::{articles_for, records_in, RelatedPages};

/// The three page types of §5.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageType {
    /// A results listing.
    Result,
    /// A concept page (one record).
    Concept,
    /// An authored article.
    Article,
}

/// A link produced by a transition.
#[derive(Debug, Clone)]
pub struct TransitionLink {
    /// Destination page type.
    pub to: PageType,
    /// Display text.
    pub text: String,
    /// Destination: a URL, a record id rendered as text, or a query.
    pub destination: String,
}

/// The engine wrapping a web of concepts plus optional engagement data.
pub struct TransitionEngine<'a> {
    woc: &'a WebOfConcepts,
    co: Option<&'a CoEngagement>,
}

impl std::fmt::Debug for TransitionEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransitionEngine")
            .field("records", &self.woc.store.live_count())
            .field("co_engagement", &self.co.is_some())
            .finish()
    }
}

impl<'a> TransitionEngine<'a> {
    /// Create an engine.
    pub fn new(woc: &'a WebOfConcepts, co: Option<&'a CoEngagement>) -> Self {
        Self { woc, co }
    }

    /// Result→Result: **Assistance** — query suggestions that reshape the
    /// result set, derived from attribute values of the top matching records.
    pub fn assistance(&self, query: &str, k: usize) -> Vec<TransitionLink> {
        let results = concept_search(self.woc, query, 10);
        // Broad queries ("restaurants") interpret to no constraints at all;
        // fall back to sampling records so assistance still has material.
        let ids: Vec<woc_lrec::LrecId> = if results.is_empty() {
            self.woc.store.live_ids().into_iter().take(20).collect()
        } else {
            results.iter().map(|r| r.id).collect()
        };
        let mut suggestions: Vec<String> = Vec::new();
        for id in &ids {
            let Some(rec) = self.woc.store.latest(*id) else {
                continue;
            };
            for key in ["cuisine", "city", "category", "venue"] {
                if let Some(v) = rec.best_string(key) {
                    let s = format!("{query} {v}");
                    if !suggestions.contains(&s)
                        && !query.to_lowercase().contains(&v.to_lowercase())
                    {
                        suggestions.push(s);
                    }
                }
            }
        }
        suggestions
            .into_iter()
            .take(k)
            .map(|q| TransitionLink {
                to: PageType::Result,
                text: format!("try: {q}"),
                destination: q,
            })
            .collect()
    }

    /// Result→Concept: **Concept search** — record links for a query.
    pub fn concept_links(&self, query: &str, k: usize) -> Vec<ConceptResult> {
        concept_search(self.woc, query, k)
    }

    /// Result→Article: **Vanilla search** — classic ranked document links.
    pub fn vanilla_search(&self, query: &str, k: usize) -> Vec<TransitionLink> {
        self.woc
            .doc_index
            .search(query, k)
            .into_iter()
            .map(|h| TransitionLink {
                to: PageType::Article,
                text: self.woc.doc_titles[h.doc.0 as usize].clone(),
                destination: self.woc.doc_url(h.doc).to_string(),
            })
            .collect()
    }

    /// Concept→Result: **Search within the concept** — documents about this
    /// record matching the query.
    pub fn search_within(&self, record: LrecId, query: &str, k: usize) -> Vec<TransitionLink> {
        search_within_concept(self.woc, record, query, k)
            .into_iter()
            .map(|(url, _)| TransitionLink {
                to: PageType::Result,
                text: format!("within-concept hit: {url}"),
                destination: url,
            })
            .collect()
    }

    /// Concept→Concept: **Concept recommendation** — alternatives and
    /// augmentations, both flavors (§5.4 insists they differ).
    pub fn recommendations(
        &self,
        record: LrecId,
        k: usize,
    ) -> (Vec<Recommendation>, Vec<Recommendation>) {
        (
            alternatives(self.woc, record, k),
            augmentations(self.woc, record, self.co, k),
        )
    }

    /// Concept→Article: **Semantic linking** — articles mentioning the record.
    pub fn semantic_links_from_concept(&self, record: LrecId, k: usize) -> Vec<TransitionLink> {
        articles_for(self.woc, record)
            .into_iter()
            .take(k)
            .map(|url| TransitionLink {
                to: PageType::Article,
                text: format!("mentioned in {url}"),
                destination: url,
            })
            .collect()
    }

    /// Article→Concept: **Semantic linking** (reverse pivot) — records
    /// mentioned by the article.
    pub fn semantic_links_from_article(&self, url: &str, k: usize) -> Vec<TransitionLink> {
        records_in(self.woc, url)
            .into_iter()
            .take(k)
            .map(|id| {
                let name = self
                    .woc
                    .store
                    .latest(id)
                    .and_then(|r| r.best_string("name"))
                    .unwrap_or_else(|| id.to_string());
                TransitionLink {
                    to: PageType::Concept,
                    text: name,
                    destination: id.to_string(),
                }
            })
            .collect()
    }

    /// Article→Article: **Related pages** via a prebuilt engine.
    pub fn related_pages(&self, engine: &RelatedPages, url: &str, k: usize) -> Vec<TransitionLink> {
        let Some(idx) = engine.index_of(url) else {
            return Vec::new();
        };
        engine
            .related(idx, k)
            .into_iter()
            .map(|(u, _)| TransitionLink {
                to: PageType::Article,
                text: format!("related: {u}"),
                destination: u,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_core::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, PageKind, World, WorldConfig};

    fn setup() -> (woc_webgen::WebCorpus, WebOfConcepts) {
        let world = World::generate(WorldConfig {
            restaurants: 20,
            cities: 3,
            cuisines: 3,
            ..WorldConfig::tiny(307)
        });
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(27));
        let woc = build(&corpus, &PipelineConfig::default());
        (corpus, woc)
    }

    #[test]
    fn all_nine_cells_produce_output() {
        let (corpus, woc) = setup();
        let engine = TransitionEngine::new(&woc, None);

        // Row 1: Result → {Result, Concept, Article}.
        assert!(
            !engine.assistance("restaurants", 5).is_empty(),
            "assistance"
        );
        assert!(
            !engine.concept_links("gochi", 5).is_empty(),
            "concept search"
        );
        assert!(
            !engine.vanilla_search("menu", 5).is_empty(),
            "vanilla search"
        );

        // Row 2: Concept → {Result, Concept, Article}.
        let gochi = engine.concept_links("gochi cupertino", 1)[0].id;
        assert!(
            !engine.search_within(gochi, "reviews menu", 5).is_empty(),
            "search within concept"
        );
        let (alts, _augs) = engine.recommendations(gochi, 5);
        assert!(!alts.is_empty(), "alternatives");
        // Semantic links from a mentioned record.
        let mentioned = corpus
            .pages()
            .iter()
            .filter(|p| p.truth.kind == PageKind::Article)
            .find_map(|p| {
                crate::semantic::records_in(&woc, &p.url)
                    .first()
                    .copied()
                    .map(|r| (r, p.url.clone()))
            });
        let Some((rec, article_url)) = mentioned else {
            panic!("no mentions in corpus");
        };
        assert!(
            !engine.semantic_links_from_concept(rec, 5).is_empty(),
            "concept→article"
        );

        // Row 3: Article → {Concept, Article}.
        assert!(
            !engine
                .semantic_links_from_article(&article_url, 5)
                .is_empty(),
            "article→concept"
        );
        let articles: Vec<&woc_webgen::Page> = corpus
            .pages()
            .iter()
            .filter(|p| p.truth.kind == PageKind::Article)
            .collect();
        let urls: Vec<String> = articles.iter().map(|p| p.url.clone()).collect();
        let texts: Vec<String> = articles.iter().map(|p| p.text()).collect();
        let rp = RelatedPages::build(&woc, &urls, &texts);
        assert!(
            !engine.related_pages(&rp, &urls[0], 3).is_empty(),
            "related pages"
        );
    }

    #[test]
    fn assistance_suggestions_extend_query() {
        let (_, woc) = setup();
        let engine = TransitionEngine::new(&woc, None);
        for link in engine.assistance("restaurants", 5) {
            assert!(link.destination.starts_with("restaurants "));
            assert_eq!(link.to, PageType::Result);
        }
    }

    #[test]
    fn unknown_article_yields_no_links() {
        let (_, woc) = setup();
        let engine = TransitionEngine::new(&woc, None);
        assert!(engine
            .semantic_links_from_article("http://nope/", 5)
            .is_empty());
    }
}
