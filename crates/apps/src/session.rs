//! Session optimization: user modeling and content matching (paper §5.3).
//!
//! "Two key areas of focus are *historical modeling*, which captures the
//! long-standing predilections of the user … and *session modeling*, which
//! models the current (short-term) interest of the user." Both feed on "the
//! user's past interactions with records from a web of concepts".
//!
//! The showcase behaviour is the paper's Birks example: a user who has been
//! "searching recently for restaurants in zipcode 95054" should see Birk's
//! Steakhouse for the ambiguous query `birks`, while a cold user sees the
//! jeweler — disambiguation by session context.

use std::collections::HashMap;

use woc_core::WebOfConcepts;
use woc_lrec::{ConceptId, LrecId};
use woc_textkit::tokenize::normalize;

/// One interaction event.
#[derive(Debug, Clone)]
pub enum Interaction {
    /// The user viewed a record (concept page, concept box).
    ViewedRecord(LrecId),
    /// The user issued a search query.
    Queried(String),
}

/// A user model with decayed long-term interests and a short-term session.
#[derive(Debug, Clone, Default)]
pub struct UserModel {
    /// Long-term interest mass per concept.
    historical_concepts: HashMap<ConceptId, f64>,
    /// Long-term interest mass per attribute value (city, cuisine, …).
    historical_values: HashMap<String, f64>,
    /// Recent interactions (most recent last).
    session: Vec<Interaction>,
    /// Event counter (logical time for inter-arrival statistics).
    clock: u64,
    /// Per-concept observation times, for inter-arrival estimation
    /// (§5.3: "this user consumes information referencing the concept jai
    /// alai with an average weekly inter-arrival time").
    concept_arrivals: HashMap<ConceptId, Vec<u64>>,
    /// Per-event decay applied to historical masses.
    pub decay: f64,
    /// Session window length.
    pub session_window: usize,
}

impl UserModel {
    /// Fresh user.
    pub fn new() -> Self {
        Self {
            decay: 0.98,
            session_window: 10,
            ..Self::default()
        }
    }

    /// Observe an interaction, updating both models.
    pub fn observe(&mut self, woc: &WebOfConcepts, event: Interaction) {
        // woc-lint: allow(map-iter-order) — uniform in-place decay; per-element and
        // commutative, so visit order is immaterial.
        for v in self.historical_concepts.values_mut() {
            *v *= self.decay;
        }
        // woc-lint: allow(map-iter-order) — uniform in-place decay, order-free.
        for v in self.historical_values.values_mut() {
            *v *= self.decay;
        }
        self.clock += 1;
        if let Interaction::ViewedRecord(id) = &event {
            if let Some(rec) = woc.store.latest(*id) {
                self.concept_arrivals
                    .entry(rec.concept())
                    .or_default()
                    .push(self.clock);
                *self.historical_concepts.entry(rec.concept()).or_insert(0.0) += 1.0;
                for key in ["city", "cuisine", "category", "zip", "venue", "brand"] {
                    if let Some(v) = rec.best_string(key) {
                        *self
                            .historical_values
                            .entry(format!("{key}:{}", normalize(&v)))
                            .or_insert(0.0) += 1.0;
                    }
                }
            }
        }
        self.session.push(event);
        if self.session.len() > self.session_window {
            self.session.remove(0);
        }
    }

    /// Start a new task: clear the session, keep history.
    pub fn end_session(&mut self) {
        self.session.clear();
    }

    /// Long-term interest in a concept.
    pub fn concept_interest(&self, concept: ConceptId) -> f64 {
        self.historical_concepts
            .get(&concept)
            .copied()
            .unwrap_or(0.0)
    }

    /// Mean inter-arrival gap (in interaction counts) between consumptions
    /// of a concept; `None` with fewer than two observations. Lower = more
    /// habitual — the historical-modeling signal of §5.3.
    pub fn concept_inter_arrival(&self, concept: ConceptId) -> Option<f64> {
        let times = self.concept_arrivals.get(&concept)?;
        if times.len() < 2 {
            return None;
        }
        let gaps: f64 = times.windows(2).map(|w| (w[1] - w[0]) as f64).sum();
        Some(gaps / (times.len() - 1) as f64)
    }

    /// How strongly the *session* supports a record: shared attribute values
    /// with recently viewed records plus query-term overlap.
    pub fn session_affinity(&self, woc: &WebOfConcepts, candidate: LrecId) -> f64 {
        let Some(cand) = woc.store.latest(candidate) else {
            return 0.0;
        };
        let mut affinity = 0.0;
        for (age, event) in self.session.iter().rev().enumerate() {
            let recency = 1.0 / (1.0 + age as f64);
            match event {
                Interaction::ViewedRecord(id) => {
                    if let Some(seen) = woc.store.latest(*id) {
                        if seen.concept() == cand.concept() {
                            affinity += 0.5 * recency;
                        }
                        for key in ["city", "cuisine", "category", "zip"] {
                            if let (Some(a), Some(b)) =
                                (seen.best_string(key), cand.best_string(key))
                            {
                                if normalize(&a) == normalize(&b) {
                                    affinity += recency;
                                }
                            }
                        }
                    }
                }
                Interaction::Queried(q) => {
                    let qn = normalize(q);
                    for key in ["city", "cuisine", "category"] {
                        if let Some(v) = cand.best_string(key) {
                            if !v.is_empty() && qn.contains(&normalize(&v)) {
                                affinity += 0.5 * recency;
                            }
                        }
                    }
                }
            }
        }
        affinity
    }

    /// Score a record for this user: historical concept interest + session
    /// affinity — the "matching content to a particular user in a particular
    /// context" of §5.3.
    pub fn score_record(&self, woc: &WebOfConcepts, candidate: LrecId) -> f64 {
        let concept = woc
            .store
            .latest(candidate)
            .map(|r| r.concept())
            .unwrap_or_default();
        0.3 * self.concept_interest(concept).ln_1p() + self.session_affinity(woc, candidate)
    }
}

/// Rank content (articles/pages) for a user by the records it mentions —
/// §5.3 "Understanding Content": "An article about penetration of jai alai
/// into the western US where the user is employed might be highly relevant
/// to this user, but deeply uninteresting to other users." Returns
/// `(url, score)` sorted best-first; pages mentioning nothing the user cares
/// about score zero.
pub fn rank_content(woc: &WebOfConcepts, user: &UserModel, urls: &[String]) -> Vec<(String, f64)> {
    let mut scored: Vec<(String, f64)> = urls
        .iter()
        .map(|url| {
            let score: f64 = crate::semantic::records_in(woc, url)
                .into_iter()
                .map(|rec| user.score_record(woc, rec))
                .sum();
            (url.clone(), score)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored
}

/// Personalized record retrieval: fold the user model into retrieval scores.
pub fn personalized_search(
    woc: &WebOfConcepts,
    user: &UserModel,
    query: &str,
    k: usize,
) -> Vec<(LrecId, f64)> {
    let hits = woc
        .record_index
        .query(query, k * 4 + 8, |n| woc.registry.id_of(n));
    let mut scored: Vec<(LrecId, f64)> = hits
        .into_iter()
        .map(|h| {
            let personal = user.score_record(woc, h.id);
            (h.id, h.score + 2.0 * personal)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_core::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    fn woc() -> WebOfConcepts {
        let world = World::generate(WorldConfig {
            restaurants: 25,
            cities: 3,
            cuisines: 3,
            ..WorldConfig::tiny(305)
        });
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(25));
        build(&corpus, &PipelineConfig::default())
    }

    #[test]
    fn historical_interest_accumulates_and_decays() {
        let woc = woc();
        let restaurants = woc.records_of(woc.concepts.restaurant);
        let mut user = UserModel::new();
        user.observe(&woc, Interaction::ViewedRecord(restaurants[0].id()));
        let after_one = user.concept_interest(woc.concepts.restaurant);
        assert!(after_one > 0.0);
        for _ in 0..20 {
            user.observe(&woc, Interaction::Queried("unrelated".into()));
        }
        assert!(
            user.concept_interest(woc.concepts.restaurant) < after_one,
            "interest decays without reinforcement"
        );
    }

    #[test]
    fn session_context_disambiguates() {
        // The paper's Birks scenario, transposed: after viewing restaurants
        // in one city, same-city restaurants outscore others.
        let woc = woc();
        let restaurants = woc.records_of(woc.concepts.restaurant);
        let anchor = restaurants
            .iter()
            .find(|r| r.best_string("city").is_some())
            .expect("a restaurant with a city");
        let city = anchor.best_string("city").unwrap();
        let same_city = restaurants
            .iter()
            .find(|r| r.id() != anchor.id() && r.best_string("city").as_deref() == Some(&city));
        let other_city = restaurants
            .iter()
            .find(|r| r.best_string("city").is_some_and(|c| c != city));
        let (Some(same), Some(other)) = (same_city, other_city) else {
            return;
        };
        let mut user = UserModel::new();
        user.observe(&woc, Interaction::ViewedRecord(anchor.id()));
        let s_same = user.score_record(&woc, same.id());
        let s_other = user.score_record(&woc, other.id());
        assert!(
            s_same > s_other,
            "session context must prefer same-city: {s_same} vs {s_other}"
        );
    }

    #[test]
    fn cold_user_scores_zero() {
        let woc = woc();
        let user = UserModel::new();
        let restaurants = woc.records_of(woc.concepts.restaurant);
        assert_eq!(user.score_record(&woc, restaurants[0].id()), 0.0);
    }

    #[test]
    fn end_session_clears_short_term_only() {
        let woc = woc();
        let restaurants = woc.records_of(woc.concepts.restaurant);
        let mut user = UserModel::new();
        user.observe(&woc, Interaction::ViewedRecord(restaurants[0].id()));
        user.end_session();
        assert_eq!(user.session_affinity(&woc, restaurants[1].id()), 0.0);
        assert!(user.concept_interest(woc.concepts.restaurant) > 0.0);
    }

    #[test]
    fn personalized_search_reorders() {
        let woc = woc();
        let restaurants = woc.records_of(woc.concepts.restaurant);
        let anchor = restaurants
            .iter()
            .find(|r| r.best_string("cuisine").is_some())
            .unwrap();
        let cuisine = anchor.best_string("cuisine").unwrap();
        let mut user = UserModel::new();
        for _ in 0..3 {
            user.observe(&woc, Interaction::ViewedRecord(anchor.id()));
        }
        let results = personalized_search(&woc, &user, "is:restaurant house", 10);
        // Scores must be finite and sorted.
        for w in results.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let _ = cuisine;
    }

    #[test]
    fn inter_arrival_tracks_habit() {
        let woc = woc();
        let restaurants = woc.records_of(woc.concepts.restaurant);
        let mut user = UserModel::new();
        assert!(user
            .concept_inter_arrival(woc.concepts.restaurant)
            .is_none());
        // A habitual restaurant consumer: every other event.
        for i in 0..10 {
            if i % 2 == 0 {
                user.observe(
                    &woc,
                    Interaction::ViewedRecord(restaurants[i % restaurants.len()].id()),
                );
            } else {
                user.observe(&woc, Interaction::Queried("noise".into()));
            }
        }
        let gap = user.concept_inter_arrival(woc.concepts.restaurant).unwrap();
        assert!(
            (gap - 2.0).abs() < 1e-9,
            "every-other-event habit, got {gap}"
        );
        assert!(user.concept_inter_arrival(woc.concepts.product).is_none());
    }

    #[test]
    fn content_ranking_follows_user_interest() {
        // The §5.3 front-page scenario: a user who has engaged with a
        // restaurant should see articles mentioning it ranked above articles
        // about unrelated entities.
        let world = World::generate(WorldConfig::tiny(331));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(63));
        let woc = build(&corpus, &PipelineConfig::default());
        // Find an article with mentions and the record it mentions.
        let mentioned = corpus
            .pages()
            .iter()
            .filter(|p| p.truth.kind == woc_webgen::PageKind::Article)
            .find_map(|p| {
                crate::semantic::records_in(&woc, &p.url)
                    .first()
                    .copied()
                    .map(|r| (r, p.url.clone()))
            });
        let Some((rec, url)) = mentioned else {
            panic!("corpus has article mentions");
        };
        let urls: Vec<String> = corpus
            .pages()
            .iter()
            .filter(|p| p.truth.kind == woc_webgen::PageKind::Article)
            .map(|p| p.url.clone())
            .collect();
        let mut user = UserModel::new();
        for _ in 0..3 {
            user.observe(&woc, Interaction::ViewedRecord(rec));
        }
        let ranked = rank_content(&woc, &user, &urls);
        let pos = ranked.iter().position(|(u, _)| *u == url).unwrap();
        assert!(
            pos < urls.len() / 2,
            "article mentioning the engaged record ranks in the top half (pos {pos} of {})",
            urls.len()
        );
        assert!(ranked[pos].1 > 0.0);
        // A cold user scores everything flat (ties by URL).
        let cold = UserModel::new();
        let flat = rank_content(&woc, &cold, &urls);
        assert!(flat.iter().all(|(_, s)| *s == 0.0));
    }

    #[test]
    fn session_window_bounded() {
        let woc = woc();
        let mut user = UserModel::new();
        for i in 0..50 {
            user.observe(&woc, Interaction::Queried(format!("q{i}")));
        }
        assert!(user.session.len() <= user.session_window);
    }
}
