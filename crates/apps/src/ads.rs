//! Advertising over the web of concepts (paper §5.5): matching and
//! marketplace.
//!
//! * **Matching** — ads target the concepts a user/pageview is about, "a
//!   user involved in booking a vacation to Europe may be offered
//!   appropriate hotels".
//! * **Marketplace** — beyond keywords, "advertisers … might place a bid on
//!   any query that hits on a restaurant in zipcode 95054": bids can target
//!   a concept plus attribute constraints. Eligible ads compete in a
//!   generalized second-price auction.

use woc_core::WebOfConcepts;
use woc_lrec::LrecId;
use woc_textkit::tokenize::{normalize, tokenize_words};

/// What a bid targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// Classic keyword targeting: all words must appear in the query.
    Keywords(Vec<String>),
    /// Concept targeting: the pageview/query must resolve to a record of
    /// the named concept satisfying every `(attr, value)` constraint.
    Concept {
        /// Concept name (e.g. `restaurant`).
        concept: String,
        /// Attribute constraints (e.g. `zip = 95054`).
        constraints: Vec<(String, String)>,
    },
}

/// An ad with a bid.
#[derive(Debug, Clone)]
pub struct Ad {
    /// Stable ad id.
    pub id: u32,
    /// Advertiser name.
    pub advertiser: String,
    /// Creative text.
    pub creative: String,
    /// Bid in cents.
    pub bid_cents: i64,
    /// Targeting.
    pub target: Target,
}

/// The context an auction runs in: the raw query plus any records the
/// concept layer resolved it to.
#[derive(Debug, Clone, Default)]
pub struct AdContext {
    /// The user query (empty for pure content pageviews).
    pub query: String,
    /// Records the pageview/query is about.
    pub records: Vec<LrecId>,
}

/// Is an ad eligible in this context?
pub fn eligible(woc: &WebOfConcepts, ad: &Ad, ctx: &AdContext) -> bool {
    match &ad.target {
        Target::Keywords(words) => {
            let q: std::collections::HashSet<String> =
                tokenize_words(&ctx.query).into_iter().collect();
            !words.is_empty() && words.iter().all(|w| q.contains(&w.to_lowercase()))
        }
        Target::Concept {
            concept,
            constraints,
        } => {
            let Some(cid) = woc.registry.id_of(concept) else {
                return false;
            };
            ctx.records.iter().any(|&rid| {
                let Some(rec) = woc.store.latest(rid) else {
                    return false;
                };
                rec.concept() == cid
                    && constraints.iter().all(|(attr, value)| {
                        rec.get(attr)
                            .iter()
                            .any(|e| normalize(&e.value.display_string()) == normalize(value))
                    })
            })
        }
    }
}

/// An auction outcome: the winning ad and the (second-price) cost.
#[derive(Debug, Clone)]
pub struct AuctionResult {
    /// Winning ad id.
    pub ad_id: u32,
    /// Advertiser.
    pub advertiser: String,
    /// Price paid, in cents: the runner-up's bid plus one (classic GSP), or
    /// the reserve when unopposed.
    pub price_cents: i64,
}

/// Reserve price for unopposed ads, in cents.
pub const RESERVE_CENTS: i64 = 5;

/// A running marketplace: ads plus per-advertiser budgets. Charges deplete
/// budgets; ads whose advertiser is exhausted stop competing — the
/// marketplace dynamics §5.5 gestures at.
#[derive(Debug, Clone, Default)]
pub struct Marketplace {
    ads: Vec<Ad>,
    budgets_cents: std::collections::HashMap<String, i64>,
    /// Total spend per advertiser, for reporting.
    spend_cents: std::collections::HashMap<String, i64>,
}

impl Marketplace {
    /// Empty marketplace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an ad and (idempotently) its advertiser's budget.
    pub fn register(&mut self, ad: Ad, budget_cents: i64) {
        self.budgets_cents
            .entry(ad.advertiser.clone())
            .or_insert(budget_cents);
        self.ads.push(ad);
    }

    /// Remaining budget of an advertiser.
    pub fn budget(&self, advertiser: &str) -> i64 {
        self.budgets_cents.get(advertiser).copied().unwrap_or(0)
    }

    /// Total spend of an advertiser.
    pub fn spend(&self, advertiser: &str) -> i64 {
        self.spend_cents.get(advertiser).copied().unwrap_or(0)
    }

    /// Run one auction, charging the winner. Exhausted advertisers are
    /// excluded before the auction.
    pub fn serve(&mut self, woc: &WebOfConcepts, ctx: &AdContext) -> Option<AuctionResult> {
        let live: Vec<Ad> = self
            .ads
            .iter()
            .filter(|a| self.budget(&a.advertiser) >= RESERVE_CENTS)
            .cloned()
            .collect();
        let result = run_auction(woc, &live, ctx)?;
        let price = result.price_cents.min(self.budget(&result.advertiser));
        *self
            .budgets_cents
            .get_mut(&result.advertiser)
            .expect("winner has a budget entry") -= price;
        *self
            .spend_cents
            .entry(result.advertiser.clone())
            .or_insert(0) += price;
        Some(AuctionResult {
            price_cents: price,
            ..result
        })
    }
}

/// Run a second-price auction among eligible ads.
pub fn run_auction(woc: &WebOfConcepts, ads: &[Ad], ctx: &AdContext) -> Option<AuctionResult> {
    let mut eligible_ads: Vec<&Ad> = ads.iter().filter(|a| eligible(woc, a, ctx)).collect();
    eligible_ads.sort_by(|a, b| b.bid_cents.cmp(&a.bid_cents).then(a.id.cmp(&b.id)));
    let winner = eligible_ads.first()?;
    let price = eligible_ads
        .get(1)
        .map(|runner| runner.bid_cents + 1)
        .unwrap_or(RESERVE_CENTS)
        .min(winner.bid_cents);
    Some(AuctionResult {
        ad_id: winner.id,
        advertiser: winner.advertiser.clone(),
        price_cents: price,
    })
}

/// Match ads to a user's interest profile (concept-level matching): returns
/// ads whose concept target matches any record the user engaged with.
pub fn ads_for_user(
    woc: &WebOfConcepts,
    ads: &[Ad],
    engaged_records: &[LrecId],
    k: usize,
) -> Vec<u32> {
    let ctx = AdContext {
        query: String::new(),
        records: engaged_records.to_vec(),
    };
    let mut hits: Vec<&Ad> = ads
        .iter()
        .filter(|a| matches!(a.target, Target::Concept { .. }) && eligible(woc, a, &ctx))
        .collect();
    hits.sort_by(|a, b| b.bid_cents.cmp(&a.bid_cents).then(a.id.cmp(&b.id)));
    hits.into_iter().take(k).map(|a| a.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_core::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    fn woc() -> WebOfConcepts {
        let world = World::generate(WorldConfig::tiny(306));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(26));
        build(&corpus, &PipelineConfig::default())
    }

    fn restaurant_ctx(woc: &WebOfConcepts) -> (AdContext, String) {
        let restaurants = woc.records_of(woc.concepts.restaurant);
        let rec = restaurants
            .iter()
            .find(|r| r.best_string("zip").is_some())
            .expect("restaurant with zip");
        let zip = rec.best_string("zip").unwrap();
        (
            AdContext {
                query: "dinner tonight".into(),
                records: vec![rec.id()],
            },
            zip,
        )
    }

    #[test]
    fn keyword_targeting() {
        let woc = woc();
        let ad = Ad {
            id: 1,
            advertiser: "Pizza Co".into(),
            creative: "Hot pizza".into(),
            bid_cents: 50,
            target: Target::Keywords(vec!["pizza".into(), "jose".into()]),
        };
        let hit = AdContext {
            query: "pizza in San Jose".into(),
            records: vec![],
        };
        let miss = AdContext {
            query: "pizza".into(),
            records: vec![],
        };
        assert!(eligible(&woc, &ad, &hit));
        assert!(!eligible(&woc, &ad, &miss), "all keywords required");
    }

    #[test]
    fn concept_targeting_with_zip_constraint() {
        // The paper's example: "place a bid on any query that hits on a
        // restaurant in zipcode 95054".
        let woc = woc();
        let (ctx, zip) = restaurant_ctx(&woc);
        let ad = Ad {
            id: 2,
            advertiser: "Birks Steakhouse".into(),
            creative: "Steak nearby".into(),
            bid_cents: 120,
            target: Target::Concept {
                concept: "restaurant".into(),
                constraints: vec![("zip".into(), zip)],
            },
        };
        assert!(eligible(&woc, &ad, &ctx));
        let wrong = Ad {
            target: Target::Concept {
                concept: "restaurant".into(),
                constraints: vec![("zip".into(), "00000".into())],
            },
            ..ad.clone()
        };
        assert!(!eligible(&woc, &wrong, &ctx));
    }

    #[test]
    fn second_price_auction() {
        let woc = woc();
        let (ctx, zip) = restaurant_ctx(&woc);
        let mk = |id, bid| Ad {
            id,
            advertiser: format!("adv{id}"),
            creative: String::new(),
            bid_cents: bid,
            target: Target::Concept {
                concept: "restaurant".into(),
                constraints: vec![("zip".into(), zip.clone())],
            },
        };
        let ads = vec![mk(1, 100), mk(2, 70), mk(3, 40)];
        let result = run_auction(&woc, &ads, &ctx).unwrap();
        assert_eq!(result.ad_id, 1);
        assert_eq!(result.price_cents, 71, "second price + 1");
        // Unopposed: reserve.
        let result = run_auction(&woc, &ads[..1], &ctx).unwrap();
        assert_eq!(result.price_cents, RESERVE_CENTS);
        // No eligible ads: no auction.
        let empty_ctx = AdContext::default();
        assert!(run_auction(&woc, &ads, &empty_ctx).is_none());
    }

    #[test]
    fn marketplace_budgets_deplete_and_exclude() {
        let woc = woc();
        let (ctx, zip) = restaurant_ctx(&woc);
        let mk = |id, advertiser: &str, bid| Ad {
            id,
            advertiser: advertiser.into(),
            creative: String::new(),
            bid_cents: bid,
            target: Target::Concept {
                concept: "restaurant".into(),
                constraints: vec![("zip".into(), zip.clone())],
            },
        };
        let mut market = Marketplace::new();
        market.register(mk(1, "big-spender", 100), 160);
        market.register(mk(2, "runner-up", 70), 10_000);
        // First two auctions: big-spender wins at second price 71.
        for _ in 0..2 {
            let r = market.serve(&woc, &ctx).unwrap();
            assert_eq!(r.advertiser, "big-spender");
            assert_eq!(r.price_cents, 71);
        }
        assert_eq!(market.budget("big-spender"), 160 - 142);
        assert_eq!(market.spend("big-spender"), 142);
        // Budget (18) is above reserve but the charge caps at the remainder.
        let r = market.serve(&woc, &ctx).unwrap();
        assert_eq!(r.advertiser, "big-spender");
        assert_eq!(r.price_cents, 18);
        assert_eq!(market.budget("big-spender"), 0);
        // Exhausted: the runner-up now wins at reserve.
        let r = market.serve(&woc, &ctx).unwrap();
        assert_eq!(r.advertiser, "runner-up");
        assert_eq!(r.price_cents, RESERVE_CENTS);
    }

    #[test]
    fn user_interest_matching() {
        let woc = woc();
        let (ctx, zip) = restaurant_ctx(&woc);
        let ads = vec![
            Ad {
                id: 10,
                advertiser: "Local Eats".into(),
                creative: String::new(),
                bid_cents: 10,
                target: Target::Concept {
                    concept: "restaurant".into(),
                    constraints: vec![("zip".into(), zip)],
                },
            },
            Ad {
                id: 11,
                advertiser: "Keyword Spam".into(),
                creative: String::new(),
                bid_cents: 999,
                target: Target::Keywords(vec!["anything".into()]),
            },
        ];
        let hits = ads_for_user(&woc, &ads, &ctx.records, 5);
        assert_eq!(
            hits,
            vec![10],
            "only concept-targeted ads match user profiles"
        );
    }
}
