//! Augmented web search (paper §5.1, Figure 1).
//!
//! Two augmentations: (1) a **concept box** triggered when the query matches
//! a record ("if the query asks for a restaurant, e.g. gochi cupertino, then
//! there will be a box containing a map showing the location of Gochi along
//! with directions, reviews, and a pointer to the official homepage"), and
//! (2) **record-aware document ranking** ("this URL should be given
//! preferential treatment by the ranker, as the official homepage of the
//! requested entity") via features computed from the record↔document
//! associations precomputed in the concept web.

use woc_core::{AssocKind, WebOfConcepts};
use woc_index::FieldQuery;
use woc_lrec::LrecId;
use woc_textkit::tokenize::{normalize, tokenize_words};

/// A record-level feature attached to a ranked document (paper §5.1:
/// "features indicating that the document mentions the entity, is a homepage
/// of the entity, includes a review of the entity, and so forth").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DocFeature {
    /// Official homepage of the matched record.
    IsHomepage,
    /// The record was extracted from this document (profile page).
    IsProfilePage,
    /// The document reviews the record.
    IsReview,
    /// The document mentions the record.
    MentionsEntity,
}

impl DocFeature {
    fn boost(self) -> f64 {
        match self {
            DocFeature::IsHomepage => 8.0,
            DocFeature::IsProfilePage => 4.0,
            DocFeature::IsReview => 2.0,
            DocFeature::MentionsEntity => 1.0,
        }
    }
}

/// A ranked document with its record-level features.
#[derive(Debug, Clone)]
pub struct RankedDoc {
    /// Document URL.
    pub url: String,
    /// Document title.
    pub title: String,
    /// Final score (BM25 + feature boosts).
    pub score: f64,
    /// Record-aware features that fired.
    pub features: Vec<DocFeature>,
    /// Names of records the document is associated with — entity-annotated
    /// results in the spirit of the Correlator work the paper cites (§5.2).
    pub entities: Vec<String>,
}

/// The concept box rendered above the results (Figure 1).
#[derive(Debug, Clone)]
pub struct ConceptBox {
    /// The matched record.
    pub record: LrecId,
    /// Concept name (e.g. `restaurant`).
    pub concept: String,
    /// Display name.
    pub name: String,
    /// `(label, value)` summary lines (address, phone, hours, rating, …).
    pub lines: Vec<(String, String)>,
    /// Link to the official homepage, if known.
    pub homepage: Option<String>,
    /// Review-page links.
    pub reviews: Vec<String>,
    /// Confidence the trigger was right.
    pub confidence: f64,
}

impl ConceptBox {
    /// Render as the text block of Figure 1.
    pub fn render(&self) -> String {
        let mut out = format!("┌─ {} ({})\n", self.name, self.concept);
        for (label, value) in &self.lines {
            out.push_str(&format!("│ {label}: {value}\n"));
        }
        if let Some(h) = &self.homepage {
            out.push_str(&format!("│ Official homepage: {h}\n"));
        }
        if !self.reviews.is_empty() {
            out.push_str(&format!("│ Reviews: {} source(s)\n", self.reviews.len()));
        }
        out.push('└');
        out
    }
}

/// An augmented result page.
#[derive(Debug, Clone)]
pub struct AugmentedResults {
    /// The concept box, when a record was confidently matched.
    pub concept_box: Option<ConceptBox>,
    /// Ranked documents.
    pub results: Vec<RankedDoc>,
}

/// The trigger: does the query confidently match one record?
///
/// A "data-hungry machine-learned recognizer" in the paper; here a
/// transparent scorer: the top record hit must cover most of the query's
/// non-location tokens with its name, or match name+city exactly.
pub fn trigger_concept_box(woc: &WebOfConcepts, query: &str) -> Option<(LrecId, f64)> {
    let q_toks: Vec<String> = tokenize_words(query)
        .into_iter()
        .filter(|t| !woc_textkit::tokenize::is_stopword(t))
        .collect();
    if q_toks.is_empty() {
        return None;
    }
    let hits = woc
        .record_index
        .search(&FieldQuery::parse(query), 5, |n| woc.registry.id_of(n));
    for hit in &hits {
        let Some(rec) = woc.store.latest(hit.id) else {
            continue;
        };
        let Some(name) = rec.best_string("name").or_else(|| rec.best_string("title")) else {
            continue;
        };
        let city = rec.best_string("city").unwrap_or_default();
        let name_toks: std::collections::HashSet<String> =
            tokenize_words(&name).into_iter().collect();
        let city_toks: std::collections::HashSet<String> =
            tokenize_words(&city).into_iter().collect();
        let covered = q_toks
            .iter()
            .filter(|t| name_toks.contains(*t) || city_toks.contains(*t))
            .count();
        let coverage = covered as f64 / q_toks.len() as f64;
        let name_hit = q_toks.iter().any(|t| name_toks.contains(t));
        if coverage >= 0.6 && name_hit {
            return Some((hit.id, coverage));
        }
    }
    None
}

/// Build the concept box for a matched record.
pub fn build_concept_box(woc: &WebOfConcepts, id: LrecId, confidence: f64) -> Option<ConceptBox> {
    let rec = woc.store.latest(id)?;
    let concept = woc
        .registry
        .schema(rec.concept())
        .map(|s| s.name().to_string())
        .unwrap_or_else(|| "concept".to_string());
    let name = rec
        .best_string("name")
        .or_else(|| rec.best_string("title"))?;
    let mut lines = Vec::new();
    let mut address = String::new();
    if let Some(street) = rec.best_string("street") {
        address.push_str(&street);
    }
    if let Some(city) = rec.best_string("city") {
        if !address.is_empty() {
            address.push_str(", ");
        }
        address.push_str(&city);
    }
    if let Some(zip) = rec.best_string("zip") {
        address.push(' ');
        address.push_str(&zip);
    }
    if !address.is_empty() {
        lines.push(("Map & directions".to_string(), address));
    }
    for (key, label) in [
        ("phone", "Phone"),
        ("hours", "Hours"),
        ("cuisine", "Cuisine"),
        ("rating", "Rating"),
        ("date", "When"),
        ("venue", "Where"),
        ("price", "Price"),
        ("brand", "Brand"),
    ] {
        if let Some(v) = rec.best_string(key) {
            lines.push((label.to_string(), v));
        }
    }
    let homepage = woc
        .web
        .docs_of_kind(id, AssocKind::Homepage)
        .first()
        .map(|s| s.to_string())
        .or_else(|| rec.best_string("homepage"));
    let reviews = woc
        .web
        .docs_of_kind(id, AssocKind::ReviewOf)
        .into_iter()
        .map(str::to_string)
        .collect();
    Some(ConceptBox {
        record: id,
        concept,
        name,
        lines,
        homepage,
        reviews,
        confidence,
    })
}

/// Run an augmented search: trigger + record-aware document ranking.
pub fn augmented_search(woc: &WebOfConcepts, query: &str, k: usize) -> AugmentedResults {
    let trigger = trigger_concept_box(woc, query);
    let concept_box = trigger.and_then(|(id, conf)| build_concept_box(woc, id, conf));

    // Base retrieval, over-fetched so boosts can reorder.
    let hits = woc.doc_index.search(query, k * 4 + 8);
    let matched = trigger.map(|(id, _)| id);
    let homepage_url = concept_box.as_ref().and_then(|b| b.homepage.clone());

    let mut results: Vec<RankedDoc> = hits
        .into_iter()
        .map(|h| {
            let url = woc.doc_url(h.doc).to_string();
            let title = woc.doc_titles[h.doc.0 as usize].clone();
            let mut entities: Vec<String> = woc
                .web
                .records_of(&url)
                .iter()
                .filter_map(|(r, _)| woc.store.resolve(*r))
                .filter_map(|r| {
                    woc.store.latest(r).and_then(|rec| {
                        rec.best_string("name").or_else(|| rec.best_string("title"))
                    })
                })
                .collect();
            entities.sort();
            entities.dedup();
            entities.truncate(6);
            let mut features = Vec::new();
            if let Some(rid) = matched {
                if homepage_url.as_deref() == Some(url.as_str())
                    || normalize(&url) == normalize(homepage_url.as_deref().unwrap_or(""))
                {
                    features.push(DocFeature::IsHomepage);
                }
                for (r, kind) in woc.web.records_of(&url) {
                    if woc.store.resolve(*r) == Some(rid) {
                        match kind {
                            AssocKind::ExtractedFrom => features.push(DocFeature::IsProfilePage),
                            AssocKind::ReviewOf => features.push(DocFeature::IsReview),
                            AssocKind::Mentions => features.push(DocFeature::MentionsEntity),
                            AssocKind::Homepage => features.push(DocFeature::IsHomepage),
                        }
                    }
                }
                features.sort_by_key(|f| std::cmp::Reverse((f.boost() * 10.0) as i64));
                features.dedup();
            }
            let score = h.score + features.iter().map(|f| f.boost()).sum::<f64>();
            RankedDoc {
                url,
                title,
                score,
                features,
                entities,
            }
        })
        .collect();
    results.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.url.cmp(&b.url))
    });
    results.truncate(k);
    AugmentedResults {
        concept_box,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_core::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    fn woc() -> WebOfConcepts {
        let world = World::generate(WorldConfig::tiny(301));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(21));
        build(&corpus, &PipelineConfig::default())
    }

    #[test]
    fn gochi_cupertino_triggers_box() {
        let woc = woc();
        let res = augmented_search(&woc, "gochi cupertino", 10);
        let boxed = res.concept_box.expect("Figure 1 query must trigger");
        assert!(boxed.name.to_lowercase().contains("gochi"));
        assert_eq!(boxed.concept, "restaurant");
        assert!(
            boxed.lines.iter().any(|(l, _)| l.contains("Map")),
            "box has map/address line"
        );
        let rendered = boxed.render();
        assert!(rendered.contains("Gochi") || rendered.contains("GOCHI"));
    }

    #[test]
    fn generic_query_does_not_trigger() {
        let woc = woc();
        let res = augmented_search(&woc, "best food in town reviews", 10);
        assert!(res.concept_box.is_none(), "no single record covers this");
        assert!(!res.results.is_empty(), "documents still returned");
    }

    #[test]
    fn homepage_ranked_first_for_entity_query() {
        let woc = woc();
        let res = augmented_search(&woc, "gochi cupertino", 10);
        assert!(!res.results.is_empty());
        let top = &res.results[0];
        assert!(
            top.features.contains(&DocFeature::IsHomepage)
                || top.features.contains(&DocFeature::IsProfilePage),
            "top doc should be homepage or profile, got {:?} ({})",
            top.features,
            top.url
        );
    }

    #[test]
    fn results_are_entity_annotated() {
        let woc = woc();
        let res = augmented_search(&woc, "gochi cupertino", 5);
        let annotated = res
            .results
            .iter()
            .filter(|r| !r.entities.is_empty())
            .count();
        assert!(
            annotated > 0,
            "profile/homepage results carry entity annotations"
        );
        let top = &res.results[0];
        assert!(
            top.entities
                .iter()
                .any(|e| e.to_lowercase().contains("gochi")),
            "top result annotated with the entity: {:?}",
            top.entities
        );
    }

    #[test]
    fn features_monotone_boost() {
        // Homepage boost dominates mention boost.
        assert!(DocFeature::IsHomepage.boost() > DocFeature::MentionsEntity.boost());
        assert!(DocFeature::IsProfilePage.boost() > DocFeature::IsReview.boost());
    }

    #[test]
    fn empty_query_safe() {
        let woc = woc();
        let res = augmented_search(&woc, "", 5);
        assert!(res.concept_box.is_none());
        assert!(res.results.is_empty());
    }
}
