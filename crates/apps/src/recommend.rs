//! Concept recommendation (paper §5.4): Alternatives vs Augmentations.
//!
//! "Concept recommendation should not be viewed as a single problem with a
//! single optimization criterion":
//!
//! * [`alternatives`] — records that might *displace* the current one (other
//!   restaurants, "perhaps offering a similar level of quality or a similar
//!   cuisine type"); less-preferable options are suppressed;
//! * [`augmentations`] — records that *complement* it (the NB-7L battery for
//!   the Canon G10), "ranked by the degree of interest conditioned on
//!   engagement with the primary record";
//! * [`CoEngagement`] — item-item collaborative filtering counts harvested
//!   from user sessions, usable by both.

use std::collections::HashMap;

use woc_core::WebOfConcepts;
use woc_lrec::{Lrec, LrecId};
use woc_textkit::metrics::name_similarity;

/// A scored recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The recommended record.
    pub id: LrecId,
    /// Score (higher = better).
    pub score: f64,
    /// Human-readable reason.
    pub reason: String,
}

fn attr(rec: &Lrec, key: &str) -> String {
    rec.best_string(key).unwrap_or_default()
}

fn rating(rec: &Lrec) -> f64 {
    rec.best("rating")
        .and_then(|e| e.value.as_number())
        .unwrap_or(0.0)
}

/// Alternatives: same-concept records similar in location/category, ranked
/// by similarity then quality, with options strictly worse than the anchor
/// suppressed ("the goal of the system is to suppress recommendations that
/// the user finds less preferable overall").
pub fn alternatives(woc: &WebOfConcepts, anchor: LrecId, k: usize) -> Vec<Recommendation> {
    let Some(a) = woc.store.latest(anchor) else {
        return Vec::new();
    };
    let a_city = attr(a, "city");
    let a_cuisine = attr(a, "cuisine");
    let a_cat = attr(a, "category");
    let a_rating = rating(a);
    let mut out: Vec<Recommendation> = woc
        .records_of(a.concept())
        .into_iter()
        .filter(|r| r.id() != anchor)
        .filter_map(|r| {
            let mut score = 0.0;
            let mut reasons = Vec::new();
            if !a_city.is_empty() && attr(r, "city") == a_city {
                score += 2.0;
                reasons.push(format!("also in {a_city}"));
            }
            if !a_cuisine.is_empty() && attr(r, "cuisine") == a_cuisine {
                score += 1.5;
                reasons.push(format!("also {a_cuisine}"));
            }
            if !a_cat.is_empty() && attr(r, "category") == a_cat {
                score += 1.5;
                reasons.push(format!("also {a_cat}"));
            }
            if score == 0.0 {
                return None;
            }
            // Quality-aware: suppress clearly worse options.
            let r_rating = rating(r);
            if a_rating > 0.0 && r_rating > 0.0 {
                if r_rating + 0.75 < a_rating {
                    return None;
                }
                score += (r_rating - a_rating).max(0.0);
                if r_rating > a_rating {
                    reasons.push(format!("rated {r_rating:.1}"));
                }
            }
            Some(Recommendation {
                id: r.id(),
                score,
                reason: reasons.join(", "),
            })
        })
        .collect();
    out.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.id.cmp(&y.id))
    });
    out.truncate(k);
    out
}

/// Augmentations: complementary records via explicit `augments` links, plus
/// co-engagement evidence when available. No suppression of the anchor-alike
/// kind — a battery does not displace a camera.
pub fn augmentations(
    woc: &WebOfConcepts,
    anchor: LrecId,
    co: Option<&CoEngagement>,
    k: usize,
) -> Vec<Recommendation> {
    let Some(a) = woc.store.latest(anchor) else {
        return Vec::new();
    };
    let mut scored: HashMap<LrecId, (f64, String)> = HashMap::new();
    for e in a.get("augments") {
        if let Some(target) = e.value.as_ref_id() {
            if let Some(resolved) = woc.store.resolve(target) {
                scored
                    .entry(resolved)
                    .or_insert((0.0, "goes with this item".to_string()))
                    .0 += 2.0;
            }
        }
    }
    if let Some(co) = co {
        for (other, count) in co.co_engaged_with(anchor) {
            let entry = scored
                .entry(other)
                .or_insert((0.0, "users engage with both".to_string()));
            entry.0 += (count as f64).ln_1p();
        }
    }
    let mut out: Vec<Recommendation> = scored
        .into_iter()
        .filter(|(id, _)| *id != anchor)
        .map(|(id, (score, reason))| Recommendation { id, score, reason })
        .collect();
    out.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.id.cmp(&y.id))
    });
    out.truncate(k);
    out
}

/// Item-item co-engagement counts ("collaborative filtering over a rich
/// domain"). Built from user sessions: each session's engaged records
/// pairwise increment the counts.
#[derive(Debug, Clone, Default)]
pub struct CoEngagement {
    counts: HashMap<(LrecId, LrecId), u32>,
}

impl CoEngagement {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one session's engaged records (order-insensitive).
    pub fn observe_session(&mut self, engaged: &[LrecId]) {
        for (i, &a) in engaged.iter().enumerate() {
            for &b in &engaged[i + 1..] {
                if a == b {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                *self.counts.entry(key).or_insert(0) += 1;
            }
        }
    }

    /// Records co-engaged with `id`, with counts, descending.
    pub fn co_engaged_with(&self, id: LrecId) -> Vec<(LrecId, u32)> {
        let mut out: Vec<(LrecId, u32)> = self
            .counts
            .iter()
            .filter_map(|(&(a, b), &c)| {
                if a == id {
                    Some((b, c))
                } else if b == id {
                    Some((a, c))
                } else {
                    None
                }
            })
            .collect();
        out.sort_by_key(|&(other, c)| (std::cmp::Reverse(c), other));
        out
    }

    /// Total distinct co-engaged pairs.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Similarity of two records' names — exposed for dedup in result pages.
pub fn record_name_similarity(woc: &WebOfConcepts, a: LrecId, b: LrecId) -> f64 {
    let (Some(ra), Some(rb)) = (woc.store.latest(a), woc.store.latest(b)) else {
        return 0.0;
    };
    name_similarity(&attr(ra, "name"), &attr(rb, "name"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_core::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    fn woc_and_world() -> (World, WebOfConcepts) {
        let world = World::generate(WorldConfig {
            restaurants: 25,
            cities: 3,
            cuisines: 3,
            ..WorldConfig::tiny(303)
        });
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(23));
        let woc = build(&corpus, &PipelineConfig::default());
        (world, woc)
    }

    #[test]
    fn alternatives_share_city_or_cuisine() {
        let (_, woc) = woc_and_world();
        let restaurants = woc.records_of(woc.concepts.restaurant);
        let anchor = restaurants[0].id();
        let recs = alternatives(&woc, anchor, 5);
        let a = woc.store.latest(anchor).unwrap();
        for rec in &recs {
            assert_ne!(rec.id, anchor);
            let r = woc.store.latest(rec.id).unwrap();
            let shares =
                attr(r, "city") == attr(a, "city") || attr(r, "cuisine") == attr(a, "cuisine");
            assert!(shares, "alternative must share city or cuisine");
        }
    }

    #[test]
    fn alternatives_suppress_much_worse() {
        let (_, woc) = woc_and_world();
        let restaurants = woc.records_of(woc.concepts.restaurant);
        // Pick an anchor with a high extracted rating, if any.
        let Some(anchor) = restaurants.iter().find(|r| rating(r) >= 4.0) else {
            return;
        };
        let a_rating = rating(anchor);
        for rec in alternatives(&woc, anchor.id(), 10) {
            let r = woc.store.latest(rec.id).unwrap();
            let rr = rating(r);
            if rr > 0.0 {
                assert!(
                    rr + 0.75 >= a_rating,
                    "suppressed option leaked: {rr} vs anchor {a_rating}"
                );
            }
        }
    }

    #[test]
    fn co_engagement_counts() {
        let mut co = CoEngagement::new();
        co.observe_session(&[LrecId(1), LrecId(2), LrecId(3)]);
        co.observe_session(&[LrecId(1), LrecId(2)]);
        co.observe_session(&[LrecId(1), LrecId(1)]); // self-pairs ignored
        let with1 = co.co_engaged_with(LrecId(1));
        assert_eq!(with1[0], (LrecId(2), 2));
        assert_eq!(with1[1], (LrecId(3), 1));
        assert_eq!(co.len(), 3);
    }

    #[test]
    fn augmentations_from_co_engagement() {
        let (_, woc) = woc_and_world();
        let restaurants = woc.records_of(woc.concepts.restaurant);
        let (a, b) = (restaurants[0].id(), restaurants[1].id());
        let mut co = CoEngagement::new();
        for _ in 0..5 {
            co.observe_session(&[a, b]);
        }
        let recs = augmentations(&woc, a, Some(&co), 5);
        assert!(
            recs.iter().any(|r| r.id == b),
            "co-engaged record recommended"
        );
    }

    #[test]
    fn unknown_anchor_empty() {
        let (_, woc) = woc_and_world();
        assert!(alternatives(&woc, LrecId(999_999), 5).is_empty());
        assert!(augmentations(&woc, LrecId(999_999), None, 5).is_empty());
    }
}
