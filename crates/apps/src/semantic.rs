//! Semantic linking and related pages (paper §5.4, Table 1).
//!
//! "One should imagine that this capability produces a bipartite graph
//! linking concept records to articles, and allowing users to pivot back and
//! forth between the two." The bipartite graph itself is built by the
//! pipeline (mention detection); this module provides the pivot operations
//! and the Article→Article "related pages" ranking, "typically based on
//! document similarity functions, perhaps employing concept references as
//! part of the feature vector".

use woc_core::{AssocKind, WebOfConcepts};
use woc_lrec::LrecId;
use woc_textkit::tokenize::tokenize_words;
use woc_textkit::{CorpusStats, SparseVector, TfIdf};

/// Articles (documents) that mention a record — Concept→Article pivot.
pub fn articles_for(woc: &WebOfConcepts, record: LrecId) -> Vec<String> {
    woc.web
        .docs_of_kind(record, AssocKind::Mentions)
        .into_iter()
        .map(str::to_string)
        .collect()
}

/// Records mentioned in a document — Article→Concept pivot.
pub fn records_in(woc: &WebOfConcepts, url: &str) -> Vec<LrecId> {
    woc.web
        .records_of(url)
        .iter()
        .filter(|(_, k)| *k == AssocKind::Mentions)
        .map(|(r, _)| *r)
        .collect()
}

/// One pivot chain: from a record, through an article mentioning it, to the
/// other records that article mentions (the Deadwood → article → Timothy
/// Olyphant walk of §5.3).
pub fn pivot_chain(woc: &WebOfConcepts, start: LrecId) -> Vec<(String, Vec<LrecId>)> {
    articles_for(woc, start)
        .into_iter()
        .map(|url| {
            let others: Vec<LrecId> = records_in(woc, &url)
                .into_iter()
                .filter(|&r| r != start)
                .collect();
            (url, others)
        })
        .collect()
}

/// Related-pages engine: TF-IDF document similarity plus a shared-mention
/// boost (concept references as ranking features).
#[derive(Debug)]
pub struct RelatedPages {
    urls: Vec<String>,
    vectors: Vec<SparseVector>,
    stats: CorpusStats,
    mentions: Vec<Vec<LrecId>>,
    /// Weight of one shared concept mention relative to cosine similarity.
    pub mention_weight: f64,
}

impl RelatedPages {
    /// Build over a set of documents (url, text) with their mention lists.
    pub fn build(woc: &WebOfConcepts, urls: &[String], texts: &[String]) -> RelatedPages {
        assert_eq!(urls.len(), texts.len());
        let mut stats = CorpusStats::new();
        let token_lists: Vec<Vec<String>> = texts.iter().map(|t| tokenize_words(t)).collect();
        for toks in &token_lists {
            stats.add_document(toks);
        }
        let vectors = {
            let v = TfIdf::new(&stats);
            token_lists.iter().map(|t| v.vectorize(t)).collect()
        };
        let mentions = urls.iter().map(|u| records_in(woc, u)).collect();
        RelatedPages {
            urls: urls.to_vec(),
            vectors,
            stats,
            mentions,
            mention_weight: 0.3,
        }
    }

    /// Top-k pages related to the page at `index`.
    pub fn related(&self, index: usize, k: usize) -> Vec<(String, f64)> {
        let _ = &self.stats;
        let q = &self.vectors[index];
        let q_mentions: std::collections::HashSet<LrecId> =
            self.mentions[index].iter().copied().collect();
        let mut scored: Vec<(usize, f64)> = (0..self.urls.len())
            .filter(|&i| i != index)
            .map(|i| {
                let cosine = q.cosine(&self.vectors[i]);
                let shared = self.mentions[i]
                    .iter()
                    .filter(|m| q_mentions.contains(m))
                    .count();
                (i, cosine + self.mention_weight * shared as f64)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored
            .into_iter()
            .take(k)
            .map(|(i, s)| (self.urls[i].clone(), s))
            .collect()
    }

    /// Index of a URL in this engine.
    pub fn index_of(&self, url: &str) -> Option<usize> {
        self.urls.iter().position(|u| u == url)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_core::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, PageKind, World, WorldConfig};

    fn setup() -> (woc_webgen::WebCorpus, WebOfConcepts) {
        let world = World::generate(WorldConfig::tiny(304));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(24));
        let woc = build(&corpus, &PipelineConfig::default());
        (corpus, woc)
    }

    #[test]
    fn bipartite_pivots_are_consistent() {
        let (corpus, woc) = setup();
        let mut found = 0;
        for page in corpus
            .pages()
            .iter()
            .filter(|p| p.truth.kind == PageKind::Article)
        {
            for rec in records_in(&woc, &page.url) {
                assert!(
                    articles_for(&woc, rec).contains(&page.url),
                    "pivot must be symmetric"
                );
                found += 1;
            }
        }
        assert!(found > 0, "some article mentions expected");
    }

    #[test]
    fn pivot_chain_walks_both_directions() {
        let (corpus, woc) = setup();
        // Find a record mentioned anywhere.
        let rec = corpus
            .pages()
            .iter()
            .filter(|p| p.truth.kind == PageKind::Article)
            .find_map(|p| records_in(&woc, &p.url).first().copied());
        let Some(rec) = rec else { return };
        let chain = pivot_chain(&woc, rec);
        assert!(!chain.is_empty());
    }

    #[test]
    fn related_pages_rank_shared_topics() {
        let (corpus, woc) = setup();
        let articles: Vec<&woc_webgen::Page> = corpus
            .pages()
            .iter()
            .filter(|p| p.truth.kind == PageKind::Article)
            .collect();
        let urls: Vec<String> = articles.iter().map(|p| p.url.clone()).collect();
        let texts: Vec<String> = articles.iter().map(|p| p.text()).collect();
        let engine = RelatedPages::build(&woc, &urls, &texts);
        let related = engine.related(0, 3);
        assert!(related.len() <= 3);
        for (url, score) in &related {
            assert_ne!(url, &urls[0]);
            assert!(*score >= 0.0);
        }
    }
}
