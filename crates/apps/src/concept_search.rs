//! Concept search (paper §5.2): retrieval where "the core results are of a
//! concept other than document".
//!
//! Users "search a highly heterogeneous collection of records through a
//! uniform interface", with the vertical-style refinements the paper lists:
//! specialized feature filters (`cuisine:Chinese`), geographic parsing
//! (city names detected in free text), and custom processing that combines
//! locational and topical proximity (`pizza in San Jose`). Also implements
//! **search within a concept** (Table 1, Concept→Result): document search
//! restricted to pages associated with one record.

use woc_core::WebOfConcepts;
use woc_index::{FieldQuery, RecordHit};
use woc_lrec::LrecId;
use woc_textkit::gazetteer;

/// A concept-search result: typed records with display summaries.
#[derive(Debug, Clone)]
pub struct ConceptResult {
    /// The record.
    pub id: LrecId,
    /// Concept name.
    pub concept: String,
    /// Display name.
    pub name: String,
    /// Retrieval score.
    pub score: f64,
    /// A short summary line.
    pub summary: String,
}

/// Parse the query with geo/cuisine awareness: free-text city and cuisine
/// mentions become scoped constraints — the "special query parsing (e.g.,
/// geographic locations)" of §5.2.
pub fn interpret_query(query: &str) -> FieldQuery {
    let mut q = FieldQuery::parse(query);
    // Promote gazetteer hits from free text into scoped constraints.
    let cities = gazetteer::find_cities(query);
    let cuisines = gazetteer::find_cuisines(query);
    for city in &cities {
        for w in woc_textkit::tokenize::tokenize_words(city) {
            q.scoped.push(("city".to_string(), w.clone()));
            q.terms.retain(|t| *t != w);
        }
    }
    for cuisine in &cuisines {
        let w = cuisine.to_lowercase();
        q.scoped.push(("cuisine".to_string(), w.clone()));
        q.terms.retain(|t| *t != w);
    }
    // Connective noise.
    q.terms.retain(|t| {
        !matches!(
            t.as_str(),
            "in" | "near" | "restaurants" | "restaurant" | "best"
        )
    });
    q
}

/// Run a concept search and hydrate display summaries.
pub fn concept_search(woc: &WebOfConcepts, query: &str, k: usize) -> Vec<ConceptResult> {
    concept_search_parsed(woc, &interpret_query(query), k)
}

/// Run a concept search from an already-parsed [`FieldQuery`] — the entry
/// point the serving layer uses after normalizing the query for its cache,
/// so cached and uncached evaluations share one code path.
pub fn concept_search_parsed(woc: &WebOfConcepts, fq: &FieldQuery, k: usize) -> Vec<ConceptResult> {
    let hits: Vec<RecordHit> = woc.record_index.search(fq, k, |n| woc.registry.id_of(n));
    hits.into_iter()
        .filter_map(|h| hydrate_record_hit(woc, &h))
        .collect()
}

/// Hydrate one record hit into a display result — the single hydration
/// path shared by [`concept_search_parsed`] and the `woc-cluster`
/// scatter-gather router, so a hit renders identically whether it was
/// scored on the full index or on the shard that owns the record.
pub fn hydrate_record_hit(woc: &WebOfConcepts, h: &RecordHit) -> Option<ConceptResult> {
    let rec = woc.store.latest(h.id)?;
    let concept = woc
        .registry
        .schema(h.concept)
        .map(|s| s.name().to_string())
        .unwrap_or_default();
    let name = rec
        .best_string("name")
        .or_else(|| rec.best_string("title"))
        .unwrap_or_else(|| h.id.to_string());
    let summary = [
        "city", "cuisine", "venue", "date", "price", "rating", "year",
    ]
    .iter()
    .filter_map(|key| rec.best_string(key).map(|v| format!("{key}: {v}")))
    .collect::<Vec<_>>()
    .join(" · ");
    Some(ConceptResult {
        id: h.id,
        concept,
        name,
        score: h.score,
        summary,
    })
}

/// Refine previous results with an additional attribute constraint —
/// "refinement using specialized features (e.g., show only Chinese
/// restaurants)".
pub fn refine(
    woc: &WebOfConcepts,
    results: &[ConceptResult],
    attr: &str,
    value: &str,
) -> Vec<ConceptResult> {
    let norm = woc_textkit::tokenize::normalize(value);
    results
        .iter()
        .filter(|r| {
            woc.store.latest(r.id).is_some_and(|rec| {
                rec.get(attr)
                    .iter()
                    .any(|e| woc_textkit::tokenize::normalize(&e.value.display_string()) == norm)
            })
        })
        .cloned()
        .collect()
}

/// Search **within** a concept (Table 1, Concept→Result): rank only the
/// documents associated with `record` (its profile pages, reviews, mentions,
/// homepage) against the query.
pub fn search_within_concept(
    woc: &WebOfConcepts,
    record: LrecId,
    query: &str,
    k: usize,
) -> Vec<(String, f64)> {
    let docs: std::collections::HashSet<&str> = woc
        .web
        .docs_of(record)
        .iter()
        .map(|(u, _)| u.as_str())
        .collect();
    if docs.is_empty() {
        return Vec::new();
    }
    woc.doc_index
        .search(query, usize::MAX)
        .into_iter()
        .filter_map(|h| {
            let url = woc.doc_url(h.doc);
            docs.contains(url).then(|| (url.to_string(), h.score))
        })
        .take(k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_core::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    fn woc() -> WebOfConcepts {
        let world = World::generate(WorldConfig {
            restaurants: 25,
            cities: 3,
            cuisines: 3,
            ..WorldConfig::tiny(302)
        });
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(22));
        build(&corpus, &PipelineConfig::default())
    }

    #[test]
    fn geo_and_cuisine_promoted_to_constraints() {
        let q = interpret_query("Italian restaurants in San Jose");
        assert!(q.scoped.contains(&("cuisine".into(), "italian".into())));
        assert!(q.scoped.contains(&("city".into(), "san".into())));
        assert!(q.scoped.contains(&("city".into(), "jose".into())));
        assert!(!q.terms.contains(&"restaurants".to_string()));
    }

    #[test]
    fn concept_search_returns_typed_records() {
        let woc = woc();
        let results = concept_search(&woc, "is:restaurant Italian San Jose", 10);
        for r in &results {
            assert_eq!(r.concept, "restaurant");
            assert!(!r.name.is_empty());
        }
    }

    #[test]
    fn heterogeneous_results_without_concept_filter() {
        let woc = woc();
        let results = concept_search(&woc, "Gochi Cupertino tapas PODS", 20);
        let concepts: std::collections::HashSet<&str> =
            results.iter().map(|r| r.concept.as_str()).collect();
        assert!(!results.is_empty());
        // Free-text search over the heterogeneous record collection may pull
        // several concepts; at minimum it returns results and they carry
        // concept labels.
        assert!(concepts.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn refine_filters_in_place() {
        let woc = woc();
        let all = concept_search(&woc, "is:restaurant san jose", 50);
        if all.is_empty() {
            return; // coverage may miss; other tests assert non-emptiness
        }
        let refined = refine(&woc, &all, "cuisine", "Italian");
        for r in &refined {
            let rec = woc.store.latest(r.id).unwrap();
            assert_eq!(rec.best_string("cuisine").as_deref(), Some("Italian"));
        }
        assert!(refined.len() <= all.len());
    }

    #[test]
    fn search_within_concept_restricts_to_associated_docs() {
        let woc = woc();
        let hits = woc
            .record_index
            .query("gochi", 1, |n| woc.registry.id_of(n));
        let gochi = hits[0].id;
        let within = search_within_concept(&woc, gochi, "menu", 10);
        let all_docs: std::collections::HashSet<&str> = woc
            .web
            .docs_of(gochi)
            .iter()
            .map(|(u, _)| u.as_str())
            .collect();
        for (url, _) in &within {
            assert!(all_docs.contains(url.as_str()), "{url} not associated");
        }
        // Unknown record yields nothing.
        assert!(search_within_concept(&woc, woc_lrec::LrecId(99999), "menu", 10).is_empty());
    }
}
