//! # woc-apps — applications over the web of concepts (paper §5)
//!
//! Every application family the paper describes:
//!
//! * [`augment`] — augmented web search (§5.1): the Figure 1 concept box
//!   trigger + record-aware document-ranking features;
//! * [`mod@concept_page`] — concept pages (§5.4's second page type): the full
//!   aggregate view of one record — attributes with confidence, linked
//!   records, sources, mentions, recommendations;
//! * [`mod@concept_search`] — concept search (§5.2): typed record retrieval with
//!   geographic/cuisine query parsing, refinements, and search-within-concept;
//! * [`recommend`] — concept recommendation (§5.4): Alternatives (with
//!   suppression of less-preferable options) vs Augmentations (complementary
//!   items), plus session-derived co-engagement collaborative filtering;
//! * [`metrics`] — holistic concept-aware result-set metrics (§7.4);
//! * [`semantic`] — semantic linking pivots over the record↔article
//!   bipartite graph and TF-IDF+mention related-pages (§5.4);
//! * [`session`] — session optimization (§5.3): historical + session user
//!   models and personalized content matching (the Birks disambiguation);
//! * [`ads`] — advertising (§5.5): concept-targeted matching and a
//!   second-price marketplace with attribute-constrained concept bids;
//! * [`transitions`] — the Table 1 engine wiring all nine page-type
//!   transition technologies together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ads;
pub mod augment;
pub mod concept_page;
pub mod concept_search;
pub mod metrics;
pub mod recommend;
pub mod semantic;
pub mod session;
pub mod transitions;

pub use ads::{
    ads_for_user, eligible, run_auction, Ad, AdContext, AuctionResult, Marketplace, Target,
};
pub use augment::{
    augmented_search, build_concept_box, trigger_concept_box, AugmentedResults, ConceptBox,
    DocFeature, RankedDoc,
};
pub use concept_page::{concept_page, AttributeLine, ConceptPage, LinkedRecord};
pub use concept_search::{
    concept_search, concept_search_parsed, hydrate_record_hit, interpret_query, refine,
    search_within_concept, ConceptResult,
};
pub use metrics::{holistic_score, result_set_stats, ResultSetStats};
pub use recommend::{alternatives, augmentations, CoEngagement, Recommendation};
pub use semantic::{articles_for, pivot_chain, records_in, RelatedPages};
pub use session::{personalized_search, rank_content, Interaction, UserModel};
pub use transitions::{PageType, TransitionEngine, TransitionLink};
