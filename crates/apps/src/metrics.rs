//! Concept-aware result-set metrics (paper §7.4).
//!
//! "The traditional relevance notions developed in information retrieval may
//! not be appropriate for concept search. The challenge is to take a holistic
//! view of the result set, with concepts in mind." These metrics look at a
//! result *set*, not at items in isolation: instance redundancy (two results
//! that are really the same entity), concept diversity, and attribute
//! coverage (does the set span cities/cuisines or collapse onto one?).

use std::collections::HashSet;

use woc_core::WebOfConcepts;
use woc_lrec::LrecId;
use woc_textkit::metrics::name_similarity;

/// Holistic statistics of one result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSetStats {
    /// Results examined.
    pub len: usize,
    /// Distinct records after merge resolution.
    pub distinct_records: usize,
    /// Distinct concepts represented.
    pub distinct_concepts: usize,
    /// Result pairs that look like the same instance (near-identical names)
    /// even though their ids differ — residual duplicates the user sees.
    pub near_duplicate_pairs: usize,
    /// Distinct values of `diversity_attr` present.
    pub attribute_diversity: usize,
}

impl ResultSetStats {
    /// Redundancy in `\[0, 1\]`: fraction of results that add no new instance.
    pub fn redundancy(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        1.0 - self.distinct_records as f64 / self.len as f64
    }
}

/// Compute holistic stats for a result list. `diversity_attr` names the
/// attribute whose spread measures usefulness for set-seeking intents
/// (e.g. `city` for "best bakeries near me", `cuisine` for dining sets).
pub fn result_set_stats(
    woc: &WebOfConcepts,
    results: &[LrecId],
    diversity_attr: &str,
) -> ResultSetStats {
    let resolved: Vec<LrecId> = results
        .iter()
        .filter_map(|&id| woc.store.resolve(id))
        .collect();
    let distinct_records: HashSet<LrecId> = resolved.iter().copied().collect();
    let distinct_concepts: HashSet<_> = resolved
        .iter()
        .filter_map(|&id| woc.store.latest(id).map(|r| r.concept()))
        .collect();
    let names: Vec<String> = resolved
        .iter()
        .filter_map(|&id| woc.store.latest(id))
        .filter_map(|r| r.best_string("name").or_else(|| r.best_string("title")))
        .collect();
    let mut near_duplicate_pairs = 0usize;
    for i in 0..names.len() {
        for j in (i + 1)..names.len() {
            if resolved.get(i) != resolved.get(j) && name_similarity(&names[i], &names[j]) > 0.9 {
                near_duplicate_pairs += 1;
            }
        }
    }
    let attribute_diversity: HashSet<String> = resolved
        .iter()
        .filter_map(|&id| woc.store.latest(id))
        .filter_map(|r| r.best_string(diversity_attr))
        .collect();
    ResultSetStats {
        len: results.len(),
        distinct_records: distinct_records.len(),
        distinct_concepts: distinct_concepts.len(),
        near_duplicate_pairs,
        attribute_diversity: attribute_diversity.len(),
    }
}

/// A single holistic score combining instance novelty and attribute spread —
/// one concrete proposal for the §7.4 "aggregate notion of user satisfaction
/// with respect to the concepts". In `\[0, 1\]`.
pub fn holistic_score(stats: &ResultSetStats) -> f64 {
    if stats.len == 0 {
        return 0.0;
    }
    let novelty = stats.distinct_records as f64 / stats.len as f64;
    let spread = stats.attribute_diversity as f64 / stats.distinct_records.max(1) as f64;
    let dup_penalty = 1.0 / (1.0 + stats.near_duplicate_pairs as f64);
    (novelty * (0.5 + 0.5 * spread) * dup_penalty).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_core::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    fn woc() -> WebOfConcepts {
        let world = World::generate(WorldConfig {
            restaurants: 20,
            cities: 3,
            cuisines: 3,
            ..WorldConfig::tiny(321)
        });
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(62));
        build(&corpus, &PipelineConfig::default())
    }

    #[test]
    fn duplicates_raise_redundancy() {
        let woc = woc();
        let restaurants = woc.records_of(woc.concepts.restaurant);
        let a = restaurants[0].id();
        let b = restaurants[1].id();
        let clean = result_set_stats(&woc, &[a, b], "city");
        let dup = result_set_stats(&woc, &[a, a, a, b], "city");
        assert_eq!(clean.redundancy(), 0.0);
        assert!(dup.redundancy() > 0.4);
        assert!(holistic_score(&clean) > holistic_score(&dup));
    }

    #[test]
    fn diversity_counted_on_requested_attribute() {
        let woc = woc();
        let restaurants = woc.records_of(woc.concepts.restaurant);
        // Same-city set vs mixed-city set.
        let city0 = restaurants[0].best_string("city").unwrap();
        let same: Vec<LrecId> = restaurants
            .iter()
            .filter(|r| r.best_string("city").as_deref() == Some(&city0))
            .take(3)
            .map(|r| r.id())
            .collect();
        let mixed: Vec<LrecId> = restaurants.iter().take(6).map(|r| r.id()).collect();
        let s_same = result_set_stats(&woc, &same, "city");
        let s_mixed = result_set_stats(&woc, &mixed, "city");
        assert_eq!(s_same.attribute_diversity, 1);
        assert!(s_mixed.attribute_diversity >= s_same.attribute_diversity);
    }

    #[test]
    fn cross_concept_sets_counted() {
        let woc = woc();
        let r = woc.records_of(woc.concepts.restaurant)[0].id();
        let p = woc.records_of(woc.concepts.product)[0].id();
        let stats = result_set_stats(&woc, &[r, p], "city");
        assert_eq!(stats.distinct_concepts, 2);
    }

    #[test]
    fn empty_set() {
        let woc = woc();
        let stats = result_set_stats(&woc, &[], "city");
        assert_eq!(stats.redundancy(), 0.0);
        assert_eq!(holistic_score(&stats), 0.0);
    }
}
