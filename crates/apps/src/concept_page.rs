//! Concept pages — the second of §5.4's three page types ("Concept pages,
//! showing information about some instance of a concept. E.g., page about
//! Ian McShane; page about Deadwood").
//!
//! A [`ConceptPage`] aggregates everything the web of concepts knows about
//! one record: reconciled attributes with confidence, linked records
//! (reviews, menu items), source documents and the homepage, mentioning
//! articles, and recommendations — the "semantically rich aggregate view of
//! all the information available on the web for each concept instance" of
//! the abstract.

use woc_core::{record_links, reverse_links, AssocKind, WebOfConcepts};
use woc_lrec::LrecId;

use crate::recommend::{alternatives, Recommendation};
use crate::semantic::articles_for;

/// One attribute line of a concept page.
#[derive(Debug, Clone)]
pub struct AttributeLine {
    /// Attribute key.
    pub key: String,
    /// Display values (post-reconciliation, best first).
    pub values: Vec<String>,
    /// Confidence of the best value.
    pub confidence: f64,
}

/// A linked record shown on the page (a review, a menu item, a component).
#[derive(Debug, Clone)]
pub struct LinkedRecord {
    /// The link's attribute (e.g. `about`, `restaurant`, `part_of`).
    pub relation: String,
    /// The linked record.
    pub id: LrecId,
    /// Display text.
    pub display: String,
}

/// The assembled concept page.
#[derive(Debug, Clone)]
pub struct ConceptPage {
    /// The record.
    pub id: LrecId,
    /// Concept name.
    pub concept: String,
    /// Page title (record name/title).
    pub title: String,
    /// Attribute lines in key order.
    pub attributes: Vec<AttributeLine>,
    /// Outgoing links (this record → others).
    pub outgoing: Vec<LinkedRecord>,
    /// Incoming links (others → this record), e.g. its reviews.
    pub incoming: Vec<LinkedRecord>,
    /// Official homepage, if known.
    pub homepage: Option<String>,
    /// Source documents the record was extracted from.
    pub sources: Vec<String>,
    /// Articles mentioning the record (semantic links).
    pub mentions: Vec<String>,
    /// Alternative records (same-kind recommendations).
    pub alternatives: Vec<Recommendation>,
}

/// Assemble the concept page for a record. Returns `None` for unknown ids.
pub fn concept_page(woc: &WebOfConcepts, id: LrecId, k: usize) -> Option<ConceptPage> {
    let id = woc.store.resolve(id)?;
    let rec = woc.store.latest(id)?;
    let concept = woc
        .registry
        .schema(rec.concept())
        .map(|s| s.name().to_string())
        .unwrap_or_default();
    let title = rec
        .best_string("name")
        .or_else(|| rec.best_string("title"))
        .unwrap_or_else(|| id.to_string());

    let mut attributes = Vec::new();
    for (key, entries) in rec.iter() {
        if entries.iter().all(|e| e.value.as_ref_id().is_some()) {
            continue; // reference attrs render as links below
        }
        let mut sorted: Vec<_> = entries
            .iter()
            .filter(|e| e.value.as_ref_id().is_none())
            .collect();
        sorted.sort_by(|a, b| {
            b.provenance
                .confidence
                .partial_cmp(&a.provenance.confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        attributes.push(AttributeLine {
            key: key.to_string(),
            values: sorted.iter().map(|e| e.value.display_string()).collect(),
            confidence: sorted
                .first()
                .map(|e| e.provenance.confidence)
                .unwrap_or(0.0),
        });
    }

    let display_of = |rid: LrecId| -> String {
        woc.store
            .latest(rid)
            .and_then(|r| {
                r.best_string("name")
                    .or_else(|| r.best_string("title"))
                    .or_else(|| r.best_string("text").map(|t| truncate(&t, 60)))
            })
            .unwrap_or_else(|| rid.to_string())
    };

    let outgoing: Vec<LinkedRecord> = record_links(rec)
        .into_iter()
        .filter_map(|(relation, rid)| {
            let rid = woc.store.resolve(rid)?;
            Some(LinkedRecord {
                relation,
                id: rid,
                display: display_of(rid),
            })
        })
        .take(k * 2)
        .collect();

    // Incoming links: scan live records once (fine at this corpus scale; a
    // production store would maintain the reverse index incrementally).
    let live: Vec<&woc_lrec::Lrec> = woc
        .store
        .live_ids()
        .into_iter()
        .filter_map(|i| woc.store.latest(i))
        .collect();
    let reverse = reverse_links(live.iter().copied());
    let incoming: Vec<LinkedRecord> = reverse
        .get(&id)
        .map(|v| {
            v.iter()
                .take(k * 2)
                .map(|(relation, rid)| LinkedRecord {
                    relation: relation.clone(),
                    id: *rid,
                    display: display_of(*rid),
                })
                .collect()
        })
        .unwrap_or_default();

    Some(ConceptPage {
        id,
        concept,
        title,
        attributes,
        outgoing,
        incoming,
        homepage: woc
            .web
            .docs_of_kind(id, AssocKind::Homepage)
            .first()
            .map(|s| s.to_string()),
        sources: woc
            .web
            .docs_of_kind(id, AssocKind::ExtractedFrom)
            .into_iter()
            .map(str::to_string)
            .collect(),
        mentions: articles_for(woc, id).into_iter().take(k).collect(),
        alternatives: alternatives(woc, id, k),
    })
}

impl ConceptPage {
    /// Render as plain text (the demo surface; a web frontend would consume
    /// the structure directly).
    pub fn render(&self) -> String {
        let mut out = format!("━━ {} — {} ━━\n", self.title, self.concept);
        for a in &self.attributes {
            out.push_str(&format!(
                "  {:<12} {}  (conf {:.2})\n",
                a.key,
                a.values.join(" | "),
                a.confidence
            ));
        }
        if let Some(h) = &self.homepage {
            out.push_str(&format!("  homepage     {h}\n"));
        }
        if !self.incoming.is_empty() {
            out.push_str("  linked records:\n");
            for l in self.incoming.iter().take(5) {
                out.push_str(&format!("    ← {} ({})\n", l.display, l.relation));
            }
        }
        if !self.outgoing.is_empty() {
            for l in self.outgoing.iter().take(5) {
                out.push_str(&format!("    → {} ({})\n", l.display, l.relation));
            }
        }
        if !self.mentions.is_empty() {
            out.push_str(&format!(
                "  mentioned in {} article(s)\n",
                self.mentions.len()
            ));
        }
        out.push_str(&format!("  {} source document(s)\n", self.sources.len()));
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        let mut end = max;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woc_core::{build, PipelineConfig};
    use woc_webgen::{generate_corpus, CorpusConfig, World, WorldConfig};

    fn woc() -> WebOfConcepts {
        let world = World::generate(WorldConfig::tiny(311));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(61));
        build(&corpus, &PipelineConfig::default())
    }

    #[test]
    fn page_for_gochi_aggregates_everything() {
        let woc = woc();
        let hit = woc
            .record_index
            .query("gochi cupertino", 1, |n| woc.registry.id_of(n));
        let page = concept_page(&woc, hit[0].id, 5).unwrap();
        assert_eq!(page.concept, "restaurant");
        assert!(page.title.to_lowercase().contains("gochi"));
        assert!(!page.attributes.is_empty());
        assert!(!page.sources.is_empty(), "sources listed");
        let keys: Vec<&str> = page.attributes.iter().map(|a| a.key.as_str()).collect();
        assert!(keys.contains(&"city"));
        let rendered = page.render();
        assert!(rendered.contains("restaurant"));
        assert!(rendered.contains("source document"));
    }

    #[test]
    fn reviews_appear_as_incoming_links() {
        let woc = woc();
        // Find a restaurant with a linked review.
        let review_cid = woc.registry.id_of("review").unwrap();
        let target = woc
            .records_of(review_cid)
            .into_iter()
            .find_map(|r| r.best("about").and_then(|e| e.value.as_ref_id()));
        let Some(target) = target else {
            panic!("no linked reviews in corpus");
        };
        let page = concept_page(&woc, target, 5).unwrap();
        assert!(
            page.incoming.iter().any(|l| l.relation == "about"),
            "reviews must show as incoming links"
        );
    }

    #[test]
    fn unknown_record_yields_none() {
        let woc = woc();
        assert!(concept_page(&woc, LrecId(9_999_999), 5).is_none());
    }

    #[test]
    fn merged_id_resolves_to_survivor_page() {
        let woc = woc();
        // Any tombstoned id should produce the survivor's page.
        for raw in 0..woc.store.total_created() as u64 {
            let id = LrecId(raw);
            if woc.store.resolve(id) != Some(id) {
                if let Some(surv) = woc.store.resolve(id) {
                    let page = concept_page(&woc, id, 3).unwrap();
                    assert_eq!(page.id, surv);
                    return;
                }
            }
        }
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        let s = "éééééééééé"; // 2 bytes per char
        let t = truncate(s, 5);
        assert!(t.ends_with('…'));
        assert!(t.chars().count() <= 4);
        assert_eq!(truncate("short", 10), "short");
    }
}
