//! # web-of-concepts
//!
//! A full-system reproduction of **"A Web of Concepts"** (Dalvi, Kumar,
//! Pang, Ramakrishnan, Tomkins, Bohannon, Keerthi, Merugu — PODS 2009):
//! concept-centric web information management, built from scratch in Rust.
//!
//! The paper proposes extracting concept-centric metadata from the web of
//! documents and stitching it into a *web of concepts* — loosely-structured
//! records with provenance and confidence, linked to each other and back to
//! documents — powering richer search, recommendation and advertising. This
//! crate re-exports the whole stack:
//!
//! | layer | crate | paper section |
//! |---|---|---|
//! | text substrate | [`textkit`] | §4.2 domain knowledge |
//! | record model + store | [`lrec`] | §2.2 lrecs |
//! | synthetic web | [`webgen`] | substitution for the 2009 web |
//! | inverted index | [`index`] | §2.2 "existing inverted indexes" |
//! | extraction stack | [`extract`] | §4 |
//! | entity matching | [`matching`] | §6, §7.2 |
//! | the web of concepts | [`core`] | §4, §7.3 |
//! | applications | [`apps`] | §5 |
//! | serving layer | [`serve`] | §2.2 scalable serving |
//! | usage studies | [`usage`] | §3 |
//!
//! ## Quickstart
//!
//! ```
//! use web_of_concepts::prelude::*;
//!
//! // 1. A ground-truth world and its synthetic web.
//! let world = World::generate(WorldConfig::tiny(7));
//! let corpus = generate_corpus(&world, &CorpusConfig::tiny(7));
//!
//! // 2. Build the web of concepts: extract, resolve, link, index.
//! let woc = build(&corpus, &PipelineConfig::default());
//!
//! // 3. Ask it something (the paper's Figure 1 query).
//! let results = augmented_search(&woc, "gochi cupertino", 5);
//! assert!(results.concept_box.is_some());
//! ```
//!
//! See `examples/` for runnable programs and `crates/bench/src/bin/` for the
//! experiment harness regenerating every figure/table (DESIGN.md §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use woc_apps as apps;
pub use woc_core as core;
pub use woc_extract as extract;
pub use woc_index as index;
pub use woc_lrec as lrec;
pub use woc_matching as matching;
pub use woc_serve as serve;
pub use woc_textkit as textkit;
pub use woc_usage as usage;
pub use woc_webgen as webgen;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use woc_apps::{
        augmented_search, concept_search, personalized_search, ConceptBox, TransitionEngine,
        UserModel,
    };
    pub use woc_core::{build, recrawl, PipelineConfig, WebOfConcepts};
    pub use woc_index::{FieldQuery, LrecIndex};
    pub use woc_lrec::{AttrValue, ConceptRegistry, Lrec, LrecId, Provenance, Store, Tick};
    pub use woc_serve::{ConceptServer, ServeConfig};
    pub use woc_usage::{simulate, UsageConfig};
    pub use woc_webgen::{generate_corpus, CorpusConfig, WebCorpus, World, WorldConfig};
}
