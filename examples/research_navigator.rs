//! Academic-domain scenario: parse citation strings with the sequence
//! labeler (the paper's CRF use case), bootstrap publication records from
//! overlapping sources, and search the resulting publication concept.
//!
//! Run: `cargo run --example research_navigator --release`

use web_of_concepts::extract::bootstrap::{bootstrap, seeds_from_names, BootstrapConfig};
use web_of_concepts::extract::seqlabel::{example_from_segments, Labeler};
use web_of_concepts::prelude::*;
use web_of_concepts::webgen::sites::academic::render_citation;
use web_of_concepts::webgen::PageKind;

fn main() {
    let world = World::generate(WorldConfig::default());
    let corpus = generate_corpus(&world, &CorpusConfig::default());

    // --- Train a citation segmenter on one homepage's format --------------
    let examples: Vec<_> = world
        .publications
        .iter()
        .take(30)
        .map(|&p| {
            let cit = render_citation(&world, p, 0);
            example_from_segments(&cit.text, &cit.segments)
        })
        .collect();
    let model = Labeler::train(&examples, 8);
    println!("Citation segmenter trained on {} examples", examples.len());

    // Parse an unseen citation.
    let unseen = render_citation(&world, *world.publications.last().unwrap(), 0);
    println!("\nRaw citation:\n  {}", unseen.text);
    println!("Parsed segments:");
    for (field, value) in model.segment(&unseen.text) {
        println!("  {field:<8} = {value}");
    }

    // Held-out accuracy.
    let held_out: Vec<_> = world
        .publications
        .iter()
        .skip(30)
        .map(|&p| {
            let cit = render_citation(&world, p, 0);
            example_from_segments(&cit.text, &cit.segments)
        })
        .collect();
    println!(
        "\nHeld-out token accuracy: {:.1}%",
        100.0 * model.token_accuracy(&held_out)
    );

    // --- Bootstrap publications from a few seeds (§4.2) -------------------
    let academic_pages: Vec<&web_of_concepts::webgen::Page> = corpus
        .pages()
        .iter()
        .filter(|p| matches!(p.truth.kind, PageKind::AcademicHome | PageKind::VenuePage))
        .collect();
    let seed_titles: Vec<String> = world
        .publications
        .iter()
        .take(3)
        .map(|&p| world.attr(p, "title"))
        .collect();
    let refs: Vec<&str> = seed_titles.iter().map(String::as_str).collect();
    // Publications bootstrap on titles; the harvester keys rows by their
    // leading text, which for citations is format-dependent — so expect
    // partial coverage, exactly as the paper cautions for semantic methods.
    let seeds = seeds_from_names("publication", &refs);
    let result = bootstrap(
        &academic_pages,
        "publication",
        &seeds,
        &BootstrapConfig::default(),
    );
    println!(
        "\nBootstrap over {} academic pages: {} seed titles → {} records in {} rounds",
        academic_pages.len(),
        seeds.len(),
        result.records.len(),
        result.rounds
    );

    // --- Build the web of concepts and search publications ----------------
    let woc = build(&corpus, &PipelineConfig::default());
    println!("\nConcept search: is:publication PODS");
    for r in web_of_concepts::apps::concept_search(&woc, "is:publication PODS", 5) {
        println!("  {} — {}", r.name, r.summary);
    }
}
