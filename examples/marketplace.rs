//! Shopping + advertising scenario (paper §2.3, §5.4, §5.5): the camera
//! taxonomy, augmentation recommendations ("the NB-7L battery for the Canon
//! G10"), concept-targeted ads and the second-price marketplace.
//!
//! Run: `cargo run --example marketplace --release`

use web_of_concepts::apps::{augmentations, run_auction, Ad, AdContext, CoEngagement, Target};
use web_of_concepts::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::default());
    let corpus = generate_corpus(&world, &CorpusConfig::default());
    let woc = build(&corpus, &PipelineConfig::default());

    // --- Augmentations: complements, not alternatives (§5.4) --------------
    let products = woc.records_of(woc.concepts.product);
    println!(
        "{} canonical products extracted from seller catalogs",
        products.len()
    );
    let camera = products
        .iter()
        .find(|p| !p.get("augments").is_empty())
        .expect("a camera with extracted augmentation links");
    println!(
        "\nAnchor: {} ({})",
        camera.best_string("name").unwrap_or_default(),
        camera.best_string("category").unwrap_or_default()
    );
    // Co-engagement sessions sharpen the ranking.
    let mut co = CoEngagement::new();
    for w in products.windows(3) {
        co.observe_session(&[w[0].id(), w[1].id(), w[2].id()]);
    }
    println!("Customers also bought:");
    for rec in augmentations(&woc, camera.id(), Some(&co), 5) {
        let r = woc.store.latest(rec.id).unwrap();
        println!(
            "  {} ({}) — {}",
            r.best_string("name").unwrap_or_default(),
            r.best_string("category").unwrap_or_default(),
            rec.reason
        );
    }

    // --- Concept-targeted advertising (§5.5) -------------------------------
    // "the proprietor of Birks Steakhouse might place a bid on any query
    // that hits on a restaurant in zipcode 95054."
    let restaurants = woc.records_of(woc.concepts.restaurant);
    let target_rec = restaurants
        .iter()
        .find(|r| r.best_string("zip").is_some())
        .unwrap();
    let zip = target_rec.best_string("zip").unwrap();
    let ads = vec![
        Ad {
            id: 1,
            advertiser: "Neighborhood Steakhouse".into(),
            creative: format!("Steaks near {zip}"),
            bid_cents: 120,
            target: Target::Concept {
                concept: "restaurant".into(),
                constraints: vec![("zip".into(), zip.clone())],
            },
        },
        Ad {
            id: 2,
            advertiser: "Citywide Delivery".into(),
            creative: "Dinner delivered".into(),
            bid_cents: 80,
            target: Target::Concept {
                concept: "restaurant".into(),
                constraints: vec![],
            },
        },
        Ad {
            id: 3,
            advertiser: "Keyword Pizza".into(),
            creative: "pizza pizza".into(),
            bid_cents: 300,
            target: Target::Keywords(vec!["pizza".into()]),
        },
    ];

    let ctx = AdContext {
        query: "dinner tonight".into(),
        records: vec![target_rec.id()],
    };
    println!(
        "\nPageview about {} (zip {zip}), query {:?}:",
        target_rec.best_string("name").unwrap_or_default(),
        ctx.query
    );
    match run_auction(&woc, &ads, &ctx) {
        Some(result) => println!(
            "  winner: {} (ad {}), pays {}¢ (second price)",
            result.advertiser, result.ad_id, result.price_cents
        ),
        None => println!("  no eligible ads"),
    }

    // Keyword ad wins only when its keyword appears.
    let ctx2 = AdContext {
        query: "best pizza slices".into(),
        records: vec![],
    };
    match run_auction(&woc, &ads, &ctx2) {
        Some(result) => println!(
            "Query {:?}: winner {} pays {}¢",
            ctx2.query, result.advertiser, result.price_cents
        ),
        None => println!("Query {:?}: no eligible ads", ctx2.query),
    }
}
