//! Local-domain scenario (the paper's running example): a user researches
//! dinner options — concept search with geographic parsing, refinement,
//! alternatives, search-within-concept, and the session-disambiguation
//! behaviour of §5.3.
//!
//! Run: `cargo run --example local_guide --release`

use web_of_concepts::apps::{
    alternatives, concept_search, rank_content, refine, search_within_concept, Interaction,
    UserModel,
};
use web_of_concepts::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::default());
    let corpus = generate_corpus(&world, &CorpusConfig::default());
    let woc = build(&corpus, &PipelineConfig::default());

    // --- A set-search with geographic parsing (§5.2) --------------------
    println!("Query: Mexican restaurants in San Jose");
    let results = concept_search(&woc, "Mexican restaurants in San Jose", 8);
    for r in &results {
        println!("  {} — {}", r.name, r.summary);
    }

    // --- Refinement: "show only Italian" (§5.2) --------------------------
    println!("\nRefine a broad city search to cuisine = Italian:");
    let broad = concept_search(&woc, "restaurants in San Jose", 30);
    let refined = refine(&woc, &broad, "cuisine", "Italian");
    println!(
        "  {} results → {} after refinement",
        broad.len(),
        refined.len()
    );
    for r in refined.iter().take(5) {
        println!("  {}", r.name);
    }

    // --- Pick one, explore within it and around it (§5.4) -----------------
    let Some(anchor) = results.first() else {
        println!("no results");
        return;
    };
    println!("\nSearch within {}:", anchor.name);
    for (url, _) in search_within_concept(&woc, anchor.id, "menu reviews", 5) {
        println!("  {url}");
    }
    println!("\nAlternatives to {}:", anchor.name);
    for rec in alternatives(&woc, anchor.id, 5) {
        let name = woc
            .store
            .latest(rec.id)
            .and_then(|r| r.best_string("name"))
            .unwrap_or_default();
        println!("  {name} ({})", rec.reason);
    }

    // --- Session disambiguation: the Birks scenario (§5.3) ----------------
    // After browsing restaurants in one city, an ambiguous short query
    // should resolve toward that city.
    let mut user = UserModel::new();
    user.observe(&woc, Interaction::ViewedRecord(anchor.id));
    user.observe(&woc, Interaction::Queried("dinner san jose".into()));
    println!("\nPersonalized search for `house` after a San Jose session:");
    for (id, score) in personalized_search(&woc, &user, "house", 5) {
        let rec = woc.store.latest(id).unwrap();
        println!(
            "  {:<28} city={:<14} score={score:.2}",
            rec.best_string("name").unwrap_or_default(),
            rec.best_string("city").unwrap_or_default()
        );
    }
    println!("\nSame query for a cold user:");
    let cold = UserModel::new();
    for (id, score) in personalized_search(&woc, &cold, "house", 5) {
        let rec = woc.store.latest(id).unwrap();
        println!(
            "  {:<28} city={:<14} score={score:.2}",
            rec.best_string("name").unwrap_or_default(),
            rec.best_string("city").unwrap_or_default()
        );
    }

    // --- Front-page content ranking (§5.3 "Understanding Content") --------
    let article_urls: Vec<String> = corpus
        .pages()
        .iter()
        .filter(|p| p.url.contains("/post/"))
        .map(|p| p.url.clone())
        .collect();
    println!("\nFront-page articles ranked for this user (top 3):");
    for (url, score) in rank_content(&woc, &user, &article_urls).into_iter().take(3) {
        println!("  [{score:.2}] {url}");
    }
}
