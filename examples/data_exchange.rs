//! Data-exchange scenario (paper §2.2 "contractual feeds", §7.1 "shared
//! datasets"): ingest a licensed structured feed into an extracted web of
//! concepts — feed records corroborate or correct extracted ones instead of
//! duplicating them — then snapshot the whole corpus and reload it.
//!
//! Run: `cargo run --example data_exchange --release`

use web_of_concepts::core::feed::{ingest_feed, parse_feed, Feed, FeedRecord};
use web_of_concepts::lrec::snapshot;
use web_of_concepts::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::default());
    let corpus = generate_corpus(&world, &CorpusConfig::default());
    let mut woc = build(&corpus, &PipelineConfig::default());
    println!(
        "Extracted web of concepts: {} live records",
        woc.store.live_count()
    );

    // --- A licensed provider ships structured records ----------------------
    let gochi = world.restaurants[0];
    let feed = Feed {
        provider: "metro-dining-data".into(),
        confidence: 0.95,
        records: vec![
            // A record we already extracted: should merge + corroborate.
            FeedRecord {
                concept: "restaurant".into(),
                fields: vec![
                    ("name".into(), world.attr(gochi, "name")),
                    ("city".into(), world.attr(gochi, "city")),
                    ("zip".into(), world.attr(gochi, "zip")),
                    ("phone".into(), world.attr(gochi, "phone")),
                    ("street".into(), world.attr(gochi, "street")),
                ],
            },
            // A record the crawler never saw: should be created.
            FeedRecord {
                concept: "restaurant".into(),
                fields: vec![
                    ("name".into(), "Licensed Only Supper Club".into()),
                    ("city".into(), "Cupertino".into()),
                    ("zip".into(), "95098".into()),
                    ("phone".into(), "(408) 555-4242".into()),
                ],
            },
        ],
    };
    // Feeds travel as JSON.
    let json = serde_json_roundtrip(&feed);
    let feed = parse_feed(&json).expect("provider feed parses");
    let report = ingest_feed(&mut woc, &feed, Tick(500));
    println!(
        "\nFeed ingest: {} merged into existing records, {} created, {} skipped",
        report.merged, report.created, report.skipped
    );

    // The merged record carries both extraction and feed provenance.
    let hits = woc
        .record_index
        .query("gochi cupertino", 1, |n| woc.registry.id_of(n));
    let rec = woc.store.latest(hits[0].id).unwrap();
    println!("\nProvenance mix on the Gochi record:");
    let mut sources: Vec<String> = rec
        .iter()
        .flat_map(|(_, es)| es.iter().map(|e| e.provenance.source.to_string()))
        .collect();
    sources.sort();
    sources.dedup();
    for s in sources.iter().take(8) {
        println!("  · {s}");
    }

    // The feed-only record is now searchable like any other.
    let hits = woc
        .record_index
        .query("licensed only supper club", 1, |n| woc.registry.id_of(n));
    println!(
        "\nFeed-only record findable: {}",
        hits.first()
            .and_then(|h| woc.store.latest(h.id))
            .and_then(|r| r.best_string("name"))
            .unwrap_or_default()
    );

    // --- Snapshot the corpus and reload it ----------------------------------
    let snap = snapshot::export(&woc.registry, &woc.store);
    println!("\nSnapshot size: {} KiB", snap.len() / 1024);
    let (registry2, store2) = snapshot::import(&snap).expect("snapshot loads");
    println!(
        "Reloaded: {} live records, {} schemas — identical to the original: {}",
        store2.live_count(),
        registry2.schemas().count(),
        store2.live_count() == woc.store.live_count()
    );
}

/// Feeds are plain serde types; round-trip through JSON like a provider
/// delivery would.
fn serde_json_roundtrip(feed: &Feed) -> String {
    serde_json::to_string_pretty(feed).expect("feed serializes")
}
