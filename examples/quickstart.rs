//! Quickstart: build a web of concepts from a synthetic web and ask it the
//! paper's Figure 1 question.
//!
//! Run: `cargo run --example quickstart --release`

use web_of_concepts::prelude::*;

fn main() {
    // 1. A ground-truth world (restaurants, papers, products, events) and
    //    the synthetic web rendered from it.
    println!("Generating world and corpus…");
    let world = World::generate(WorldConfig::default());
    let corpus = generate_corpus(&world, &CorpusConfig::default());
    println!(
        "  {} ground-truth entities across {} pages on {} sites",
        world.store.live_count(),
        corpus.len(),
        corpus.sites().len()
    );

    // 2. Build the web of concepts: extraction → entity resolution →
    //    reconciliation → linking → indexes.
    println!("Constructing the web of concepts…");
    let woc = build(&corpus, &PipelineConfig::default());
    println!(
        "  {} canonical records, {} record↔document associations, {} lineage nodes",
        woc.store.live_count(),
        woc.web.len(),
        woc.lineage.len()
    );

    // 3. The paper's Figure 1: `gochi cupertino` triggers a concept box.
    println!("\nSearch: gochi cupertino");
    let results = web_of_concepts::apps::augmented_search(&woc, "gochi cupertino", 5);
    if let Some(b) = &results.concept_box {
        println!("{}", b.render());
    }
    for (i, r) in results.results.iter().enumerate() {
        println!("  {}. {} {:?}", i + 1, r.url, r.features);
    }

    // 4. Why do we believe this record? Lineage explains (paper §7.3).
    if let Some(b) = &results.concept_box {
        println!("\nProvenance of the record:");
        for line in woc.lineage.explain(b.record).iter().take(8) {
            println!("  · {line}");
        }
    }

    // 5. The concept page: the full aggregate view of one instance (§5.4).
    if let Some(b) = &results.concept_box {
        if let Some(page) = web_of_concepts::apps::concept_page(&woc, b.record, 5) {
            println!("\n{}", page.render());
        }
    }

    // 6. Concept search: typed records, not documents (paper §5.2).
    println!("\nConcept search: is:restaurant Italian \"San Jose\"");
    for r in web_of_concepts::apps::concept_search(&woc, "is:restaurant Italian San Jose", 5) {
        println!("  {} — {}", r.name, r.summary);
    }
}
