//! Maintenance scenario (paper §7.3): the world changes — restaurants close,
//! phone numbers change — and the web of concepts tracks it incrementally,
//! with versions, provenance, and lineage-backed explanations.
//!
//! Run: `cargo run --example living_web --release`

use web_of_concepts::prelude::*;
use web_of_concepts::webgen::{churn_restaurants, ChurnEvent};

fn main() {
    let cfg = CorpusConfig::default();
    let mut world = World::generate(WorldConfig::default());
    let corpus_v1 = generate_corpus(&world, &cfg);
    let mut woc = build(&corpus_v1, &PipelineConfig::default());
    println!(
        "Initial build: {} pages → {} canonical records",
        corpus_v1.len(),
        woc.store.live_count()
    );

    // --- The world moves on -------------------------------------------------
    let events = churn_restaurants(&mut world, 0.25, Tick(10), 2026);
    println!("\nWorld churn: {} events", events.len());
    for e in events.iter().take(5) {
        match e {
            ChurnEvent::PhoneChanged(id, p) => {
                println!("  {} changed phone to {p}", world.attr(*id, "name"))
            }
            ChurnEvent::HoursChanged(id, h) => {
                println!("  {} changed hours to {h}", world.attr(*id, "name"))
            }
            ChurnEvent::Closed(id) => println!("  {} closed", world.attr(*id, "name")),
        }
    }

    // --- Incremental recrawl -------------------------------------------------
    let corpus_v2 = generate_corpus(&world, &cfg);
    let report = recrawl(&mut woc, &corpus_v1, &corpus_v2, Tick(100));
    println!(
        "\nRecrawl: {}/{} pages re-extracted ({:.1}% of a full rebuild), \
         {} records updated, {} created",
        report.pages_reprocessed,
        report.pages_total,
        100.0 * report.cost_ratio(),
        report.records_updated,
        report.records_created
    );

    // --- Time travel on one changed record ----------------------------------
    if let Some(ChurnEvent::PhoneChanged(world_id, new_phone)) = events
        .iter()
        .find(|e| matches!(e, ChurnEvent::PhoneChanged(..)))
    {
        let name = world.attr(*world_id, "name");
        let rec = woc
            .store
            .by_concept(woc.concepts.restaurant)
            .into_iter()
            .filter_map(|id| woc.store.latest(id))
            .find(|r| r.best_string("name").unwrap_or_default().contains(&name));
        if let Some(rec) = rec {
            let id = rec.id();
            println!("\nRecord {} ({name}):", id);
            println!("  versions: {}", woc.store.num_versions(id));
            println!(
                "  phone before (as of t5): {}",
                woc.store
                    .as_of(id, Tick(5))
                    .and_then(|r| r.best_string("phone"))
                    .unwrap_or_else(|| "-".into())
            );
            println!(
                "  phone now:               {}",
                woc.store
                    .latest(id)
                    .and_then(|r| r.best_string("phone"))
                    .unwrap_or_else(|| "-".into())
            );
            println!("  (world changed it to {new_phone})");
            println!("\n  why do we believe the current values?");
            for line in woc.lineage.explain(id).iter().take(6) {
                println!("    · {line}");
            }
        }
    }
}
